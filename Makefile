# Development targets for the repro package.

.PHONY: install test bench examples all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

examples:
	python examples/quickstart.py
	python examples/ecommerce_configuration.py
	python examples/availability_planning.py
	python examples/capacity_planning.py
	python examples/simulation_validation.py
	python examples/dynamic_reconfiguration.py
	python examples/worklist_management.py

all: test bench
