# Development targets for the repro package.

.PHONY: install test docstrings bench bench-search bench-search-parallel \
	bench-frontier campaign bench-campaign bench-corpus bench-sim \
	bench-sim-quick bench-monitor bench-service monitor-smoke \
	serve-smoke examples all

install:
	pip install -e . || python setup.py develop

test:
	PYTHONPATH=src python -m pytest -x -q

docstrings:
	python tools/check_docstrings.py --threshold 100 --quiet src/repro

bench:
	PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s

bench-search:
	PYTHONPATH=src python benchmarks/bench_search.py --check

bench-search-parallel:
	PYTHONPATH=src python benchmarks/bench_search.py --parallel-only --check \
		--output BENCH_search_parallel.json

bench-frontier:
	PYTHONPATH=src python benchmarks/bench_frontier.py --check

campaign:
	PYTHONPATH=src python -m repro.cli init-demo /tmp/repro_demo.json
	PYTHONPATH=src python -m repro.cli campaign \
		--project /tmp/repro_demo.json \
		--config comm-server=1,wf-engine=2,app-server=3 \
		--duration 2000 --warmup 200 --replications 5 --workers 2 \
		--no-failures

bench-campaign:
	PYTHONPATH=src python benchmarks/bench_campaign.py --check

bench-corpus:
	PYTHONPATH=src python benchmarks/bench_corpus.py --check

bench-sim:
	PYTHONPATH=src python benchmarks/bench_sim_hotpath.py --check \
		--min-speedup 1.5 --min-fast-speedup 2.5

bench-sim-quick:
	PYTHONPATH=src python benchmarks/bench_sim_hotpath.py --quick --check

bench-monitor:
	PYTHONPATH=src python benchmarks/bench_monitor.py --check

bench-service:
	PYTHONPATH=src python benchmarks/bench_service.py --check

monitor-smoke:
	PYTHONPATH=src python tools/monitor_smoke.py

serve-smoke:
	PYTHONPATH=src python tools/serve_smoke.py

examples:
	PYTHONPATH=src python examples/quickstart.py
	PYTHONPATH=src python examples/ecommerce_configuration.py
	PYTHONPATH=src python examples/availability_planning.py
	PYTHONPATH=src python examples/capacity_planning.py
	PYTHONPATH=src python examples/simulation_validation.py
	PYTHONPATH=src python examples/dynamic_reconfiguration.py
	PYTHONPATH=src python examples/worklist_management.py

all: test bench
