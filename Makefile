# Development targets for the repro package.

.PHONY: install test bench bench-search bench-search-parallel examples all

install:
	pip install -e . || python setup.py develop

test:
	PYTHONPATH=src python -m pytest -x -q

bench:
	PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s

bench-search:
	PYTHONPATH=src python benchmarks/bench_search.py --check

bench-search-parallel:
	PYTHONPATH=src python benchmarks/bench_search.py --parallel-only --check \
		--output BENCH_search_parallel.json

examples:
	PYTHONPATH=src python examples/quickstart.py
	PYTHONPATH=src python examples/ecommerce_configuration.py
	PYTHONPATH=src python examples/availability_planning.py
	PYTHONPATH=src python examples/capacity_planning.py
	PYTHONPATH=src python examples/simulation_validation.py
	PYTHONPATH=src python examples/dynamic_reconfiguration.py
	PYTHONPATH=src python examples/worklist_management.py

all: test bench
