"""Capacity planning with the Section 4 performance model.

How much workflow load can a configuration sustain, which server type
saturates first, how do waiting times grow as the business grows, and
what happens if server types are co-located on shared computers?

Run:  python examples/capacity_planning.py
"""

import math

from repro.core.performance import (
    Computer,
    PerformanceModel,
    SystemConfiguration,
    Workload,
    WorkloadItem,
)
from repro.workflows import (
    ecommerce_workflow,
    insurance_workflow,
    order_processing_workflow,
    standard_server_types,
)


def build_model(scale: float = 1.0) -> PerformanceModel:
    """The department's mix: e-commerce + orders + insurance claims."""
    workload = Workload(
        [
            WorkloadItem(ecommerce_workflow(), 0.30 * scale),
            WorkloadItem(order_processing_workflow(), 0.20 * scale),
            WorkloadItem(insurance_workflow(), 0.05 * scale),
        ]
    )
    return PerformanceModel(standard_server_types(), workload)


def main() -> None:
    types = standard_server_types()
    model = build_model()
    configuration = SystemConfiguration(
        {"comm-server": 1, "wf-engine": 2, "app-server": 3}
    )

    # ------------------------------------------------------------------
    # Current state: load, bottleneck, headroom.
    # ------------------------------------------------------------------
    print(model.assess(configuration).format_text())
    print("\nConcurrent instances by type (Little's law):")
    for name in ("EP", "OrderProcessing", "InsuranceClaim"):
        print(f"  {name:20s} N_active = "
              f"{model.active_instances(name):8.2f}")

    # ------------------------------------------------------------------
    # Growth: waiting time of the bottleneck as the business scales.
    # ------------------------------------------------------------------
    print("\nGrowth sweep (load scale -> bottleneck waiting time):")
    for scale in (1.0, 1.5, 2.0, 2.5, 3.0):
        scaled = build_model(scale)
        waits = scaled.waiting_times(configuration)
        worst = max(waits)
        text = f"{worst:10.4f} min" if math.isfinite(worst) else "saturated"
        report = scaled.max_sustainable_throughput(configuration)
        print(f"  x{scale:3.1f}: worst waiting {text:>14s}   "
              f"(headroom x{report.headroom:5.2f}, "
              f"bottleneck {report.bottleneck})")

    # ------------------------------------------------------------------
    # Fixing the bottleneck: replicate the application server tier.
    # ------------------------------------------------------------------
    print("\nScaling out the app-server tier at double load:")
    doubled = build_model(2.0)
    for app_count in (3, 4, 5, 6, 8):
        candidate = SystemConfiguration(
            {"comm-server": 1, "wf-engine": 2, "app-server": app_count}
        )
        waits = doubled.waiting_times(candidate)
        worst = max(waits)
        text = f"{worst:10.4f}" if math.isfinite(worst) else "  saturated"
        print(f"  app-server x{app_count}: worst waiting {text}")

    # ------------------------------------------------------------------
    # Consolidation what-if: fewer computers, shared among types
    # (Section 4.4 generalized case).
    # ------------------------------------------------------------------
    print("\nConsolidation what-if (waiting time per type):")
    layouts = {
        "6 dedicated hosts": [
            Computer("c1", ("comm-server",)),
            Computer("c2", ("wf-engine",)),
            Computer("c3", ("wf-engine",)),
            Computer("c4", ("app-server",)),
            Computer("c5", ("app-server",)),
            Computer("c6", ("app-server",)),
        ],
        "4 shared hosts": [
            Computer("c1", ("comm-server", "wf-engine")),
            Computer("c2", ("wf-engine", "app-server")),
            Computer("c3", ("app-server",)),
            Computer("c4", ("app-server",)),
        ],
    }
    for label, computers in layouts.items():
        waits = model.waiting_times_colocated(computers)
        cells = ", ".join(
            f"{name}={value:.4f}" for name, value in waits.items()
        )
        print(f"  {label:18s} {cells}")


if __name__ == "__main__":
    main()
