"""The paper's e-commerce scenario end to end (Figures 3/4, Section 7).

Registers the EP workflow (with its parallel notify/delivery
subworkflows and the reminder loop) and the order-processing workflow in
the tool's repository, assesses the current configuration, and asks for
minimum-cost recommendations under increasingly strict performability
goals — comparing the greedy heuristic with exhaustive search and
simulated annealing.

Run:  python examples/ecommerce_configuration.py
"""

from repro.core.configuration import ReplicationConstraints
from repro.core.goals import PerformabilityGoals
from repro.core.performance import SystemConfiguration
from repro.tool import ConfigurationTool, WorkflowRepository
from repro.workflows import (
    ecommerce_activities,
    ecommerce_chart,
    order_processing_activities,
    order_processing_chart,
    standard_server_types,
)

ARRIVAL_RATES = {"EP": 0.4, "OrderProcessing": 0.2}  # workflows per minute


def main() -> None:
    repository = WorkflowRepository()
    repository.register(ecommerce_chart(), ecommerce_activities())
    repository.register(
        order_processing_chart(), order_processing_activities()
    )
    tool = ConfigurationTool(standard_server_types(), repository)

    # ------------------------------------------------------------------
    # Assess the configuration an administrator might start with.
    # ------------------------------------------------------------------
    initial = SystemConfiguration(
        {"comm-server": 1, "wf-engine": 2, "app-server": 3}
    )
    print(tool.evaluate(initial, ARRIVAL_RATES).format_text())

    # ------------------------------------------------------------------
    # Recommendations for a ladder of goals.
    # ------------------------------------------------------------------
    ladder = [
        ("relaxed", 0.5, 1e-4),
        ("standard", 0.15, 1e-5),
        ("strict", 0.05, 1e-7),
    ]
    print("\n--- Greedy recommendations (Section 7.2) ---")
    for label, waiting_goal, unavailability_goal in ladder:
        goals = PerformabilityGoals(
            max_waiting_time=waiting_goal,
            max_unavailability=unavailability_goal,
        )
        recommendation = tool.recommend(goals, ARRIVAL_RATES)
        print(
            f"{label:10s} w<={waiting_goal:<5g} U<={unavailability_goal:<8g}"
            f" -> {recommendation.configuration} "
            f"(cost {recommendation.cost:.0f}, "
            f"{recommendation.evaluations} evaluations)"
        )

    # ------------------------------------------------------------------
    # Cross-check the 'standard' goal with the other search algorithms.
    # ------------------------------------------------------------------
    goals = PerformabilityGoals(max_waiting_time=0.15,
                                max_unavailability=1e-5)
    constraints = ReplicationConstraints(
        maximum={"comm-server": 4, "wf-engine": 5, "app-server": 6},
        max_total_servers=15,
    )
    print("\n--- Algorithm comparison for the 'standard' goal ---")
    for algorithm in ("greedy", "exhaustive", "simulated_annealing"):
        recommendation = tool.recommend(
            goals, ARRIVAL_RATES, constraints=constraints,
            algorithm=algorithm,
        )
        print(
            f"{algorithm:20s} -> {recommendation.configuration} "
            f"(cost {recommendation.cost:.0f}, "
            f"{recommendation.evaluations} evaluations)"
        )

    # ------------------------------------------------------------------
    # Constraint: the communication server is licensed per node and
    # fixed at two replicas.
    # ------------------------------------------------------------------
    constrained = tool.recommend(
        goals,
        ARRIVAL_RATES,
        constraints=ReplicationConstraints(fixed={"comm-server": 2}),
    )
    print(
        f"\nWith comm-server fixed at 2: {constrained.configuration} "
        f"(cost {constrained.cost:.0f})"
    )


if __name__ == "__main__":
    main()
