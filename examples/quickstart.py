"""Quickstart: assess and configure a small distributed WFMS.

Builds a two-activity workflow from scratch, predicts its performance on
a candidate configuration, checks availability, and asks the greedy
search for the cheapest configuration meeting performability goals.

Run:  python examples/quickstart.py
"""

from repro import (
    ActivitySpec,
    AvailabilityModel,
    GoalEvaluator,
    PerformabilityGoals,
    PerformanceModel,
    ServerTypeIndex,
    ServerTypeSpec,
    SystemConfiguration,
    Workload,
    WorkloadItem,
    WorkflowDefinition,
    WorkflowState,
    greedy_configuration,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The server landscape (time unit: minutes).
    # ------------------------------------------------------------------
    server_types = ServerTypeIndex(
        [
            ServerTypeSpec(
                "wf-engine", mean_service_time=0.05,
                failure_rate=1 / 10080, repair_rate=1 / 10,  # weekly/10min
            ),
            ServerTypeSpec(
                "app-server", mean_service_time=0.2,
                failure_rate=1 / 1440, repair_rate=1 / 10,  # daily/10min
            ),
        ]
    )

    # ------------------------------------------------------------------
    # 2. A workflow type: review (interactive) then archive (automated),
    #    with a 20% rework loop back to review.
    # ------------------------------------------------------------------
    review = ActivitySpec(
        "Review", mean_duration=12.0,
        loads={"wf-engine": 3.0},
    )
    archive = ActivitySpec(
        "Archive", mean_duration=1.0,
        loads={"wf-engine": 2.0, "app-server": 3.0},
    )
    workflow = WorkflowDefinition(
        name="DocumentReview",
        states=(
            WorkflowState("Review", activity=review),
            WorkflowState("Archive", activity=archive),
            WorkflowState("Done", mean_duration=0.1),
        ),
        transitions={
            ("Review", "Archive"): 1.0,
            ("Archive", "Review"): 0.2,   # rework loop
            ("Archive", "Done"): 0.8,
        },
        initial_state="Review",
    )

    # ------------------------------------------------------------------
    # 3. Performance of a candidate configuration (Section 4).
    # ------------------------------------------------------------------
    workload = Workload([WorkloadItem(workflow, arrival_rate=1.2)])
    performance = PerformanceModel(server_types, workload)
    candidate = SystemConfiguration({"wf-engine": 1, "app-server": 1})
    print(performance.assess(candidate).format_text())

    # ------------------------------------------------------------------
    # 4. Availability of the candidate (Section 5).
    # ------------------------------------------------------------------
    availability = AvailabilityModel(server_types, candidate)
    print(
        f"\nCandidate downtime: "
        f"{availability.downtime_per_year('hours'):.1f} hours/year"
    )

    # ------------------------------------------------------------------
    # 5. Minimum-cost configuration for explicit goals (Section 7.2).
    # ------------------------------------------------------------------
    goals = PerformabilityGoals(
        max_waiting_time=0.5,          # minutes, performability metric
        max_unavailability=1e-5,       # ~5 minutes downtime per year
    )
    recommendation = greedy_configuration(
        GoalEvaluator(performance), goals
    )
    print()
    print(recommendation.format_text())


if __name__ == "__main__":
    main()
