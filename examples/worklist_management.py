"""Worklist management and human-actor contention (Section 2).

The paper's models configure the *computer* side and deliberately
exclude human behaviour from the turnaround analysis.  This example
shows both sides: the insurance claim workflow running on a fixed server
configuration, with interactive activities assigned to a finite staff of
clerks, assessors, and managers through role-based worklists — and how
the measured turnaround departs from the CTMC prediction as the staff
shrinks, while the server-side metrics the configuration tool optimizes
stay put.

Run:  python examples/worklist_management.py   (~30 s)
"""

from repro.core.performance import (
    PerformanceModel,
    SystemConfiguration,
    Workload,
    WorkloadItem,
)
from repro.org import Actor, AssignmentPolicy, Organization, OrgUnit, Role
from repro.wfms import RoutingPolicy, SimulatedWFMS, SimulatedWorkflowType
from repro.workflows import (
    insurance_activities,
    insurance_chart,
    insurance_workflow,
    standard_server_types,
)

ARRIVAL_RATE = 0.02  # claims per minute (about 29 per day)

#: Which role each interactive activity requires.
ACTIVITY_ROLES = {
    "RegisterClaim": "clerk",
    "RequestDocuments": "clerk",
    "DamageInspection": "assessor",
    "WitnessReview": "assessor",
    "DecideClaim": "manager",
}


def make_organization(clerks: int, assessors: int, managers: int):
    actors = (
        [Actor(f"clerk{i}", roles=frozenset({"clerk"}))
         for i in range(clerks)]
        + [Actor(f"assessor{i}", roles=frozenset({"assessor"}))
           for i in range(assessors)]
        + [Actor(f"manager{i}", roles=frozenset({"manager"}))
           for i in range(managers)]
    )
    units = [
        OrgUnit("front-office",
                actor_names=tuple(f"clerk{i}" for i in range(clerks))),
        OrgUnit("field",
                actor_names=tuple(f"assessor{i}" for i in range(assessors)),
                parent="front-office"),
    ]
    roles = [Role("clerk"), Role("assessor"), Role("manager")]
    return Organization(actors, units, roles)


def run(staffing, seed=11):
    clerks, assessors, managers = staffing
    wfms = SimulatedWFMS(
        server_types=standard_server_types(),
        configuration=SystemConfiguration(
            {"comm-server": 1, "wf-engine": 1, "app-server": 2}
        ),
        workflow_types=[
            SimulatedWorkflowType(
                insurance_chart(), insurance_activities(), ARRIVAL_RATE
            )
        ],
        seed=seed,
        routing_policy=RoutingPolicy.ROUND_ROBIN,
        inject_failures=False,
        organization=make_organization(clerks, assessors, managers),
        activity_roles=ACTIVITY_ROLES,
        worklist_policy=AssignmentPolicy.LEAST_LOADED,
    )
    return wfms.run(duration=40_000.0, warmup=2_000.0)


def main() -> None:
    model = PerformanceModel(
        standard_server_types(),
        Workload([WorkloadItem(insurance_workflow(), ARRIVAL_RATE)]),
    )
    predicted = model.turnaround_time("InsuranceClaim")
    print(f"CTMC-predicted claim turnaround (no staffing limits): "
          f"{predicted:.1f} minutes\n")

    print("staffing (clerks/assessors/managers) -> measured turnaround, "
          "worklist wait:")
    for staffing in [(2, 4, 1), (3, 6, 2), (6, 12, 4)]:
        report = run(staffing)
        measurement = report.workflow_types["InsuranceClaim"]
        worklist = report.worklist
        print(f"  {staffing}: turnaround "
              f"{measurement.mean_turnaround_time:8.1f} min, "
              f"mean worklist wait {worklist.mean_waiting_time:7.2f} min")

    print("\nPer-actor view of the tight staffing (2/4/1):")
    report = run((2, 4, 1))
    print(report.worklist.format_text())
    print("\nServer-side utilization (unchanged by staffing):")
    for name, measurement in report.server_types.items():
        print(f"  {name:14s} {measurement.utilization:.4f}")


if __name__ == "__main__":
    main()
