"""Validate the analytic models with a replicated simulation campaign.

Runs the EP workflow on the discrete-event WFMS (the reproduction's
stand-in for the real products the authors measured) as a campaign of
independent replications, compares the Section 4/5 predictions against
the simulated 95% confidence intervals, and closes the loop by
recalibrating the models from one replication's audit trail
(Section 7.1).

Run:  python examples/simulation_validation.py   (~30 s)
"""

from repro.core.availability import AvailabilityModel
from repro.core.performance import (
    PerformanceModel,
    SystemConfiguration,
    Workload,
    WorkloadItem,
)
from repro.monitor.calibration import (
    estimate_transition_probabilities,
    estimate_turnaround_time,
)
from repro.sim.campaign import (
    CampaignPlan,
    run_campaign,
    run_replication,
    validate_against_models,
)
from repro.tool import ConfigurationTool, WorkflowRepository
from repro.wfms import RoutingPolicy, SimulatedWorkflowType
from repro.workflows import (
    ecommerce_activities,
    ecommerce_chart,
    ecommerce_workflow,
    standard_server_types,
)

ARRIVAL_RATE = 0.4      # EP instances per minute
REPLICATIONS = 4
DURATION = 4_000.0      # observed minutes per replication
WARMUP = 400.0


def main() -> None:
    types = standard_server_types()
    configuration = SystemConfiguration(
        {"comm-server": 1, "wf-engine": 2, "app-server": 3}
    )

    # ------------------------------------------------------------------
    # Run the replicated campaign.
    # ------------------------------------------------------------------
    plan = CampaignPlan(
        server_types=types,
        configuration=configuration,
        workflow_types=(
            SimulatedWorkflowType(
                ecommerce_chart(), ecommerce_activities(), ARRIVAL_RATE
            ),
        ),
        duration=DURATION,
        warmup=WARMUP,
        replications=REPLICATIONS,
        base_seed=42,
        routing_policy=RoutingPolicy.RANDOM,
        inject_failures=False,
    )
    print(f"Simulating {REPLICATIONS} x {DURATION:g} minutes of EP traffic "
          f"({ARRIVAL_RATE} arrivals/min) ...")
    result = run_campaign(plan)
    print(result.format_text())

    # ------------------------------------------------------------------
    # Analytic predictions against the replication CIs.
    # ------------------------------------------------------------------
    model = PerformanceModel(
        types, Workload([WorkloadItem(ecommerce_workflow(), ARRIVAL_RATE)])
    )
    validation = validate_against_models(result, model)
    print()
    print(validation.format_text())
    print()
    print("Note: at this department-scale arrival rate the waiting-time")
    print("rows sit above their CI by design — requests of one activity")
    print("reach the pools clustered in a short window, a pattern the")
    print("M/G/1 model idealizes away.  Turnaround and utilization match")
    print("quantitatively; see EXPERIMENTS.md (E7) for the enterprise-")
    print("scale campaign where the waiting times validate within CI too.")
    availability = AvailabilityModel(types, configuration)
    print(f"\nModel unavailability (not simulated here): "
          f"{availability.unavailability():.3e}")

    # ------------------------------------------------------------------
    # Calibration round trip (Section 7.1): re-estimate parameters from
    # the audit trail of one replication (run_replication keeps it).
    # ------------------------------------------------------------------
    report = run_replication(plan, 0)
    repository = WorkflowRepository()
    repository.register(ecommerce_chart(), ecommerce_activities())
    tool = ConfigurationTool(types, repository)
    calibration = tool.calibrate(report.trail, observation_period=DURATION)
    print()
    print(calibration.format_text())

    probabilities = estimate_transition_probabilities(report.trail, "EP")
    print("\nRe-estimated EP branching probabilities (designer values in "
          "parentheses):")
    print(f"  NewOrder -> CreditCardCheck: "
          f"{probabilities[('NewOrder', 'CreditCardCheck')]:.3f} (0.600)")
    print(f"  CreditCardCheck -> Shipment: "
          f"{probabilities[('CreditCardCheck', 'Shipment_S')]:.3f} (0.900)")
    measured_turnaround = estimate_turnaround_time(report.trail, "EP")
    print(f"  measured EP turnaround (replication 0): "
          f"{measured_turnaround:.2f} "
          f"(model: {model.turnaround_time('EP'):.2f})")


if __name__ == "__main__":
    main()
