"""Validate the analytic models against the simulated WFMS.

Runs the EP workflow on the discrete-event WFMS (the reproduction's
stand-in for the real products the authors measured), compares the
measurements with the Section 4/5 predictions, and closes the loop by
recalibrating the models from the run's audit trail (Section 7.1).

Run:  python examples/simulation_validation.py   (~30 s)
"""

from repro.core.availability import AvailabilityModel
from repro.core.performance import (
    PerformanceModel,
    SystemConfiguration,
    Workload,
    WorkloadItem,
)
from repro.monitor.calibration import (
    estimate_transition_probabilities,
    estimate_turnaround_time,
)
from repro.tool import ConfigurationTool, WorkflowRepository
from repro.wfms import RoutingPolicy, SimulatedWFMS, SimulatedWorkflowType
from repro.workflows import (
    ecommerce_activities,
    ecommerce_chart,
    ecommerce_workflow,
    standard_server_types,
)

ARRIVAL_RATE = 0.4      # EP instances per minute
DURATION = 20_000.0     # observed minutes
WARMUP = 1_000.0


def main() -> None:
    types = standard_server_types()
    configuration = SystemConfiguration(
        {"comm-server": 1, "wf-engine": 2, "app-server": 3}
    )

    # ------------------------------------------------------------------
    # Run the simulated WFMS.
    # ------------------------------------------------------------------
    print(f"Simulating {DURATION:g} minutes of EP traffic "
          f"({ARRIVAL_RATE} arrivals/min) ...")
    wfms = SimulatedWFMS(
        server_types=types,
        configuration=configuration,
        workflow_types=[
            SimulatedWorkflowType(
                ecommerce_chart(), ecommerce_activities(), ARRIVAL_RATE
            )
        ],
        seed=42,
        routing_policy=RoutingPolicy.ROUND_ROBIN,
    )
    report = wfms.run(duration=DURATION, warmup=WARMUP)
    print(report.format_text())

    # ------------------------------------------------------------------
    # Analytic predictions side by side.
    # ------------------------------------------------------------------
    model = PerformanceModel(
        types, Workload([WorkloadItem(ecommerce_workflow(), ARRIVAL_RATE)])
    )
    availability = AvailabilityModel(types, configuration)
    print("\nAnalytic vs simulated:")
    print(f"  turnaround  EP: {model.turnaround_time('EP'):10.3f}  vs  "
          f"{report.workflow_types['EP'].mean_turnaround_time:10.3f}")
    utilizations = model.utilizations(configuration)
    waits = model.waiting_times(configuration)
    for i, name in enumerate(types.names):
        measured = report.server_types[name]
        print(f"  {name:14s} utilization {utilizations[i]:7.4f} vs "
              f"{measured.utilization:7.4f}   waiting {waits[i]:8.5f} vs "
              f"{measured.mean_waiting_time:8.5f}")
    print(f"  unavailability: {availability.unavailability():.3e}  vs  "
          f"{report.system_unavailability:.3e}")

    # ------------------------------------------------------------------
    # Calibration round trip (Section 7.1): re-estimate parameters from
    # the audit trail the run produced.
    # ------------------------------------------------------------------
    repository = WorkflowRepository()
    repository.register(ecommerce_chart(), ecommerce_activities())
    tool = ConfigurationTool(types, repository)
    calibration = tool.calibrate(report.trail, observation_period=DURATION)
    print()
    print(calibration.format_text())

    probabilities = estimate_transition_probabilities(report.trail, "EP")
    print("\nRe-estimated EP branching probabilities (designer values in "
          "parentheses):")
    print(f"  NewOrder -> CreditCardCheck: "
          f"{probabilities[('NewOrder', 'CreditCardCheck')]:.3f} (0.600)")
    print(f"  CreditCardCheck -> Shipment: "
          f"{probabilities[('CreditCardCheck', 'Shipment_S')]:.3f} (0.900)")
    measured_turnaround = estimate_turnaround_time(report.trail, "EP")
    print(f"  measured EP turnaround: {measured_turnaround:.2f} "
          f"(model: {model.turnaround_time('EP'):.2f})")


if __name__ == "__main__":
    main()
