"""Availability planning: the Section 5.2 worked example and beyond.

Reproduces the paper's headline numbers (71 hours, 10 seconds, under a
minute of downtime per year), then explores the planning questions the
availability model answers: how many replicas does each type need for a
target availability level, what does a single repair crew cost, and how
do near-deterministic (Erlang) maintenance windows change the picture.

Run:  python examples/availability_planning.py
"""

from repro.core.availability import (
    AvailabilityModel,
    RepairPolicy,
    ServerPoolAvailability,
    minimum_replicas_for_availability,
)
from repro.core.performance import SystemConfiguration
from repro.core.phase_type import PhaseTypeRepairPool, erlang_phase
from repro.workflows import standard_server_types


def main() -> None:
    types = standard_server_types()

    # ------------------------------------------------------------------
    # The worked example of Section 5.2.
    # ------------------------------------------------------------------
    print("Section 5.2 worked example "
          "(failures: monthly/weekly/daily, repairs: 10 min)")
    print(f"{'configuration':24s} {'unavailability':>15s} "
          f"{'downtime/year':>16s}")
    for counts in [(1, 1, 1), (2, 2, 2), (2, 2, 3), (3, 3, 3)]:
        configuration = SystemConfiguration(dict(zip(types.names, counts)))
        model = AvailabilityModel(types, configuration)
        hours = model.downtime_per_year("hours")
        if hours >= 1.0:
            downtime = f"{hours:10.1f} hours"
        else:
            downtime = f"{model.downtime_per_year('seconds'):10.1f} seconds"
        print(f"{str(counts):24s} {model.unavailability():15.3e} "
              f"{downtime:>16s}")

    # ------------------------------------------------------------------
    # Planning: replicas needed per type for a target availability.
    # ------------------------------------------------------------------
    print("\nReplicas needed per type to keep the *type's* unavailability "
          "below target:")
    print(f"{'server type':16s} {'1e-4':>6s} {'1e-6':>6s} {'1e-9':>6s}")
    for spec in types.specs:
        row = [
            minimum_replicas_for_availability(spec, target)
            for target in (1e-4, 1e-6, 1e-9)
        ]
        print(f"{spec.name:16s} {row[0]:6d} {row[1]:6d} {row[2]:6d}")

    # ------------------------------------------------------------------
    # What does sharing one repair crew per type cost?
    # ------------------------------------------------------------------
    print("\nIndependent repairs vs a single repair crew "
          "(app-server, 3 replicas):")
    app = types.spec("app-server")
    for policy in (RepairPolicy.INDEPENDENT, RepairPolicy.SINGLE_CREW):
        pool = ServerPoolAvailability(app, count=3, policy=policy)
        print(f"  {policy.value:12s} unavailability "
              f"{pool.unavailability:.3e}")

    # ------------------------------------------------------------------
    # Non-exponential maintenance windows (Section 5.1 remark):
    # an Erlang-8 repair of the same 10-minute mean is nearly
    # deterministic and improves availability of replicated pools.
    # ------------------------------------------------------------------
    print("\nErlang-k repair windows (same 10-minute mean, single crew, "
          "app-server x3):")
    for stages in (1, 2, 4, 8):
        pool = PhaseTypeRepairPool(
            app, 3, erlang_phase(stages, mean=app.mean_time_to_repair)
        )
        print(f"  Erlang-{stages:<2d} unavailability "
              f"{pool.unavailability:.3e}")


if __name__ == "__main__":
    main()
