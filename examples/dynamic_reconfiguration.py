"""Dynamic reconfiguration of a running WFMS (Section 7.1, last step).

The full operational loop: configure the system for the assumed load,
run it (in simulation), watch the monitoring data, detect that the real
load has outgrown the assumption, and let the advisor recommend a
scale-out plan — then verify the new configuration holds, and watch the
advisor recommend downsizing when the load drops again.

Run:  python examples/dynamic_reconfiguration.py   (~30 s)
"""

from repro.core.goals import PerformabilityGoals
from repro.tool import (
    ConfigurationTool,
    ReconfigurationAdvisor,
    WorkflowRepository,
)
from repro.wfms import RoutingPolicy, SimulatedWFMS, SimulatedWorkflowType
from repro.workflows import (
    ecommerce_activities,
    ecommerce_chart,
    standard_server_types,
)

GOALS = PerformabilityGoals(max_waiting_time=0.25, max_unavailability=1e-5)
ASSUMED_RATE = 0.3            # EP instances/minute the system was sized for
OBSERVATION = 8_000.0         # length of each monitoring window (minutes)


def run_window(configuration, arrival_rate, seed):
    """One monitoring window on the simulated WFMS."""
    wfms = SimulatedWFMS(
        server_types=standard_server_types(),
        configuration=configuration,
        workflow_types=[
            SimulatedWorkflowType(
                ecommerce_chart(), ecommerce_activities(), arrival_rate
            )
        ],
        seed=seed,
        routing_policy=RoutingPolicy.ROUND_ROBIN,
        inject_failures=False,
    )
    return wfms.run(duration=OBSERVATION, warmup=500.0)


def main() -> None:
    repository = WorkflowRepository()
    repository.register(ecommerce_chart(), ecommerce_activities())
    tool = ConfigurationTool(standard_server_types(), repository)
    advisor = ReconfigurationAdvisor(tool, GOALS)

    # ------------------------------------------------------------------
    # Day 0: size the system for the assumed load.
    # ------------------------------------------------------------------
    initial = tool.recommend(GOALS, {"EP": ASSUMED_RATE}).configuration
    print(f"Initial configuration for {ASSUMED_RATE}/min: {initial}\n")

    # ------------------------------------------------------------------
    # Weeks later: the business has grown to 3x the assumed load.
    # ------------------------------------------------------------------
    print("Monitoring window 1: actual load 3x the assumption ...")
    report = run_window(initial, 3 * ASSUMED_RATE, seed=1)
    plan = advisor.advise(
        initial, {"EP": ASSUMED_RATE}, report.trail, OBSERVATION
    )
    print(plan.format_text())
    scaled_out = plan.recommended

    # ------------------------------------------------------------------
    # After the reconfiguration: verify the new configuration holds.
    # ------------------------------------------------------------------
    print("\nMonitoring window 2: after scale-out, same 3x load ...")
    report = run_window(scaled_out, 3 * ASSUMED_RATE, seed=2)
    plan = advisor.advise(
        scaled_out, {"EP": 3 * ASSUMED_RATE}, report.trail, OBSERVATION
    )
    print(plan.format_text())

    # ------------------------------------------------------------------
    # Off-season: load drops far below capacity.
    # ------------------------------------------------------------------
    print("\nMonitoring window 3: load drops to 0.5x the assumption ...")
    report = run_window(scaled_out, 0.5 * ASSUMED_RATE, seed=3)
    plan = advisor.advise(
        scaled_out, {"EP": 3 * ASSUMED_RATE}, report.trail, OBSERVATION
    )
    print(plan.format_text())


if __name__ == "__main__":
    main()
