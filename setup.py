"""Legacy setuptools shim.

The execution environment has setuptools without the ``wheel`` package, so
PEP 660 editable installs fail; this shim enables
``pip install -e . --no-build-isolation --no-use-pep517``.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
