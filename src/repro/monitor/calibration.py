"""Calibration of model parameters from audit trails (Section 7.1).

"If the entire workflow application is already operational and our goal is
to reconfigure the WFMS, then the transition probabilities can be derived
from audit trails of previous workflow executions" — this module
implements that derivation: maximum-likelihood estimates of transition
probabilities, sample means of residence times and turnaround times, and
the first two moments of server service times.  The estimates can be
assembled directly into a :class:`~repro.core.workflow_model.WorkflowDefinition`
(for the top level of a workflow type) or into updated
:class:`~repro.core.model_types.ServerTypeSpec` values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model_types import ServerTypeSpec
from repro.core.workflow_model import WorkflowDefinition, WorkflowState
from repro.exceptions import ValidationError
from repro.monitor.audit import TERMINATION, AuditTrail
from repro.sim.statistics import RunningStats


@dataclass(frozen=True)
class ServiceTimeEstimate:
    """Estimated service-time moments of one server type."""

    server_type: str
    sample_count: int
    mean: float
    second_moment: float
    mean_waiting_time: float


def estimate_transition_probabilities(
    trail: AuditTrail, workflow_type: str
) -> dict[tuple[str, str], float]:
    """Maximum-likelihood transition probabilities from observed visits.

    For every observed state, the probability of a successor is its
    observed frequency among departures from that state.  Transitions into
    the termination marker are omitted (the model layer adds the absorbing
    transition itself).
    """
    departures: dict[str, dict[str, int]] = {}
    for record in trail.visits_of(workflow_type):
        successors = departures.setdefault(record.state, {})
        successors[record.next_state] = successors.get(record.next_state, 0) + 1
    if not departures:
        raise ValidationError(
            f"no state visits of workflow type {workflow_type!r} in trail"
        )
    probabilities: dict[tuple[str, str], float] = {}
    for state, successors in departures.items():
        total = sum(successors.values())
        for next_state, count in successors.items():
            if next_state == TERMINATION:
                continue
            probabilities[(state, next_state)] = count / total
    return probabilities


def estimate_residence_times(
    trail: AuditTrail, workflow_type: str
) -> dict[str, float]:
    """Sample-mean residence time per execution state."""
    stats: dict[str, RunningStats] = {}
    for record in trail.visits_of(workflow_type):
        stats.setdefault(record.state, RunningStats()).add(
            record.residence_time
        )
    if not stats:
        raise ValidationError(
            f"no state visits of workflow type {workflow_type!r} in trail"
        )
    return {state: collector.mean for state, collector in stats.items()}


def estimate_turnaround_time(
    trail: AuditTrail, workflow_type: str
) -> float:
    """Sample-mean turnaround time of completed instances."""
    stats = RunningStats()
    for record in trail.instances_of(workflow_type):
        stats.add(record.turnaround_time)
    if not stats.count:
        raise ValidationError(
            f"no completed instances of workflow type {workflow_type!r}"
        )
    return stats.mean


def estimate_arrival_rate(
    trail: AuditTrail, workflow_type: str, observation_period: float
) -> float:
    """Observed arrivals per time unit over the observation window."""
    if observation_period <= 0.0:
        raise ValidationError("observation period must be positive")
    count = sum(1 for _ in trail.instances_of(workflow_type))
    return count / observation_period


def estimate_service_times(trail: AuditTrail) -> dict[str, ServiceTimeEstimate]:
    """First two service-time moments per server type, plus mean waits."""
    service: dict[str, RunningStats] = {}
    waiting: dict[str, RunningStats] = {}
    for record in trail.service_requests:
        service.setdefault(record.server_type, RunningStats()).add(
            record.service_time
        )
        waiting.setdefault(record.server_type, RunningStats()).add(
            record.waiting_time
        )
    return {
        server_type: ServiceTimeEstimate(
            server_type=server_type,
            sample_count=collector.count,
            mean=collector.mean,
            second_moment=collector.second_moment,
            mean_waiting_time=waiting[server_type].mean,
        )
        for server_type, collector in service.items()
    }


def estimate_requests_per_instance(
    trail: AuditTrail, workflow_type: str
) -> dict[str, float]:
    """Estimate the load vector ``r_{x,t}`` from monitoring data (§4.2).

    "In practice, the entries of the load matrix have to be determined by
    collecting appropriate runtime statistics" — this joins the service
    request records with the instance records of one workflow type and
    reports the mean number of requests per *completed* instance, per
    server type.  Requests without instance attribution are ignored.
    """
    instance_ids = {
        record.instance_id
        for record in trail.instances_of(workflow_type)
    }
    if not instance_ids:
        raise ValidationError(
            f"no completed instances of workflow type {workflow_type!r}"
        )
    counts: dict[str, int] = {}
    for record in trail.service_requests:
        if record.instance_id in instance_ids:
            counts[record.server_type] = (
                counts.get(record.server_type, 0) + 1
            )
    return {
        server_type: count / len(instance_ids)
        for server_type, count in counts.items()
    }


def calibrate_server_type(
    spec: ServerTypeSpec, estimate: ServiceTimeEstimate
) -> ServerTypeSpec:
    """A copy of ``spec`` with measured service-time moments.

    Guards against degenerate samples: the second moment is floored at
    the squared mean (zero-variance sample).
    """
    if estimate.sample_count < 1:
        raise ValidationError(
            f"no service samples for server type {spec.name}"
        )
    return ServerTypeSpec(
        name=spec.name,
        mean_service_time=estimate.mean,
        second_moment_service_time=max(
            estimate.second_moment, estimate.mean**2
        ),
        failure_rate=spec.failure_rate,
        repair_rate=spec.repair_rate,
        cost=spec.cost,
        role=spec.role,
    )


def calibrate_flat_workflow(
    trail: AuditTrail,
    workflow_type: str,
    initial_state: str,
    reference: WorkflowDefinition | None = None,
) -> WorkflowDefinition:
    """Reconstruct a flat workflow definition from an audit trail.

    States observed in the trail become routing states carrying the
    estimated residence times (which *include* any subworkflow runtimes,
    so the reconstruction is behaviourally flat); transition probabilities
    are the observed frequencies.  When a ``reference`` definition is
    given, its activity attachments are preserved for states whose
    activities are known, so that load matrices survive recalibration.
    """
    probabilities = estimate_transition_probabilities(trail, workflow_type)
    residence = estimate_residence_times(trail, workflow_type)
    return build_flat_workflow(
        probabilities, residence, workflow_type, initial_state, reference
    )


def build_flat_workflow(
    probabilities: dict[tuple[str, str], float],
    residence: dict[str, float],
    workflow_type: str,
    initial_state: str,
    reference: WorkflowDefinition | None = None,
) -> WorkflowDefinition:
    """Assemble a flat workflow definition from estimated parameters.

    Shared by the batch path (:func:`calibrate_flat_workflow`) and the
    streaming path
    (:meth:`repro.monitor.stream.StreamingCalibrator.flat_workflow`):
    both produce the same estimate dictionaries, so the reconstructed
    definitions are identical.
    """
    state_names = sorted(
        set(residence)
        | {target for (_, target) in probabilities}
    )
    if initial_state not in state_names:
        raise ValidationError(
            f"initial state {initial_state!r} never observed in trail"
        )
    states = []
    for name in state_names:
        activity = None
        if reference is not None:
            try:
                activity = reference.state(name).activity
            except ValidationError:
                activity = None
        duration = residence.get(name)
        if duration is None or duration <= 0.0:
            duration = 1e-6  # observed only as a target; near-instant
        states.append(
            WorkflowState(
                name=name, activity=activity, mean_duration=duration
            )
        )
    return WorkflowDefinition(
        name=workflow_type,
        states=tuple(states),
        transitions=probabilities,
        initial_state=initial_state,
    )
