"""Persistence of audit trails as JSON Lines.

A real monitoring pipeline collects audit records continuously and the
calibration component consumes them offline (Section 7.1); this module
provides the interchange format: one JSON object per line, with a
``kind`` discriminator (``state_visit`` / ``service_request`` /
``instance``).  Files written by one process can be merged and loaded by
another, and loading validates every record through the dataclass
constructors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.exceptions import ValidationError
from repro.monitor.audit import (
    AuditTrail,
    InstanceRecord,
    ServiceRequestRecord,
    StateVisitRecord,
)

_KIND_STATE_VISIT = "state_visit"
_KIND_SERVICE_REQUEST = "service_request"
_KIND_INSTANCE = "instance"


def _record_lines(trail: AuditTrail) -> Iterator[dict[str, Any]]:
    for visit in trail.state_visits:
        yield {
            "kind": _KIND_STATE_VISIT,
            "instance_id": visit.instance_id,
            "workflow_type": visit.workflow_type,
            "state": visit.state,
            "entered_at": visit.entered_at,
            "left_at": visit.left_at,
            "next_state": visit.next_state,
        }
    for request in trail.service_requests:
        yield {
            "kind": _KIND_SERVICE_REQUEST,
            "server_type": request.server_type,
            "server_name": request.server_name,
            "submitted_at": request.submitted_at,
            "started_at": request.started_at,
            "completed_at": request.completed_at,
            "instance_id": request.instance_id,
        }
    for instance in trail.instances:
        yield {
            "kind": _KIND_INSTANCE,
            "instance_id": instance.instance_id,
            "workflow_type": instance.workflow_type,
            "started_at": instance.started_at,
            "completed_at": instance.completed_at,
        }


def save_trail(trail: AuditTrail, path: str | Path) -> int:
    """Write a trail as JSON Lines; returns the number of records."""
    count = 0
    with Path(path).open("w") as stream:
        for record in _record_lines(trail):
            stream.write(json.dumps(record, sort_keys=True))
            stream.write("\n")
            count += 1
    return count


def _parse_record(data: dict[str, Any], line_number: int, trail: AuditTrail) -> None:
    kind = data.pop("kind", None)
    try:
        if kind == _KIND_STATE_VISIT:
            trail.record_state_visit(StateVisitRecord(**data))
        elif kind == _KIND_SERVICE_REQUEST:
            trail.record_service_request(ServiceRequestRecord(**data))
        elif kind == _KIND_INSTANCE:
            trail.record_instance(InstanceRecord(**data))
        else:
            raise ValidationError(f"unknown record kind {kind!r}")
    except TypeError as exc:
        raise ValidationError(
            f"line {line_number}: malformed {kind} record: {exc}"
        ) from exc


def load_trail(path: str | Path) -> AuditTrail:
    """Read a JSON Lines trail file; validates every record."""
    trail = AuditTrail()
    try:
        lines = Path(path).read_text().splitlines()
    except FileNotFoundError:
        raise ValidationError(f"trail file not found: {path}") from None
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"line {line_number}: invalid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ValidationError(
                f"line {line_number}: expected a JSON object"
            )
        _parse_record(data, line_number, trail)
    return trail


def merge_trail_files(
    paths: Iterable[str | Path], output: str | Path
) -> int:
    """Concatenate several trail files into one; returns record count."""
    merged = AuditTrail()
    for path in paths:
        merged = merged.merge([load_trail(path)])
    return save_trail(merged, output)
