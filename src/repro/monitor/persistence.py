"""Persistence of audit trails as JSON Lines.

A real monitoring pipeline collects audit records continuously and the
calibration component consumes them offline (Section 7.1); this module
provides the interchange format: one JSON object per line, with a
``kind`` discriminator (``state_visit`` / ``service_request`` /
``instance``).  Files written by one process can be merged and loaded by
another, and loading validates every record through the dataclass
constructors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.exceptions import ValidationError
from repro.monitor.audit import (
    AuditTrail,
    InstanceRecord,
    ServiceRequestRecord,
    StateVisitRecord,
)

_KIND_STATE_VISIT = "state_visit"
_KIND_SERVICE_REQUEST = "service_request"
_KIND_INSTANCE = "instance"


def _record_lines(trail: AuditTrail) -> Iterator[dict[str, Any]]:
    for visit in trail.state_visits:
        yield {
            "kind": _KIND_STATE_VISIT,
            "instance_id": visit.instance_id,
            "workflow_type": visit.workflow_type,
            "state": visit.state,
            "entered_at": visit.entered_at,
            "left_at": visit.left_at,
            "next_state": visit.next_state,
        }
    for request in trail.service_requests:
        yield {
            "kind": _KIND_SERVICE_REQUEST,
            "server_type": request.server_type,
            "server_name": request.server_name,
            "submitted_at": request.submitted_at,
            "started_at": request.started_at,
            "completed_at": request.completed_at,
            "instance_id": request.instance_id,
        }
    for instance in trail.instances:
        yield {
            "kind": _KIND_INSTANCE,
            "instance_id": instance.instance_id,
            "workflow_type": instance.workflow_type,
            "started_at": instance.started_at,
            "completed_at": instance.completed_at,
        }


def save_trail(trail: AuditTrail, path: str | Path) -> int:
    """Write a trail as JSON Lines; returns the number of records."""
    count = 0
    with Path(path).open("w") as stream:
        for record in _record_lines(trail):
            stream.write(json.dumps(record, sort_keys=True))
            stream.write("\n")
            count += 1
    return count


def _build_record(
    data: dict[str, Any], line_number: int
) -> StateVisitRecord | ServiceRequestRecord | InstanceRecord:
    kind = data.pop("kind", None)
    try:
        if kind == _KIND_STATE_VISIT:
            return StateVisitRecord(**data)
        if kind == _KIND_SERVICE_REQUEST:
            return ServiceRequestRecord(**data)
        if kind == _KIND_INSTANCE:
            return InstanceRecord(**data)
        raise ValidationError(f"unknown record kind {kind!r}")
    except TypeError as exc:
        raise ValidationError(
            f"line {line_number}: malformed {kind} record: {exc}"
        ) from exc


def parse_record_line(
    line: str, line_number: int = 0
) -> StateVisitRecord | ServiceRequestRecord | InstanceRecord:
    """Parse one JSONL audit-record line into a validated record.

    The single-record counterpart of :func:`iter_trail_records`, used by
    the recommendation service's ``POST /events`` ingestion — the wire
    format of an event body is exactly the on-disk trail format, so a
    trail file can be replayed against a running service verbatim.
    Raises :class:`~repro.exceptions.ValidationError` (tagged with
    ``line_number``) on malformed JSON or records.
    """
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValidationError(
            f"line {line_number}: invalid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ValidationError(f"line {line_number}: expected a JSON object")
    return _build_record(data, line_number)


def load_trail(path: str | Path) -> AuditTrail:
    """Read a JSON Lines trail file; validates every record."""
    trail = AuditTrail()
    for record in iter_trail_records(path):
        if isinstance(record, StateVisitRecord):
            trail.record_state_visit(record)
        elif isinstance(record, ServiceRequestRecord):
            trail.record_service_request(record)
        else:
            trail.record_instance(record)
    return trail


def iter_trail_records(
    path: str | Path,
) -> Iterator[StateVisitRecord | ServiceRequestRecord | InstanceRecord]:
    """Stream a JSON Lines trail file one validated record at a time.

    This is the continuous-monitoring entry point: a live pipeline (or
    the ``monitor`` CLI subcommand) feeds each yielded record straight
    into a :class:`~repro.monitor.stream.StreamingCalibrator` without
    materializing the whole trail in memory.  Records are yielded in
    file order; malformed lines raise
    :class:`~repro.exceptions.ValidationError` with their line number.
    """
    try:
        stream = Path(path).open("r", encoding="utf-8")
    except FileNotFoundError:
        raise ValidationError(f"trail file not found: {path}") from None
    with stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(
                    f"line {line_number}: invalid JSON: {exc}"
                ) from exc
            if not isinstance(data, dict):
                raise ValidationError(
                    f"line {line_number}: expected a JSON object"
                )
            yield _build_record(data, line_number)


def merge_trail_files(
    paths: Iterable[str | Path], output: str | Path
) -> int:
    """Concatenate several trail files into one; returns record count."""
    merged = AuditTrail()
    for path in paths:
        merged = merged.merge([load_trail(path)])
    return save_trail(merged, output)
