"""Streaming calibration: audit records in, one at a time, estimates out.

:mod:`repro.monitor.calibration` re-estimates model parameters from a
*complete* audit trail — fine for offline reconfiguration studies, but
the paper's Section 7 tool loop (monitor -> calibrate -> evaluate ->
recommend) wants a component that watches a *running* system.  This
module provides it: a :class:`StreamingCalibrator` consumes
:class:`~repro.monitor.audit.StateVisitRecord` /
:class:`~repro.monitor.audit.ServiceRequestRecord` /
:class:`~repro.monitor.audit.InstanceRecord` objects one at a time and
maintains exactly the sufficient statistics the batch estimators
compute:

* online transition counts (maximum-likelihood probabilities on query);
* Welford residence-time, turnaround, and service-time moments (the
  same :class:`~repro.sim.statistics.RunningStats` accumulator the
  batch path uses, updated in the same order);
* cumulative and *windowed* arrival-rate estimation (a sliding window
  of instance completions, for drift-sensitive rate tracking).

Because every accumulator is updated by the identical float operations
in the identical order, a full replay of a trail reproduces the batch
estimates **bitwise** — ``tests/monitor/test_stream.py`` asserts
equality, not approximation.  The estimator outputs are plain
dictionaries and floats (model-agnostic, in the spirit of the
probabilistic-workflow-net line of work), so any backend — the CTMC
pipeline, a future workflow-net evaluator, or the drift detectors in
:mod:`repro.monitor.drift` — can consume them.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable

from repro import obs
from repro.core.workflow_model import WorkflowDefinition
from repro.exceptions import ValidationError
from repro.monitor.audit import (
    TERMINATION,
    AuditTrail,
    InstanceRecord,
    ServiceRequestRecord,
    StateVisitRecord,
)
from repro.monitor.calibration import (
    ServiceTimeEstimate,
    build_flat_workflow,
)
from repro.sim.statistics import RunningStats

__all__ = ["StreamingCalibrator"]

AuditRecord = StateVisitRecord | ServiceRequestRecord | InstanceRecord

#: Schema identifier of :meth:`StreamingCalibrator.document`.
SCHEMA = "repro.monitor.stream/v1"


class StreamingCalibrator:
    """Incremental re-implementation of the Section 7.1 estimators.

    Feed records via :meth:`observe` (or the typed ``observe_*``
    variants, or :meth:`replay` for a whole trail); query estimates at
    any time.  Queries mirror the batch API one-to-one and raise
    :class:`~repro.exceptions.ValidationError` under the same empty
    conditions, so the two paths are drop-in interchangeable.

    ``window`` bounds the sliding completion-time window used by
    :meth:`windowed_arrival_rate` (in simulation time units).
    """

    def __init__(self, window: float = 1_000.0) -> None:
        if window <= 0.0:
            raise ValidationError("window must be positive")
        self.window = window
        self.records_seen = 0
        # workflow type -> state -> successor -> count, all insertion
        # ordered exactly as the batch estimator builds them.
        self._departures: dict[str, dict[str, dict[str, int]]] = {}
        # workflow type -> state -> residence-time accumulator.
        self._residence: dict[str, dict[str, RunningStats]] = {}
        # workflow type -> turnaround accumulator over completions.
        self._turnaround: dict[str, RunningStats] = {}
        # workflow type -> completion count (the batch arrival counter).
        self._completions: dict[str, int] = {}
        # workflow type -> recent completion times (windowed rate).
        self._completion_times: dict[str, deque[float]] = {}
        # server type -> service/waiting accumulators, insertion ordered
        # by first request as in the batch estimator.
        self._service: dict[str, RunningStats] = {}
        self._waiting: dict[str, RunningStats] = {}
        # instance id -> server type -> request count (load vectors).
        self._instance_requests: dict[int, dict[str, int]] = {}
        # workflow type -> ids of completed instances.
        self._completed_ids: dict[str, set[int]] = {}
        # Observed time span (for the default observation period).
        self._first_timestamp: float | None = None
        self._last_timestamp: float | None = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def observe(self, record: AuditRecord) -> None:
        """Consume one audit record of any kind."""
        if isinstance(record, StateVisitRecord):
            self.observe_state_visit(record)
        elif isinstance(record, ServiceRequestRecord):
            self.observe_service_request(record)
        elif isinstance(record, InstanceRecord):
            self.observe_instance(record)
        else:
            raise ValidationError(
                f"unknown audit record type {type(record).__name__}"
            )

    def observe_state_visit(self, record: StateVisitRecord) -> None:
        """Update transition counts and residence-time moments."""
        departures = self._departures.setdefault(record.workflow_type, {})
        successors = departures.setdefault(record.state, {})
        successors[record.next_state] = (
            successors.get(record.next_state, 0) + 1
        )
        residence = self._residence.setdefault(record.workflow_type, {})
        residence.setdefault(record.state, RunningStats()).add(
            record.residence_time
        )
        self._advance_clock(record.entered_at, record.left_at)
        self._count_record()

    def observe_service_request(self, record: ServiceRequestRecord) -> None:
        """Update service-time/waiting moments and per-instance loads."""
        self._service.setdefault(record.server_type, RunningStats()).add(
            record.service_time
        )
        self._waiting.setdefault(record.server_type, RunningStats()).add(
            record.waiting_time
        )
        if record.instance_id >= 0:
            counts = self._instance_requests.setdefault(
                record.instance_id, {}
            )
            counts[record.server_type] = (
                counts.get(record.server_type, 0) + 1
            )
        self._advance_clock(record.submitted_at, record.completed_at)
        self._count_record()

    def observe_instance(self, record: InstanceRecord) -> None:
        """Update turnaround moments and (windowed) arrival counts."""
        workflow_type = record.workflow_type
        self._turnaround.setdefault(workflow_type, RunningStats()).add(
            record.turnaround_time
        )
        self._completions[workflow_type] = (
            self._completions.get(workflow_type, 0) + 1
        )
        times = self._completion_times.setdefault(workflow_type, deque())
        times.append(record.completed_at)
        cutoff = record.completed_at - self.window
        while times and times[0] <= cutoff:
            times.popleft()
        self._completed_ids.setdefault(workflow_type, set()).add(
            record.instance_id
        )
        self._advance_clock(record.started_at, record.completed_at)
        self._count_record()

    def replay(self, trail: AuditTrail) -> None:
        """Feed a whole trail in the batch estimators' traversal order.

        State visits, then service requests, then instances — each
        category in trail order, which is exactly how the batch
        functions iterate, so estimates after a replay equal the batch
        estimates bitwise.  (The categories are independent, so any
        interleaving that preserves per-category order — e.g. a live
        feed or a JSONL file — gives the same result.)
        """
        for visit in trail.state_visits:
            self.observe_state_visit(visit)
        for request in trail.service_requests:
            self.observe_service_request(request)
        for instance in trail.instances:
            self.observe_instance(instance)

    def replay_records(self, records: Iterable[AuditRecord]) -> int:
        """Feed an arbitrary record stream; returns the record count.

        The streaming companion to :meth:`replay`, typically fed from
        :func:`repro.monitor.persistence.iter_trail_records`.
        """
        count = 0
        for record in records:
            self.observe(record)
            count += 1
        return count

    def _advance_clock(self, start: float, end: float) -> None:
        if self._first_timestamp is None or start < self._first_timestamp:
            self._first_timestamp = start
        if self._last_timestamp is None or end > self._last_timestamp:
            self._last_timestamp = end

    def _count_record(self) -> None:
        self.records_seen += 1
        obs.count("monitor.stream.records")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def workflow_types(self) -> frozenset[str]:
        """All workflow type names observed so far."""
        return frozenset(self._departures) | frozenset(self._completions)

    def server_types(self) -> frozenset[str]:
        """All server type names observed so far."""
        return frozenset(self._service)

    @property
    def observed_span(self) -> float:
        """Width of the observed time window (0 before any record)."""
        if self._first_timestamp is None or self._last_timestamp is None:
            return 0.0
        return self._last_timestamp - self._first_timestamp

    # ------------------------------------------------------------------
    # Queries (mirror repro.monitor.calibration one-to-one)
    # ------------------------------------------------------------------
    def transition_probabilities(
        self, workflow_type: str
    ) -> dict[tuple[str, str], float]:
        """Maximum-likelihood transition probabilities observed so far.

        Matches :func:`~repro.monitor.calibration.estimate_transition_probabilities`
        bitwise on the same record sequence.
        """
        departures = self._departures.get(workflow_type)
        if not departures:
            raise ValidationError(
                f"no state visits of workflow type {workflow_type!r} "
                f"observed"
            )
        probabilities: dict[tuple[str, str], float] = {}
        for state, successors in departures.items():
            total = sum(successors.values())
            for next_state, count in successors.items():
                if next_state == TERMINATION:
                    continue
                probabilities[(state, next_state)] = count / total
        return probabilities

    def residence_times(self, workflow_type: str) -> dict[str, float]:
        """Sample-mean residence time per execution state so far."""
        stats = self._residence.get(workflow_type)
        if not stats:
            raise ValidationError(
                f"no state visits of workflow type {workflow_type!r} "
                f"observed"
            )
        return {state: collector.mean for state, collector in stats.items()}

    def turnaround_time(self, workflow_type: str) -> float:
        """Sample-mean turnaround time of completed instances so far."""
        stats = self._turnaround.get(workflow_type)
        if stats is None or not stats.count:
            raise ValidationError(
                f"no completed instances of workflow type "
                f"{workflow_type!r}"
            )
        return stats.mean

    def arrival_rate(
        self, workflow_type: str, observation_period: float
    ) -> float:
        """Completed arrivals per time unit over a fixed period."""
        if observation_period <= 0.0:
            raise ValidationError("observation period must be positive")
        return self._completions.get(workflow_type, 0) / observation_period

    def windowed_arrival_rate(self, workflow_type: str) -> float:
        """Completions per time unit inside the sliding window.

        The window ends at the newest completion seen for the type;
        returns 0 before any completion.  This is the estimator the
        drift detectors watch — a rate shift shows up within one window
        instead of being averaged away over the whole history.
        """
        times = self._completion_times.get(workflow_type)
        if not times:
            return 0.0
        newest = times[-1]
        cutoff = newest - self.window
        while times and times[0] <= cutoff:
            times.popleft()
        span = min(self.window, self.observed_span) or self.window
        return len(times) / span

    def service_times(self) -> dict[str, ServiceTimeEstimate]:
        """First two service-time moments per server type so far."""
        return {
            server_type: ServiceTimeEstimate(
                server_type=server_type,
                sample_count=collector.count,
                mean=collector.mean,
                second_moment=collector.second_moment,
                mean_waiting_time=self._waiting[server_type].mean,
            )
            for server_type, collector in self._service.items()
        }

    def requests_per_instance(self, workflow_type: str) -> dict[str, float]:
        """Mean service requests per completed instance, per server type."""
        completed = self._completed_ids.get(workflow_type)
        if not completed:
            raise ValidationError(
                f"no completed instances of workflow type "
                f"{workflow_type!r}"
            )
        counts: dict[str, int] = {}
        for instance_id, per_type in self._instance_requests.items():
            if instance_id not in completed:
                continue
            for server_type, count in per_type.items():
                counts[server_type] = counts.get(server_type, 0) + count
        return {
            server_type: count / len(completed)
            for server_type, count in counts.items()
        }

    def flat_workflow(
        self,
        workflow_type: str,
        initial_state: str,
        reference: WorkflowDefinition | None = None,
    ) -> WorkflowDefinition:
        """Reconstruct a flat workflow definition from the stream.

        The streaming twin of
        :func:`~repro.monitor.calibration.calibrate_flat_workflow`.
        """
        return build_flat_workflow(
            self.transition_probabilities(workflow_type),
            self.residence_times(workflow_type),
            workflow_type,
            initial_state,
            reference,
        )

    # ------------------------------------------------------------------
    # Snapshot state (service warm restart)
    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, Any]:
        """JSON-serializable snapshot of every accumulator, exactly.

        Dictionaries are exported in insertion order (which the batch
        parity depends on) and floats survive the JSON round-trip
        bit-for-bit, so a calibrator rebuilt by :meth:`restore_state`
        continues the stream exactly where this one stopped: feeding the
        remaining records produces estimates bitwise identical to never
        having snapshotted at all.  This is what lets the recommendation
        service snapshot on shutdown and warm-restart without replaying
        the whole audit history.
        """
        return {
            "schema": SCHEMA,
            "window": self.window,
            "records_seen": self.records_seen,
            "departures": self._departures,
            "residence": {
                name: {
                    state: stats.export_state()
                    for state, stats in per_state.items()
                }
                for name, per_state in self._residence.items()
            },
            "turnaround": {
                name: stats.export_state()
                for name, stats in self._turnaround.items()
            },
            "completions": self._completions,
            "completion_times": {
                name: list(times)
                for name, times in self._completion_times.items()
            },
            "service": {
                name: stats.export_state()
                for name, stats in self._service.items()
            },
            "waiting": {
                name: stats.export_state()
                for name, stats in self._waiting.items()
            },
            "instance_requests": {
                str(instance_id): counts
                for instance_id, counts in self._instance_requests.items()
            },
            "completed_ids": {
                name: sorted(ids)
                for name, ids in self._completed_ids.items()
            },
            "first_timestamp": self._first_timestamp,
            "last_timestamp": self._last_timestamp,
        }

    @classmethod
    def restore_state(cls, state: dict[str, Any]) -> "StreamingCalibrator":
        """Rebuild a calibrator from :meth:`export_state` output."""
        if state.get("schema") != SCHEMA:
            raise ValidationError(
                f"unknown calibrator snapshot schema {state.get('schema')!r}"
            )
        calibrator = cls(window=float(state["window"]))
        calibrator.records_seen = int(state["records_seen"])
        calibrator._departures = {
            name: {
                visited: {
                    successor: int(count)
                    for successor, count in successors.items()
                }
                for visited, successors in per_state.items()
            }
            for name, per_state in state["departures"].items()
        }
        calibrator._residence = {
            name: {
                visited: RunningStats.restore_state(stats)
                for visited, stats in per_state.items()
            }
            for name, per_state in state["residence"].items()
        }
        calibrator._turnaround = {
            name: RunningStats.restore_state(stats)
            for name, stats in state["turnaround"].items()
        }
        calibrator._completions = {
            name: int(count) for name, count in state["completions"].items()
        }
        calibrator._completion_times = {
            name: deque(float(value) for value in times)
            for name, times in state["completion_times"].items()
        }
        calibrator._service = {
            name: RunningStats.restore_state(stats)
            for name, stats in state["service"].items()
        }
        calibrator._waiting = {
            name: RunningStats.restore_state(stats)
            for name, stats in state["waiting"].items()
        }
        calibrator._instance_requests = {
            int(instance_id): {
                server: int(count) for server, count in counts.items()
            }
            for instance_id, counts in state["instance_requests"].items()
        }
        calibrator._completed_ids = {
            name: set(int(value) for value in ids)
            for name, ids in state["completed_ids"].items()
        }
        first = state["first_timestamp"]
        last = state["last_timestamp"]
        calibrator._first_timestamp = None if first is None else float(first)
        calibrator._last_timestamp = None if last is None else float(last)
        return calibrator

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def document(
        self, observation_period: float | None = None
    ) -> dict[str, Any]:
        """JSON-serializable snapshot of every current estimate.

        ``observation_period`` defaults to the observed time span; it
        feeds the cumulative arrival-rate estimates.  Quantities with
        no observations yet are ``None`` rather than errors — a
        monitoring endpoint reports what it has.
        """
        if observation_period is None:
            observation_period = self.observed_span
        workflows: dict[str, Any] = {}
        for name in sorted(self.workflow_types()):
            stats = self._turnaround.get(name)
            entry: dict[str, Any] = {
                "completed_instances": self._completions.get(name, 0),
                "turnaround_time": (
                    stats.mean if stats is not None and stats.count else None
                ),
                "arrival_rate": (
                    self.arrival_rate(name, observation_period)
                    if observation_period > 0.0
                    else None
                ),
                "windowed_arrival_rate": self.windowed_arrival_rate(name),
            }
            try:
                entry["transition_probabilities"] = {
                    f"{source}->{target}": probability
                    for (source, target), probability in sorted(
                        self.transition_probabilities(name).items()
                    )
                }
                entry["residence_times"] = dict(
                    sorted(self.residence_times(name).items())
                )
            except ValidationError:
                entry["transition_probabilities"] = {}
                entry["residence_times"] = {}
            try:
                entry["requests_per_instance"] = dict(
                    sorted(self.requests_per_instance(name).items())
                )
            except ValidationError:
                entry["requests_per_instance"] = {}
            workflows[name] = entry
        servers = {
            name: {
                "sample_count": estimate.sample_count,
                "mean_service_time": estimate.mean,
                "second_moment_service_time": estimate.second_moment,
                "mean_waiting_time": estimate.mean_waiting_time,
            }
            for name, estimate in sorted(self.service_times().items())
        }
        return {
            "schema": SCHEMA,
            "records_seen": self.records_seen,
            "observation_period": observation_period,
            "window": self.window,
            "workflow_types": workflows,
            "server_types": servers,
        }
