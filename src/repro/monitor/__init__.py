"""Monitoring and calibration (Section 7.1): audit trails in, parameters out.

Batch calibration (:mod:`repro.monitor.calibration`) consumes complete
audit trails; the streaming layer (:mod:`repro.monitor.stream`,
:mod:`repro.monitor.drift`) consumes records one at a time, reproduces
the batch estimates bitwise, and watches for parameter drift —
the substrate of the continuous monitor -> calibrate -> evaluate ->
recommend loop.
"""

from repro.monitor.audit import (
    TERMINATION,
    AuditTrail,
    InstanceRecord,
    ServiceRequestRecord,
    StateVisitRecord,
)
from repro.monitor.persistence import (
    iter_trail_records,
    load_trail,
    merge_trail_files,
    parse_record_line,
    save_trail,
)
from repro.monitor.calibration import (
    ServiceTimeEstimate,
    build_flat_workflow,
    calibrate_flat_workflow,
    calibrate_server_type,
    estimate_arrival_rate,
    estimate_requests_per_instance,
    estimate_residence_times,
    estimate_service_times,
    estimate_transition_probabilities,
    estimate_turnaround_time,
)
from repro.monitor.stream import StreamingCalibrator
from repro.monitor.drift import (
    CusumDetector,
    DriftEvent,
    DriftMonitor,
    PageHinkleyDetector,
)

__all__ = [
    "AuditTrail",
    "CusumDetector",
    "DriftEvent",
    "DriftMonitor",
    "InstanceRecord",
    "PageHinkleyDetector",
    "ServiceRequestRecord",
    "ServiceTimeEstimate",
    "StateVisitRecord",
    "StreamingCalibrator",
    "TERMINATION",
    "build_flat_workflow",
    "calibrate_flat_workflow",
    "calibrate_server_type",
    "estimate_arrival_rate",
    "estimate_requests_per_instance",
    "estimate_residence_times",
    "estimate_service_times",
    "estimate_transition_probabilities",
    "estimate_turnaround_time",
    "iter_trail_records",
    "load_trail",
    "merge_trail_files",
    "parse_record_line",
    "save_trail",
]
