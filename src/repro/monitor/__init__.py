"""Monitoring and calibration (Section 7.1): audit trails in, parameters out."""

from repro.monitor.audit import (
    TERMINATION,
    AuditTrail,
    InstanceRecord,
    ServiceRequestRecord,
    StateVisitRecord,
)
from repro.monitor.persistence import (
    load_trail,
    merge_trail_files,
    save_trail,
)
from repro.monitor.calibration import (
    ServiceTimeEstimate,
    calibrate_flat_workflow,
    calibrate_server_type,
    estimate_arrival_rate,
    estimate_requests_per_instance,
    estimate_residence_times,
    estimate_service_times,
    estimate_transition_probabilities,
    estimate_turnaround_time,
)

__all__ = [
    "AuditTrail",
    "InstanceRecord",
    "ServiceRequestRecord",
    "ServiceTimeEstimate",
    "StateVisitRecord",
    "TERMINATION",
    "calibrate_flat_workflow",
    "calibrate_server_type",
    "estimate_arrival_rate",
    "estimate_requests_per_instance",
    "estimate_residence_times",
    "estimate_service_times",
    "estimate_transition_probabilities",
    "estimate_turnaround_time",
    "load_trail",
    "merge_trail_files",
    "save_trail",
]
