"""Sequential drift detection over streaming calibration statistics.

The batch comparator in :mod:`repro.tool.reconfiguration` answers "did
the parameters change between two calibration snapshots?"; this module
answers the *online* question — "has the running system drifted away
from the parameters the current configuration was chosen for?" — using
Page–Hinkley / CUSUM-style sequential change detectors:

* :class:`PageHinkleyDetector` — the classic two-sided Page–Hinkley
  test in its reset-at-minimum (CUSUM) formulation, optionally with
  magnitude/threshold relative to the running mean so one parameter set
  serves residence times of any scale;
* :class:`CusumDetector` — a two-sided CUSUM against a *known*
  reference mean, for watching a quantity against its calibrated value;
* :class:`DriftMonitor` — wires detectors over the three parameter
  families the paper calibrates (transition probabilities, residence
  times, arrival rates), feeds them from a
  :class:`~repro.monitor.stream.StreamingCalibrator`, emits
  ``monitor.drift.*`` obs counters and structured trace events, and on
  a confirmed drift invalidates attached
  :class:`~repro.core.evaluation_cache.EvaluationCache` instances so
  the next configuration search re-evaluates against freshly
  calibrated models — closing the paper's reconfiguration loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro import obs
from repro.core.evaluation_cache import EvaluationCache
from repro.exceptions import ValidationError
from repro.monitor.audit import (
    InstanceRecord,
    ServiceRequestRecord,
    StateVisitRecord,
)
from repro.monitor.stream import AuditRecord, StreamingCalibrator

__all__ = [
    "CusumDetector",
    "DriftEvent",
    "DriftMonitor",
    "PageHinkleyDetector",
]


class PageHinkleyDetector:
    """Two-sided Page–Hinkley test with a self-learned reference mean.

    Maintains the running mean of the observed sequence and the
    cumulative deviation statistic in the reset-at-minimum formulation:
    on each sample the upward statistic grows by ``x - mean - delta``
    (floored at zero) and the downward one by ``mean - x - delta``;
    a drift is confirmed when either exceeds ``threshold``.

    With ``relative=True`` (the right mode for positive-scale signals
    like residence times), ``delta`` and ``threshold`` are multiplied
    by the magnitude of the running mean, so the same parameters work
    for a 0.3-time-unit routing state and a 90-time-unit activity.

    No drift is reported before ``min_samples`` observations — the
    running mean needs a baseline before deviations mean anything.
    """

    __slots__ = (
        "delta", "threshold", "min_samples", "relative",
        "samples", "_mean", "_up", "_down",
    )

    def __init__(
        self,
        delta: float = 0.25,
        threshold: float = 15.0,
        min_samples: int = 30,
        relative: bool = False,
    ) -> None:
        if delta < 0.0:
            raise ValidationError("delta must be >= 0")
        if threshold <= 0.0:
            raise ValidationError("threshold must be positive")
        if min_samples < 1:
            raise ValidationError("min_samples must be >= 1")
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        self.relative = relative
        self.samples = 0
        self._mean = 0.0
        self._up = 0.0
        self._down = 0.0

    @property
    def mean(self) -> float:
        """Current running mean (the learned reference)."""
        return self._mean

    @property
    def statistic(self) -> float:
        """The larger of the two one-sided drift statistics."""
        return max(self._up, self._down)

    def effective_threshold(self) -> float:
        """The threshold in signal units (scaled when ``relative``)."""
        if not self.relative:
            return self.threshold
        return self.threshold * max(abs(self._mean), 1e-12)

    def update(self, value: float) -> bool:
        """Consume one observation; ``True`` when drift is confirmed."""
        self.samples += 1
        self._mean += (value - self._mean) / self.samples
        scale = (
            max(abs(self._mean), 1e-12) if self.relative else 1.0
        )
        delta = self.delta * scale
        self._up = max(0.0, self._up + value - self._mean - delta)
        self._down = max(0.0, self._down + self._mean - value - delta)
        if self.samples < self.min_samples:
            return False
        return self.statistic > self.threshold * scale

    def reset(self) -> None:
        """Restart from scratch (re-learn the baseline after a drift)."""
        self.samples = 0
        self._mean = 0.0
        self._up = 0.0
        self._down = 0.0

    def export_state(self) -> dict[str, Any]:
        """Exact JSON-serializable detector state (parameters + stats)."""
        return {
            "delta": self.delta,
            "threshold": self.threshold,
            "min_samples": self.min_samples,
            "relative": self.relative,
            "samples": self.samples,
            "mean": self._mean,
            "up": self._up,
            "down": self._down,
        }

    @classmethod
    def restore_state(cls, state: dict[str, Any]) -> "PageHinkleyDetector":
        """Rebuild a detector from :meth:`export_state` output.

        The restored detector continues the sample stream exactly: the
        running mean and both one-sided statistics are carried over
        bit-for-bit, so drift confirmations fire on the same records as
        they would have without the snapshot/restore cycle.
        """
        detector = cls(
            delta=float(state["delta"]),
            threshold=float(state["threshold"]),
            min_samples=int(state["min_samples"]),
            relative=bool(state["relative"]),
        )
        detector.samples = int(state["samples"])
        detector._mean = float(state["mean"])
        detector._up = float(state["up"])
        detector._down = float(state["down"])
        return detector


class CusumDetector:
    """Two-sided CUSUM against a known (calibrated) reference mean.

    Where :class:`PageHinkleyDetector` learns its reference from the
    stream, this detector watches for departures from an *externally
    calibrated* value — e.g. the residence time the current
    configuration recommendation was computed with.  ``slack`` is the
    per-sample allowance (the classic CUSUM ``k``), ``threshold`` the
    decision interval ``h``; both in signal units.
    """

    __slots__ = ("reference", "slack", "threshold", "samples", "_up",
                 "_down")

    def __init__(
        self, reference: float, slack: float, threshold: float
    ) -> None:
        if slack < 0.0:
            raise ValidationError("slack must be >= 0")
        if threshold <= 0.0:
            raise ValidationError("threshold must be positive")
        self.reference = reference
        self.slack = slack
        self.threshold = threshold
        self.samples = 0
        self._up = 0.0
        self._down = 0.0

    @property
    def statistic(self) -> float:
        """The larger of the two one-sided CUSUM statistics."""
        return max(self._up, self._down)

    def update(self, value: float) -> bool:
        """Consume one observation; ``True`` when drift is confirmed."""
        self.samples += 1
        deviation = value - self.reference
        self._up = max(0.0, self._up + deviation - self.slack)
        self._down = max(0.0, self._down - deviation - self.slack)
        return self.statistic > self.threshold

    def reset(self) -> None:
        """Zero the statistics (the reference is kept)."""
        self.samples = 0
        self._up = 0.0
        self._down = 0.0


@dataclass(frozen=True)
class DriftEvent:
    """One confirmed drift: what moved, by how much, and when."""

    #: Parameter family: ``residence_time`` / ``arrival_rate`` /
    #: ``transition_probability``.
    kind: str
    #: What drifted, e.g. ``"EP/process_order"`` or ``"EP"``.
    subject: str
    #: Records the monitor had consumed when the drift was confirmed.
    records_seen: int
    #: Value of the drift statistic at confirmation time.
    statistic: float
    #: The (effective) threshold the statistic exceeded.
    threshold: float
    #: The detector's reference mean at confirmation time.
    reference_mean: float

    def to_document(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {
            "kind": self.kind,
            "subject": self.subject,
            "records_seen": self.records_seen,
            "statistic": self.statistic,
            "threshold": self.threshold,
            "reference_mean": self.reference_mean,
        }

    @classmethod
    def from_document(cls, data: dict[str, Any]) -> "DriftEvent":
        """Rebuild an event from :meth:`to_document` output."""
        return cls(
            kind=str(data["kind"]),
            subject=str(data["subject"]),
            records_seen=int(data["records_seen"]),
            statistic=float(data["statistic"]),
            threshold=float(data["threshold"]),
            reference_mean=float(data["reference_mean"]),
        )

    def __str__(self) -> str:
        return (
            f"drift[{self.kind}] {self.subject}: statistic "
            f"{self.statistic:.4g} > threshold {self.threshold:.4g} "
            f"after {self.records_seen} records"
        )


class DriftMonitor:
    """Watch a record stream for parameter drift; invalidate on hit.

    Feeds every record to an internal (or shared) streaming calibrator
    and to lazily created Page–Hinkley detectors:

    * one *relative* detector per ``(workflow type, state)`` over
      residence times;
    * one *relative* detector per workflow type over instance
      inter-completion times (the reciprocal view of the arrival
      rate);
    * one *absolute* detector per observed transition ``(workflow
      type, state, successor)`` over take/not-take indicators — the
      Bernoulli stream whose mean is the transition probability.

    On a confirmed drift the monitor records ``monitor.drift.confirmed``
    (plus a per-family counter), emits a structured ``monitor.drift``
    trace event, invalidates every attached evaluation cache so the
    next search re-evaluates with fresh parameters, resets the firing
    detector to re-learn the new regime, and reports the
    :class:`DriftEvent` to the caller and the optional callback.
    """

    def __init__(
        self,
        calibrator: StreamingCalibrator | None = None,
        delta: float = 0.25,
        threshold: float = 15.0,
        min_samples: int = 30,
        indicator_delta: float = 0.1,
        indicator_threshold: float = 8.0,
        caches: Iterable[EvaluationCache] = (),
        on_drift: Callable[["DriftEvent"], None] | None = None,
    ) -> None:
        self.calibrator = (
            calibrator if calibrator is not None else StreamingCalibrator()
        )
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        self.indicator_delta = indicator_delta
        self.indicator_threshold = indicator_threshold
        self.events: list[DriftEvent] = []
        self._caches: list[EvaluationCache] = list(caches)
        self._on_drift = on_drift
        self._residence: dict[tuple[str, str], PageHinkleyDetector] = {}
        self._interarrival: dict[str, PageHinkleyDetector] = {}
        self._transitions: dict[
            tuple[str, str], dict[str, PageHinkleyDetector]
        ] = {}
        self._last_completion: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_cache(self, cache: EvaluationCache) -> None:
        """Invalidate ``cache`` whenever a drift is confirmed."""
        self._caches.append(cache)

    @property
    def has_drift(self) -> bool:
        """Whether any drift has been confirmed so far."""
        return bool(self.events)

    def detector_count(self) -> int:
        """Number of detectors created so far (all families)."""
        return (
            len(self._residence)
            + len(self._interarrival)
            + sum(len(group) for group in self._transitions.values())
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def observe(self, record: AuditRecord) -> list[DriftEvent]:
        """Feed one record; returns the drifts it confirmed (often [])."""
        self.calibrator.observe(record)
        confirmed: list[DriftEvent] = []
        if isinstance(record, StateVisitRecord):
            confirmed.extend(self._observe_visit(record))
        elif isinstance(record, InstanceRecord):
            confirmed.extend(self._observe_instance(record))
        elif not isinstance(record, ServiceRequestRecord):
            raise ValidationError(
                f"unknown audit record type {type(record).__name__}"
            )
        return confirmed

    def observe_all(self, records: Iterable[AuditRecord]) -> list[DriftEvent]:
        """Feed a record stream; returns every confirmed drift."""
        confirmed: list[DriftEvent] = []
        for record in records:
            confirmed.extend(self.observe(record))
        return confirmed

    def _observe_visit(
        self, record: StateVisitRecord
    ) -> list[DriftEvent]:
        confirmed: list[DriftEvent] = []
        key = (record.workflow_type, record.state)
        detector = self._residence.get(key)
        if detector is None:
            detector = PageHinkleyDetector(
                delta=self.delta,
                threshold=self.threshold,
                min_samples=self.min_samples,
                relative=True,
            )
            self._residence[key] = detector
        if detector.update(record.residence_time):
            confirmed.append(
                self._confirm(
                    "residence_time",
                    f"{record.workflow_type}/{record.state}",
                    detector,
                )
            )
        indicators = self._transitions.setdefault(key, {})
        if record.next_state not in indicators:
            indicators[record.next_state] = PageHinkleyDetector(
                delta=self.indicator_delta,
                threshold=self.indicator_threshold,
                min_samples=self.min_samples,
                relative=False,
            )
        for successor, indicator in indicators.items():
            taken = 1.0 if successor == record.next_state else 0.0
            if indicator.update(taken):
                confirmed.append(
                    self._confirm(
                        "transition_probability",
                        f"{record.workflow_type}/{record.state}"
                        f"->{successor}",
                        indicator,
                    )
                )
        return confirmed

    def _observe_instance(
        self, record: InstanceRecord
    ) -> list[DriftEvent]:
        confirmed: list[DriftEvent] = []
        workflow_type = record.workflow_type
        last = self._last_completion.get(workflow_type)
        self._last_completion[workflow_type] = record.completed_at
        if last is None:
            return confirmed
        detector = self._interarrival.get(workflow_type)
        if detector is None:
            detector = PageHinkleyDetector(
                delta=self.delta,
                threshold=self.threshold,
                min_samples=self.min_samples,
                relative=True,
            )
            self._interarrival[workflow_type] = detector
        gap = record.completed_at - last
        if gap >= 0.0 and detector.update(gap):
            confirmed.append(
                self._confirm("arrival_rate", workflow_type, detector)
            )
        return confirmed

    # ------------------------------------------------------------------
    # Confirmation protocol
    # ------------------------------------------------------------------
    def _confirm(
        self, kind: str, subject: str, detector: PageHinkleyDetector
    ) -> DriftEvent:
        event = DriftEvent(
            kind=kind,
            subject=subject,
            records_seen=self.calibrator.records_seen,
            statistic=detector.statistic,
            threshold=detector.effective_threshold(),
            reference_mean=detector.mean,
        )
        self.events.append(event)
        obs.count("monitor.drift.confirmed")
        obs.count(f"monitor.drift.{kind}")
        obs.event(
            "monitor.drift",
            family=kind,
            subject=subject,
            statistic=event.statistic,
            threshold=event.threshold,
            records_seen=event.records_seen,
        )
        for cache in self._caches:
            cache.invalidate(reason=f"drift: {kind} {subject}")
            obs.count("monitor.drift.cache_invalidations")
        detector.reset()
        if self._on_drift is not None:
            self._on_drift(event)
        return event

    # ------------------------------------------------------------------
    # Snapshot state (service warm restart)
    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, Any]:
        """JSON-serializable snapshot: calibrator + every detector.

        Composite detector keys are exported as lists (JSON objects
        cannot key on tuples); detector insertion order is preserved,
        which matters because :meth:`_observe_visit` iterates the
        transition-indicator group in creation order.
        """
        return {
            "schema": "repro.monitor.drift-state/v1",
            "config": {
                "delta": self.delta,
                "threshold": self.threshold,
                "min_samples": self.min_samples,
                "indicator_delta": self.indicator_delta,
                "indicator_threshold": self.indicator_threshold,
            },
            "calibrator": self.calibrator.export_state(),
            "events": [event.to_document() for event in self.events],
            "residence": [
                [workflow, state, detector.export_state()]
                for (workflow, state), detector in self._residence.items()
            ],
            "interarrival": {
                workflow: detector.export_state()
                for workflow, detector in self._interarrival.items()
            },
            "transitions": [
                [
                    workflow,
                    state,
                    {
                        successor: detector.export_state()
                        for successor, detector in indicators.items()
                    },
                ]
                for (workflow, state), indicators in
                self._transitions.items()
            ],
            "last_completion": dict(self._last_completion),
        }

    @classmethod
    def restore_state(
        cls,
        state: dict[str, Any],
        caches: Iterable[EvaluationCache] = (),
        on_drift: Callable[["DriftEvent"], None] | None = None,
    ) -> "DriftMonitor":
        """Rebuild a monitor (and its calibrator) from a snapshot.

        ``caches``/``on_drift`` re-attach the live wiring a snapshot
        deliberately does not carry.  The restored monitor confirms
        future drifts on exactly the records the original would have.
        """
        if state.get("schema") != "repro.monitor.drift-state/v1":
            raise ValidationError(
                f"unknown drift snapshot schema {state.get('schema')!r}"
            )
        config = state["config"]
        monitor = cls(
            calibrator=StreamingCalibrator.restore_state(
                state["calibrator"]
            ),
            delta=float(config["delta"]),
            threshold=float(config["threshold"]),
            min_samples=int(config["min_samples"]),
            indicator_delta=float(config["indicator_delta"]),
            indicator_threshold=float(config["indicator_threshold"]),
            caches=caches,
            on_drift=on_drift,
        )
        monitor.events = [
            DriftEvent.from_document(event) for event in state["events"]
        ]
        monitor._residence = {
            (workflow, visited): PageHinkleyDetector.restore_state(detector)
            for workflow, visited, detector in state["residence"]
        }
        monitor._interarrival = {
            workflow: PageHinkleyDetector.restore_state(detector)
            for workflow, detector in state["interarrival"].items()
        }
        monitor._transitions = {
            (workflow, visited): {
                successor: PageHinkleyDetector.restore_state(detector)
                for successor, detector in indicators.items()
            }
            for workflow, visited, indicators in state["transitions"]
        }
        monitor._last_completion = {
            workflow: float(value)
            for workflow, value in state["last_completion"].items()
        }
        return monitor

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def document(self) -> dict[str, Any]:
        """JSON-serializable drift verdict summary."""
        return {
            "schema": "repro.monitor.drift/v1",
            "records_seen": self.calibrator.records_seen,
            "detectors": self.detector_count(),
            "confirmed": [event.to_document() for event in self.events],
            "has_drift": self.has_drift,
        }

    def format_text(self) -> str:
        """Human-readable drift verdict."""
        lines = [
            f"Drift verdict over {self.calibrator.records_seen} records "
            f"({self.detector_count()} detectors):"
        ]
        if not self.events:
            lines.append("  no drift confirmed")
        for event in self.events:
            lines.append(f"  {event}")
        return "\n".join(lines)
