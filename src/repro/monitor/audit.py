"""Audit trails of workflow executions.

The paper's calibration component (Section 7.1) derives transition
probabilities, residence times, and service-time moments "from audit
trails of previous workflow executions" and online monitoring statistics.
This module defines the trail records; :mod:`repro.monitor.calibration`
turns trails back into model parameters.  The simulated WFMS emits these
records natively, closing the map -> run -> calibrate -> remap loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.exceptions import ValidationError

#: Pseudo state name recorded as the successor of a final state.
TERMINATION = "__TERMINATED__"


@dataclass(frozen=True)
class StateVisitRecord:
    """One visit of a workflow instance to an execution state."""

    instance_id: int
    workflow_type: str
    state: str
    entered_at: float
    left_at: float
    next_state: str

    def __post_init__(self) -> None:
        if self.left_at < self.entered_at:
            raise ValidationError(
                f"instance {self.instance_id}: left_at {self.left_at} "
                f"precedes entered_at {self.entered_at}"
            )

    @property
    def residence_time(self) -> float:
        """Time spent in the state (exit minus entry)."""
        return self.left_at - self.entered_at


@dataclass(frozen=True)
class ServiceRequestRecord:
    """One service request processed by a server.

    ``instance_id`` attributes the request to the workflow instance that
    issued it (-1 when unknown), enabling load-matrix calibration: the
    expected requests per instance ``r_{x,t}`` are estimated by joining
    request records with instance records.
    """

    server_type: str
    server_name: str
    submitted_at: float
    started_at: float
    completed_at: float
    instance_id: int = -1

    def __post_init__(self) -> None:
        if not (self.submitted_at <= self.started_at <= self.completed_at):
            raise ValidationError(
                "request timestamps must be ordered "
                "submitted <= started <= completed"
            )

    @property
    def waiting_time(self) -> float:
        """Queueing delay before service began."""
        return self.started_at - self.submitted_at

    @property
    def service_time(self) -> float:
        """Busy time at the server (completion minus service start)."""
        return self.completed_at - self.started_at


def service_records_block(
    server_type: str,
    server_name: str,
    submitted: Iterable[float],
    started: Iterable[float],
    completed: Iterable[float],
    instance_ids: Iterable[int],
) -> list[ServiceRequestRecord]:
    """Trusted bulk construction of :class:`ServiceRequestRecord` rows.

    Bypasses the frozen-dataclass ``__init__`` (six guarded attribute
    writes plus ``__post_init__`` validation per record) for callers
    that already guarantee ``submitted <= started <= completed`` for
    every row — the vectorized fast-RNG replay derives the three
    timestamp columns from the Lindley recursion, which establishes the
    ordering by construction.  The returned records are
    indistinguishable from normally constructed ones.
    """
    new = ServiceRequestRecord.__new__
    cls = ServiceRequestRecord
    records = []
    append = records.append
    for submitted_at, started_at, completed_at, instance_id in zip(
        submitted, started, completed, instance_ids
    ):
        record = new(cls)
        # In-place __dict__ update sidesteps the frozen __setattr__
        # guard (which also intercepts __dict__ assignment).
        record.__dict__.update(
            server_type=server_type,
            server_name=server_name,
            submitted_at=submitted_at,
            started_at=started_at,
            completed_at=completed_at,
            instance_id=instance_id,
        )
        append(record)
    return records


@dataclass(frozen=True)
class InstanceRecord:
    """Lifecycle of one workflow instance."""

    instance_id: int
    workflow_type: str
    started_at: float
    completed_at: float

    def __post_init__(self) -> None:
        if self.completed_at < self.started_at:
            raise ValidationError(
                f"instance {self.instance_id}: completed before started"
            )

    @property
    def turnaround_time(self) -> float:
        """Wall-clock time from instance start to completion."""
        return self.completed_at - self.started_at


@dataclass
class AuditTrail:
    """Container for monitoring records of one observation run."""

    state_visits: list[StateVisitRecord] = field(default_factory=list)
    service_requests: list[ServiceRequestRecord] = field(default_factory=list)
    instances: list[InstanceRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_state_visit(self, record: StateVisitRecord) -> None:
        """Append one state-visit record."""
        self.state_visits.append(record)

    def record_service_request(self, record: ServiceRequestRecord) -> None:
        """Append one service-request record."""
        self.service_requests.append(record)

    def record_instance(self, record: InstanceRecord) -> None:
        """Append one completed-instance record."""
        self.instances.append(record)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def workflow_types(self) -> frozenset[str]:
        """All workflow type names appearing in the trail."""
        return frozenset(record.workflow_type for record in self.instances) | \
            frozenset(record.workflow_type for record in self.state_visits)

    def visits_of(self, workflow_type: str) -> Iterator[StateVisitRecord]:
        """State visits of one workflow type."""
        return (
            record
            for record in self.state_visits
            if record.workflow_type == workflow_type
        )

    def requests_of(self, server_type: str) -> Iterator[ServiceRequestRecord]:
        """Service requests handled by one server type."""
        return (
            record
            for record in self.service_requests
            if record.server_type == server_type
        )

    def instances_of(self, workflow_type: str) -> Iterator[InstanceRecord]:
        """Instance lifecycles of one workflow type."""
        return (
            record
            for record in self.instances
            if record.workflow_type == workflow_type
        )

    def merge(self, others: Iterable["AuditTrail"]) -> "AuditTrail":
        """A new trail combining this one with the given trails."""
        merged = AuditTrail(
            state_visits=list(self.state_visits),
            service_requests=list(self.service_requests),
            instances=list(self.instances),
        )
        for other in others:
            merged.state_visits.extend(other.state_visits)
            merged.service_requests.extend(other.service_requests)
            merged.instances.extend(other.instances)
        return merged
