"""Graph-analytic utilities for state charts (networkx-based).

The structural validation of :mod:`repro.spec.validation` implements its
own reachability sweeps; this module exposes richer graph analyses for
tooling and documentation:

* conversion of a chart (one region) into a :class:`networkx.DiGraph`;
* control-flow cycle enumeration (the loops the designer should annotate
  with exit probabilities);
* the *expected-duration critical path* — the acyclic path from the
  initial to the final state maximizing the sum of expected state
  durations, a quick what-dominates-the-turnaround diagnostic;
* dominator analysis: states every instance must pass through
  (synchronization/audit points).
"""

from __future__ import annotations

import networkx as nx

from repro.core.model_types import ActivitySpec
from repro.exceptions import ValidationError
from repro.spec.statechart import ChartState, StateChart
from repro.spec.translator import ActivityRegistry


def chart_to_graph(chart: StateChart) -> nx.DiGraph:
    """The chart's top-level control-flow graph.

    Nodes are state names with the :class:`ChartState` attached as the
    ``state`` attribute; edges carry ``probability`` (may be ``None``)
    and ``rule`` attributes.
    """
    graph = nx.DiGraph(name=chart.name)
    for state in chart.states:
        graph.add_node(state.name, state=state)
    for transition in chart.transitions:
        graph.add_edge(
            transition.source,
            transition.target,
            probability=transition.probability,
            rule=transition.rule,
        )
    return graph


def control_flow_cycles(chart: StateChart) -> list[list[str]]:
    """All simple control-flow cycles (loops) of the top-level chart."""
    graph = chart_to_graph(chart)
    return [list(cycle) for cycle in nx.simple_cycles(graph)]


def _state_duration(
    state: ChartState, registry: ActivityRegistry | None
) -> float:
    if state.mean_duration is not None:
        return state.mean_duration
    if state.activity is not None:
        if registry is not None and state.activity in registry:
            return registry.get(state.activity).mean_duration
        return 0.0
    return 0.0


def critical_path(
    chart: StateChart,
    registry: ActivityRegistry | None = None,
) -> tuple[list[str], float]:
    """Longest expected-duration simple path from initial to final state.

    Cycles are ignored (each loop body counted once), so the result is a
    *lower bound* on the worst-case expected path and a diagnostic for
    which chain of states dominates the turnaround time.  Composite
    states contribute the maximum of their regions' critical paths.
    """
    graph = chart_to_graph(chart)
    final = chart.final_state

    durations: dict[str, float] = {}
    for state in chart.states:
        if state.is_composite:
            durations[state.name] = max(
                critical_path(region, registry)[1]
                for region in state.regions
            )
        else:
            durations[state.name] = _state_duration(state, registry)

    best: tuple[float, list[str]] | None = None
    for path in nx.all_simple_paths(graph, chart.initial_state, final):
        total = sum(durations[name] for name in path)
        if best is None or total > best[0]:
            best = (total, list(path))
    if best is None:
        if chart.initial_state == final:
            return [final], durations[final]
        raise ValidationError(
            f"chart {chart.name}: no path from the initial to the final "
            "state"
        )
    return best[1], best[0]


def mandatory_states(chart: StateChart) -> list[str]:
    """States every instance must visit (dominators of the final state).

    Computed as the dominators of the final state in the control-flow
    graph rooted at the initial state — natural audit/synchronization
    points.
    """
    graph = chart_to_graph(chart)
    final = chart.final_state
    initial = chart.initial_state
    if final == initial:
        return [final]
    dominators = nx.immediate_dominators(graph, initial)
    # Some networkx versions omit the root's self-entry.
    dominators.setdefault(initial, initial)
    if final not in dominators:
        raise ValidationError(
            f"chart {chart.name}: final state unreachable"
        )
    chain = [final]
    node = final
    while dominators[node] != node:
        node = dominators[node]
        chain.append(node)
    return list(reversed(chain))


def activity_dependencies(
    chart: StateChart, registry: ActivityRegistry
) -> dict[str, ActivitySpec]:
    """All activities a chart (tree) depends on, resolved to specs."""
    return {
        name: registry.get(name) for name in sorted(chart.activities())
    }
