"""Rendering of state charts and workflow CTMCs to Graphviz DOT.

Documentation tooling: ``to_dot`` emits the top-level chart (composite
states as clusters with their regions inside) and
``workflow_ctmc_to_dot`` the translated Markov chain of Figure 4 —
paste the output into Graphviz to regenerate the paper's figures for
any workflow in the library.
"""

from __future__ import annotations

from repro.core.workflow_model import WorkflowCTMC
from repro.spec.statechart import ChartState, StateChart


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def _state_label(state: ChartState) -> str:
    if state.activity is not None:
        return f"{state.name}\\nst!({state.activity})"
    if state.mean_duration is not None:
        return f"{state.name}\\n({state.mean_duration:g})"
    return state.name


def _render_region(
    chart: StateChart, indent: str, lines: list[str], prefix: str
) -> None:
    qualified = {
        state.name: f"{prefix}{state.name}" for state in chart.states
    }
    lines.append(
        f'{indent}"{prefix}__init" '
        "[shape=point, width=0.15, label=\"\"];"
    )
    lines.append(
        f'{indent}"{prefix}__init" -> '
        f'"{qualified[chart.initial_state]}";'
    )
    for state in chart.states:
        node = qualified[state.name]
        if state.is_composite:
            lines.append(f'{indent}subgraph "cluster_{node}" {{')
            lines.append(
                f'{indent}  label="{_escape(state.name)}"; style=rounded;'
            )
            for region_index, region in enumerate(state.regions):
                region_prefix = f"{node}/{region.name}#{region_index}/"
                lines.append(
                    f'{indent}  subgraph "cluster_{region_prefix}" {{'
                )
                lines.append(
                    f'{indent}    label="{_escape(region.name)}"; '
                    "style=dashed;"
                )
                _render_region(
                    region, indent + "    ", lines, region_prefix
                )
                lines.append(f"{indent}  }}")
            # Anchor node so edges to/from the composite attach somewhere.
            lines.append(
                f'{indent}  "{node}" [shape=plaintext, label=""];'
            )
            lines.append(f"{indent}}}")
        else:
            shape = "doublecircle" if not chart.outgoing(state.name) else "box"
            lines.append(
                f'{indent}"{node}" [shape={shape}, '
                f'label="{_escape(_state_label(state))}"];'
            )
    for transition in chart.transitions:
        attributes = []
        label = str(transition.rule)
        if transition.probability is not None:
            label += f"\\np={transition.probability:g}"
        attributes.append(f'label="{_escape(label)}"')
        lines.append(
            f'{indent}"{qualified[transition.source]}" -> '
            f'"{qualified[transition.target]}" '
            f"[{', '.join(attributes)}];"
        )


def to_dot(chart: StateChart) -> str:
    """Render a state chart (with nested regions) as Graphviz DOT."""
    lines = [f'digraph "{_escape(chart.name)}" {{']
    lines.append("  rankdir=TB;")
    lines.append('  node [fontname="Helvetica"];')
    lines.append('  edge [fontname="Helvetica", fontsize=10];')
    _render_region(chart, "  ", lines, "")
    lines.append("}")
    return "\n".join(lines)


def workflow_ctmc_to_dot(model: WorkflowCTMC) -> str:
    """Render the translated CTMC (Figure-4 style) as Graphviz DOT.

    Nodes show the state name and mean residence time; edges the jump
    probabilities; the artificial absorbing state is a double circle.
    """
    chain = model.chain
    lines = [f'digraph "{_escape(model.definition.name)}_CTMC" {{']
    lines.append("  rankdir=LR;")
    lines.append('  node [shape=circle, fontname="Helvetica"];')
    for i, name in enumerate(chain.state_names):
        if i == chain.absorbing_state:
            lines.append(
                f'  "{name}" [shape=doublecircle, label="s_A"];'
            )
        else:
            residence = chain.residence_times[i]
            lines.append(
                f'  "{name}" '
                f'[label="{_escape(name)}\\nH={residence:g}"];'
            )
    p = chain.jump_probabilities
    for i, source in enumerate(chain.state_names):
        if i == chain.absorbing_state:
            continue
        for j, target in enumerate(chain.state_names):
            if p[i, j] > 0.0:
                lines.append(
                    f'  "{source}" -> "{target}" '
                    f'[label="{p[i, j]:g}"];'
                )
    lines.append("}")
    return "\n".join(lines)
