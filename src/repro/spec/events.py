"""Events, guard conditions, actions, and ECA rules (Section 3.1).

State-chart transitions are annotated with event-condition-action rules of
the form ``E[C]/A``: the transition fires if event ``E`` occurs and
condition ``C`` holds; the effect executes action ``A``.  Conditions are
boolean expressions over workflow variables; actions can start activities
(``st!(activity)``), set or clear condition variables (``tr!(C)`` /
``fs!(C)``), and raise events.  Each of the three components may be empty.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping

from repro.exceptions import ValidationError


def completion_event(activity_name: str) -> str:
    """Name of the event raised when an activity finishes.

    The paper's convention: for every activity ``act`` the condition
    ``act_DONE`` is set to true when ``act`` is finished; we additionally
    raise an event of the same name to drive transitions.
    """
    return f"{activity_name}_DONE"


# ----------------------------------------------------------------------
# Guards (the [C] part)
# ----------------------------------------------------------------------
class Guard(abc.ABC):
    """A boolean expression over condition variables."""

    @abc.abstractmethod
    def evaluate(self, environment: Mapping[str, bool]) -> bool:
        """Evaluate under an assignment; unset variables read as False."""

    @abc.abstractmethod
    def variables(self) -> frozenset[str]:
        """The condition variables this guard reads."""


@dataclass(frozen=True)
class TrueGuard(Guard):
    """The empty condition: always satisfied."""

    def evaluate(self, environment: Mapping[str, bool]) -> bool:
        """Always true."""
        return True

    def variables(self) -> frozenset[str]:
        """The empty set."""
        return frozenset()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Var(Guard):
    """Reference to a boolean condition variable."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("condition variable name must be non-empty")

    def evaluate(self, environment: Mapping[str, bool]) -> bool:
        """Truth value of the variable (unbound reads as false)."""
        return bool(environment.get(self.name, False))

    def variables(self) -> frozenset[str]:
        """The singleton set of this variable's name."""
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Guard):
    """Logical negation."""

    operand: Guard

    def evaluate(self, environment: Mapping[str, bool]) -> bool:
        """Negation of the operand."""
        return not self.operand.evaluate(environment)

    def variables(self) -> frozenset[str]:
        """Variables of the negated operand."""
        return self.operand.variables()

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class And(Guard):
    """Logical conjunction of one or more guards."""

    operands: tuple[Guard, ...]

    def __init__(self, *operands: Guard) -> None:
        if not operands:
            raise ValidationError("And needs at least one operand")
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, environment: Mapping[str, bool]) -> bool:
        """Whether every operand holds."""
        return all(guard.evaluate(environment) for guard in self.operands)

    def variables(self) -> frozenset[str]:
        """Union of the operands' variables."""
        result: frozenset[str] = frozenset()
        for guard in self.operands:
            result |= guard.variables()
        return result

    def __str__(self) -> str:
        return " & ".join(f"({guard})" for guard in self.operands)


@dataclass(frozen=True)
class Or(Guard):
    """Logical disjunction of one or more guards."""

    operands: tuple[Guard, ...]

    def __init__(self, *operands: Guard) -> None:
        if not operands:
            raise ValidationError("Or needs at least one operand")
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, environment: Mapping[str, bool]) -> bool:
        """Whether any operand holds."""
        return any(guard.evaluate(environment) for guard in self.operands)

    def variables(self) -> frozenset[str]:
        """Union of the operands' variables."""
        result: frozenset[str] = frozenset()
        for guard in self.operands:
            result |= guard.variables()
        return result

    def __str__(self) -> str:
        return " | ".join(f"({guard})" for guard in self.operands)


# ----------------------------------------------------------------------
# Actions (the /A part)
# ----------------------------------------------------------------------
class Action(abc.ABC):
    """An effect executed when a transition fires or a state is entered."""


@dataclass(frozen=True)
class StartActivity(Action):
    """``st!(activity)`` — start the named activity."""

    activity_name: str

    def __post_init__(self) -> None:
        if not self.activity_name:
            raise ValidationError("activity name must be non-empty")

    def __str__(self) -> str:
        return f"st!({self.activity_name})"


@dataclass(frozen=True)
class SetCondition(Action):
    """``tr!(C)`` / ``fs!(C)`` — set a condition variable."""

    name: str
    value: bool

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("condition name must be non-empty")

    def __str__(self) -> str:
        return f"{'tr' if self.value else 'fs'}!({self.name})"


@dataclass(frozen=True)
class RaiseEvent(Action):
    """Generate an (internal) event."""

    event_name: str

    def __post_init__(self) -> None:
        if not self.event_name:
            raise ValidationError("event name must be non-empty")

    def __str__(self) -> str:
        return f"raise!({self.event_name})"


# ----------------------------------------------------------------------
# ECA rules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ECARule:
    """An event-condition-action triple ``E[C]/A``.

    ``event`` of ``None`` means the transition is triggered by any step in
    which its guard holds (an "empty E" in the paper's terms).
    """

    event: str | None = None
    guard: Guard = field(default_factory=TrueGuard)
    actions: tuple[Action, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))
        if self.event is not None and not self.event:
            raise ValidationError("event name must be None or non-empty")

    def is_enabled(
        self, occurred_event: str | None, environment: Mapping[str, bool]
    ) -> bool:
        """Whether the rule fires for the given event and variables."""
        if self.event is not None and self.event != occurred_event:
            return False
        return self.guard.evaluate(environment)

    def __str__(self) -> str:
        event_text = self.event or ""
        action_text = ", ".join(str(action) for action in self.actions)
        return f"{event_text}[{self.guard}]/{action_text}"
