"""Structural validation of state-chart workflow specifications.

Checks the properties the stochastic translation (Section 3.2) relies on:

* a single initial state and a single final state per chart (recursively
  for all regions);
* every state reachable from the initial state, and the final state
  reachable from every state (absorption is certain);
* probability annotations that form proper distributions: if any outgoing
  transition of a state is annotated, all must be, and they must sum to 1
  (a single un-annotated transition is implicitly probability 1);
* guard variables that are set somewhere before they are read (heuristic
  — reported as warnings, since variables may be set by the environment).

:func:`validate_chart` returns the list of issues; :func:`ensure_valid`
raises :class:`~repro.exceptions.ValidationError` on the first error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.spec.events import SetCondition
from repro.spec.statechart import StateChart


class IssueLevel(enum.Enum):
    """Severity of a validation finding."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class ChartIssue:
    """One validation finding."""

    level: IssueLevel
    chart_name: str
    message: str

    def __str__(self) -> str:
        return f"[{self.level.value}] {self.chart_name}: {self.message}"


def validate_chart(chart: StateChart) -> list[ChartIssue]:
    """Validate a chart and all nested regions; returns all findings."""
    issues: list[ChartIssue] = []
    for sub_chart in chart.walk_charts():
        issues.extend(_validate_single_chart(sub_chart))
    issues.extend(_validate_condition_usage(chart))
    return issues


def ensure_valid(chart: StateChart) -> None:
    """Raise :class:`ValidationError` if the chart has any error."""
    issues = validate_chart(chart)
    errors = [issue for issue in issues if issue.level is IssueLevel.ERROR]
    if errors:
        raise ValidationError(
            "invalid state chart:\n"
            + "\n".join(f"  {issue}" for issue in errors)
        )


def _validate_single_chart(chart: StateChart) -> list[ChartIssue]:
    issues: list[ChartIssue] = []

    finals = chart.final_states
    if len(finals) == 0:
        issues.append(
            ChartIssue(
                IssueLevel.ERROR,
                chart.name,
                "no final state (every state has outgoing transitions)",
            )
        )
    elif len(finals) > 1:
        issues.append(
            ChartIssue(
                IssueLevel.ERROR,
                chart.name,
                f"multiple final states {list(finals)}; connect them to a "
                "single termination state",
            )
        )

    issues.extend(_validate_reachability(chart, finals))
    issues.extend(_validate_probabilities(chart))
    return issues


def _validate_reachability(
    chart: StateChart, finals: tuple[str, ...]
) -> list[ChartIssue]:
    issues: list[ChartIssue] = []
    forward = _reachable_from(chart, chart.initial_state, reverse=False)
    unreachable = set(chart.state_names) - forward
    if unreachable:
        issues.append(
            ChartIssue(
                IssueLevel.ERROR,
                chart.name,
                f"states unreachable from the initial state: "
                f"{sorted(unreachable)}",
            )
        )
    if len(finals) == 1:
        backward = _reachable_from(chart, finals[0], reverse=True)
        trapped = forward - backward
        if trapped:
            issues.append(
                ChartIssue(
                    IssueLevel.ERROR,
                    chart.name,
                    f"states from which the final state is unreachable "
                    f"(workflow may never terminate): {sorted(trapped)}",
                )
            )
    return issues


def _reachable_from(
    chart: StateChart, start: str, reverse: bool
) -> set[str]:
    adjacency: dict[str, set[str]] = {name: set() for name in chart.state_names}
    for transition in chart.transitions:
        if reverse:
            adjacency[transition.target].add(transition.source)
        else:
            adjacency[transition.source].add(transition.target)
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return seen


def _validate_probabilities(chart: StateChart) -> list[ChartIssue]:
    issues: list[ChartIssue] = []
    for state_name in chart.state_names:
        outgoing = chart.outgoing(state_name)
        if not outgoing:
            continue
        annotated = [
            transition
            for transition in outgoing
            if transition.probability is not None
        ]
        if not annotated:
            if len(outgoing) > 1:
                issues.append(
                    ChartIssue(
                        IssueLevel.WARNING,
                        chart.name,
                        f"state {state_name} branches without probability "
                        "annotations; the stochastic translation needs them",
                    )
                )
            continue
        if len(annotated) != len(outgoing):
            issues.append(
                ChartIssue(
                    IssueLevel.ERROR,
                    chart.name,
                    f"state {state_name}: only some outgoing transitions "
                    "carry probability annotations",
                )
            )
            continue
        total = sum(
            transition.probability
            for transition in annotated
            if transition.probability is not None
        )
        if abs(total - 1.0) > 1e-9:
            issues.append(
                ChartIssue(
                    IssueLevel.ERROR,
                    chart.name,
                    f"state {state_name}: outgoing probabilities sum to "
                    f"{total}, expected 1",
                )
            )
    return issues


def _validate_condition_usage(chart: StateChart) -> list[ChartIssue]:
    """Warn about guard variables that no action ever sets.

    Activity-completion conditions (``*_DONE``) are set implicitly by the
    runtime and are therefore exempt.
    """
    set_variables: set[str] = set()
    read_variables: set[str] = set()
    for sub_chart in chart.walk_charts():
        for state in sub_chart.states:
            for action in state.all_entry_actions:
                if isinstance(action, SetCondition):
                    set_variables.add(action.name)
        for transition in sub_chart.transitions:
            read_variables |= transition.rule.guard.variables()
            for action in transition.rule.actions:
                if isinstance(action, SetCondition):
                    set_variables.add(action.name)
    undefined = {
        name
        for name in read_variables - set_variables
        if not name.endswith("_DONE")
    }
    if undefined:
        return [
            ChartIssue(
                IssueLevel.WARNING,
                chart.name,
                f"guard variables never set by any action (set by the "
                f"environment?): {sorted(undefined)}",
            )
        ]
    return []
