"""Fluent builder for state charts.

Writing :class:`~repro.spec.statechart.StateChart` literals by hand is
verbose; the builder offers a compact, validated construction style::

    chart = (
        StateChartBuilder("EP")
        .activity_state("NewOrder", activity="NewOrder")
        .activity_state("CreditCardCheck", activity="CreditCardCheck")
        .routing_state("EP_EXIT_S", mean_duration=0.1)
        .initial("NewOrder")
        .transition("NewOrder", "CreditCardCheck",
                    event="NewOrder_DONE", guard=Var("PayByCreditCard"),
                    probability=0.6)
        ...
        .build()
    )

``build()`` runs the structural validation of
:mod:`repro.spec.validation` and raises on errors.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.spec.events import Action, ECARule, Guard, TrueGuard
from repro.spec.statechart import ChartState, ChartTransition, StateChart
from repro.spec.validation import ensure_valid


class StateChartBuilder:
    """Incrementally assembles and validates a :class:`StateChart`."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValidationError("chart name must be non-empty")
        self._name = name
        self._states: list[ChartState] = []
        self._transitions: list[ChartTransition] = []
        self._initial: str | None = None

    # ------------------------------------------------------------------
    # States
    # ------------------------------------------------------------------
    def state(self, state: ChartState) -> "StateChartBuilder":
        """Add a pre-built state."""
        if any(existing.name == state.name for existing in self._states):
            raise ValidationError(
                f"chart {self._name}: duplicate state {state.name!r}"
            )
        self._states.append(state)
        return self

    def activity_state(
        self,
        name: str,
        activity: str | None = None,
        entry_actions: tuple[Action, ...] = (),
    ) -> "StateChartBuilder":
        """Add a state that starts an activity upon entry.

        ``activity`` defaults to the state name, matching the paper's
        examples where states and their activities share names.
        """
        return self.state(
            ChartState(
                name=name,
                activity=activity if activity is not None else name,
                entry_actions=entry_actions,
            )
        )

    def routing_state(
        self, name: str, mean_duration: float,
        entry_actions: tuple[Action, ...] = (),
    ) -> "StateChartBuilder":
        """Add a state without load (pure control flow/bookkeeping)."""
        return self.state(
            ChartState(
                name=name,
                mean_duration=mean_duration,
                entry_actions=entry_actions,
            )
        )

    def nested_state(
        self, name: str, *regions: StateChart,
        entry_actions: tuple[Action, ...] = (),
    ) -> "StateChartBuilder":
        """Add a composite state: one region nests a subworkflow, several
        regions run orthogonally (in parallel)."""
        if not regions:
            raise ValidationError(
                f"state {name}: a nested state needs at least one region"
            )
        return self.state(
            ChartState(
                name=name,
                regions=tuple(regions),
                entry_actions=entry_actions,
            )
        )

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def initial(self, name: str) -> "StateChartBuilder":
        """Designate the initial state."""
        self._initial = name
        return self

    def transition(
        self,
        source: str,
        target: str,
        event: str | None = None,
        guard: Guard | None = None,
        actions: tuple[Action, ...] = (),
        probability: float | None = None,
    ) -> "StateChartBuilder":
        """Add a transition with an ECA rule and optional probability."""
        self._transitions.append(
            ChartTransition(
                source=source,
                target=target,
                rule=ECARule(
                    event=event,
                    guard=guard if guard is not None else TrueGuard(),
                    actions=actions,
                ),
                probability=probability,
            )
        )
        return self

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> StateChart:
        """Assemble the chart; validates structure unless disabled."""
        if self._initial is None:
            if not self._states:
                raise ValidationError(f"chart {self._name}: no states")
            self._initial = self._states[0].name
        chart = StateChart(
            name=self._name,
            states=tuple(self._states),
            transitions=tuple(self._transitions),
            initial_state=self._initial,
        )
        if validate:
            ensure_valid(chart)
        return chart
