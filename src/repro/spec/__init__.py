"""State-chart workflow specification language (Section 3.1).

State charts with ECA rules, nested states, and orthogonal components;
structural validation; a fluent builder; an executable interpreter for the
simulated WFMS; and the translation into the stochastic model layer.
"""

from repro.spec.builder import StateChartBuilder
from repro.spec.graph import (
    activity_dependencies,
    chart_to_graph,
    control_flow_cycles,
    critical_path,
    mandatory_states,
)
from repro.spec.render import to_dot, workflow_ctmc_to_dot
from repro.spec.events import (
    And,
    ECARule,
    Guard,
    Not,
    Or,
    RaiseEvent,
    SetCondition,
    StartActivity,
    TrueGuard,
    Var,
    completion_event,
)
from repro.spec.interpreter import (
    ActiveState,
    BranchResolver,
    GuardedResolver,
    InterpreterListener,
    ProbabilisticResolver,
    StateChartInterpreter,
    StatePath,
)
from repro.spec.statechart import ChartState, ChartTransition, StateChart
from repro.spec.translator import (
    DEFAULT_ROUTING_DURATION,
    ActivityRegistry,
    translate_chart,
)
from repro.spec.validation import (
    ChartIssue,
    IssueLevel,
    ensure_valid,
    validate_chart,
)

__all__ = [
    "ActiveState",
    "ActivityRegistry",
    "And",
    "activity_dependencies",
    "chart_to_graph",
    "control_flow_cycles",
    "critical_path",
    "mandatory_states",
    "to_dot",
    "workflow_ctmc_to_dot",
    "BranchResolver",
    "ChartIssue",
    "ChartState",
    "ChartTransition",
    "DEFAULT_ROUTING_DURATION",
    "ECARule",
    "Guard",
    "GuardedResolver",
    "InterpreterListener",
    "IssueLevel",
    "Not",
    "Or",
    "ProbabilisticResolver",
    "RaiseEvent",
    "SetCondition",
    "StartActivity",
    "StateChart",
    "StateChartBuilder",
    "StateChartInterpreter",
    "StatePath",
    "TrueGuard",
    "Var",
    "completion_event",
    "ensure_valid",
    "translate_chart",
    "validate_chart",
]
