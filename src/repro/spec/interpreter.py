"""Executable state-chart semantics.

The analytic models only need the stochastic *translation* of a chart;
the simulated WFMS (:mod:`repro.wfms`) additionally needs to *execute*
instances of it: enter states, start activities, fire transitions when
activities complete, run orthogonal regions in parallel, and synchronize
their termination (the join of Figure 3).  This module provides that
runtime.

Execution model (a pragmatic subset of statechart semantics, sufficient
for the paper's workflow charts):

* The driver calls :meth:`StateChartInterpreter.start`, then repeatedly
  inspects :meth:`active_states` (the currently entered leaf states,
  one per active region) and calls :meth:`advance` on a leaf once its
  activity (or routing delay) has finished.
* ``advance`` sets the ``<activity>_DONE`` condition, raises the
  completion event, executes the chosen transition's actions, and enters
  the target state — recursively entering regions of composite states.
* A region completes when its final state is advanced; an orthogonal
  composite completes when *all* its regions have completed, after which
  the parent region leaves the composite via one of its outgoing
  transitions.
* Branching decisions are delegated to a :class:`BranchResolver` —
  probability-annotation-driven for simulation, guard-driven for
  deterministic replay.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.exceptions import ModelError, ValidationError
from repro.spec.events import (
    Action,
    RaiseEvent,
    SetCondition,
    StartActivity,
    completion_event,
)
from repro.spec.statechart import ChartState, ChartTransition, StateChart

#: A path uniquely identifying an active leaf state: alternating chart
#: and state names from the root, e.g.
#: ``("EP", "Shipment_S", "Delivery_SC", "CheckStock")``.
StatePath = tuple[str, ...]


@dataclass(frozen=True)
class ActiveState:
    """One currently entered leaf state of a running instance."""

    path: StatePath
    state: ChartState

    @property
    def activity(self) -> str | None:
        """Name of the activity bound to the underlying state, if any."""
        return self.state.activity


class BranchResolver(abc.ABC):
    """Chooses which outgoing transition a completing state takes."""

    @abc.abstractmethod
    def choose(
        self,
        transitions: Sequence[ChartTransition],
        event: str | None,
        environment: Mapping[str, bool],
    ) -> ChartTransition:
        """Pick one of the (non-empty) outgoing transitions."""


class ProbabilisticResolver(BranchResolver):
    """Samples branches according to the probability annotations.

    This is the resolver the simulated WFMS uses: it realizes exactly the
    branching distribution that the stochastic translation assumes, so
    simulation and analysis see the same control-flow statistics.
    """

    def __init__(self, rng: random.Random | None = None) -> None:
        self._rng = rng if rng is not None else random.Random()

    def choose(
        self,
        transitions: Sequence[ChartTransition],
        event: str | None,
        environment: Mapping[str, bool],
    ) -> ChartTransition:
        """Sample one transition by the probability annotations."""
        if len(transitions) == 1:
            return transitions[0]
        weights = []
        for transition in transitions:
            if transition.probability is None:
                raise ModelError(
                    f"transition {transition} lacks a probability "
                    "annotation; the probabilistic resolver needs one on "
                    "every branching transition"
                )
            weights.append(transition.probability)
        return self._rng.choices(list(transitions), weights=weights, k=1)[0]


class GuardedResolver(BranchResolver):
    """Takes the first transition whose ECA rule is enabled.

    Deterministic replay semantics: useful for unit tests and for
    re-executing audited instances.  Raises when no rule is enabled.
    """

    def choose(
        self,
        transitions: Sequence[ChartTransition],
        event: str | None,
        environment: Mapping[str, bool],
    ) -> ChartTransition:
        """The first transition whose ECA rule is enabled."""
        for transition in transitions:
            if transition.rule.is_enabled(event, environment):
                return transition
        raise ModelError(
            "no outgoing transition is enabled for event "
            f"{event!r} under {dict(environment)!r}"
        )


class InterpreterListener:
    """Callbacks observing an executing instance; all default to no-ops."""

    def on_state_entered(self, active: ActiveState) -> None:
        """A (leaf or composite) state was entered."""

    def on_state_exited(self, active: ActiveState) -> None:
        """A state was left."""

    def on_activity_started(self, activity_name: str, path: StatePath) -> None:
        """An ``st!(activity)`` took effect."""

    def on_workflow_completed(self) -> None:
        """The root chart reached (and completed) its final state."""


class _RegionRuntime:
    """Execution state of one region (one chart) of a running instance."""

    def __init__(
        self,
        chart: StateChart,
        path_prefix: StatePath,
        interpreter: "StateChartInterpreter",
    ) -> None:
        self.chart = chart
        self.path_prefix = path_prefix + (chart.name,)
        self.interpreter = interpreter
        self.current: str | None = None
        self.completed = False
        self.child_regions: list["_RegionRuntime"] = []

    # ------------------------------------------------------------------
    def enter_initial(self) -> None:
        self._enter(self.chart.initial_state)

    def _enter(self, state_name: str) -> None:
        state = self.chart.state(state_name)
        self.current = state_name
        self.child_regions = []
        active = ActiveState(self.path_prefix + (state_name,), state)
        self.interpreter._notify_entered(active)
        for action in state.all_entry_actions:
            self.interpreter._execute_action(action, active.path)
        if state.is_composite:
            for region in state.regions:
                child = _RegionRuntime(
                    region, active.path, self.interpreter
                )
                self.child_regions.append(child)
                child.enter_initial()

    # ------------------------------------------------------------------
    def active_states(self) -> list[ActiveState]:
        if self.completed or self.current is None:
            return []
        state = self.chart.state(self.current)
        if state.is_composite:
            leaves: list[ActiveState] = []
            for child in self.child_regions:
                leaves.extend(child.active_states())
            return leaves
        return [ActiveState(self.path_prefix + (self.current,), state)]

    # ------------------------------------------------------------------
    def advance(self, path: StatePath) -> bool:
        """Advance the leaf at ``path``; returns True when handled."""
        if self.completed or self.current is None:
            return False
        own_path = self.path_prefix + (self.current,)
        state = self.chart.state(self.current)
        if state.is_composite:
            if path[: len(own_path)] != own_path:
                return False
            for child in self.child_regions:
                if child.advance(path):
                    break
            else:
                return False
            if all(child.completed for child in self.child_regions):
                # Join: all orthogonal regions terminated; the composite
                # completes like an activity would.
                self._complete_current(state)
            return True
        if path != own_path:
            return False
        self._complete_current(state)
        return True

    def _complete_current(self, state: ChartState) -> None:
        assert self.current is not None
        active = ActiveState(self.path_prefix + (self.current,), state)
        event: str | None = None
        if state.activity is not None:
            event = completion_event(state.activity)
            self.interpreter._set_condition(event, True)
        self.interpreter._notify_exited(active)

        outgoing = self.chart.outgoing(self.current)
        if not outgoing:
            self.current = None
            self.completed = True
            return
        # The live condition dict is handed to the resolver directly (the
        # public ``environment`` property copies it on every read, which
        # is too expensive per fired transition); resolvers must treat it
        # as read-only.
        transition = self.interpreter._resolver.choose(
            outgoing, event, self.interpreter._environment
        )
        for action in transition.rule.actions:
            self.interpreter._execute_action(action, active.path)
        self._enter(transition.target)


class StateChartInterpreter:
    """Executes one instance of a state-chart workflow specification."""

    def __init__(
        self,
        chart: StateChart,
        resolver: BranchResolver | None = None,
        listener: InterpreterListener | None = None,
        activity_starter: Callable[[str, StatePath], None] | None = None,
    ) -> None:
        self.chart = chart
        self._resolver = resolver or GuardedResolver()
        self._listener = listener or InterpreterListener()
        self._activity_starter = activity_starter
        self._environment: dict[str, bool] = {}
        self._root = _RegionRuntime(chart, (), self)
        self._started = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def environment(self) -> Mapping[str, bool]:
        """Current condition-variable assignment (read-only view)."""
        return dict(self._environment)

    @property
    def is_completed(self) -> bool:
        """Whether the root chart has terminated."""
        return self._root.completed

    def start(self) -> None:
        """Enter the initial state (and nested initial states)."""
        if self._started:
            raise ModelError("instance already started")
        self._started = True
        self._root.enter_initial()

    def active_states(self) -> tuple[ActiveState, ...]:
        """Currently entered leaf states, one per active region."""
        self._require_started()
        return tuple(self._root.active_states())

    def advance(self, path: StatePath) -> None:
        """Signal that the leaf state at ``path`` has finished.

        For an activity state this means the activity completed; for a
        routing state, that its delay elapsed.
        """
        self._require_started()
        if self.is_completed:
            raise ModelError("instance already completed")
        if not self._root.advance(tuple(path)):
            raise ValidationError(
                f"no active leaf state at path {tuple(path)!r}; active: "
                f"{[active.path for active in self.active_states()]}"
            )
        if self.is_completed:
            self._listener.on_workflow_completed()

    def set_condition(self, name: str, value: bool) -> None:
        """Set a condition variable from the environment (e.g. user input)."""
        self._set_condition(name, value)

    def run_to_completion(self) -> list[str]:
        """Drive the instance until termination, advancing leaves FIFO.

        Returns the sequence of visited leaf-state names — handy for tests
        and for generating synthetic audit trails without a simulator.
        """
        self._require_started()
        visited: list[str] = []
        while not self.is_completed:
            active = self.active_states()
            if not active:  # pragma: no cover - defensive
                raise ModelError("instance stalled without active states")
            leaf = active[0]
            visited.append(leaf.state.name)
            self.advance(leaf.path)
        return visited

    # ------------------------------------------------------------------
    # Internal hooks used by region runtimes
    # ------------------------------------------------------------------
    def _require_started(self) -> None:
        if not self._started:
            raise ModelError("call start() first")

    def _set_condition(self, name: str, value: bool) -> None:
        self._environment[name] = value

    def _execute_action(self, action: Action, path: StatePath) -> None:
        if isinstance(action, StartActivity):
            self._listener.on_activity_started(action.activity_name, path)
            if self._activity_starter is not None:
                self._activity_starter(action.activity_name, path)
            return
        if isinstance(action, SetCondition):
            self._set_condition(action.name, action.value)
            return
        if isinstance(action, RaiseEvent):
            # Events are modelled as momentary conditions: raising an event
            # sets a same-named flag that guards can read in this step.
            self._set_condition(action.event_name, True)
            return
        raise ModelError(f"unknown action type {type(action).__name__}")

    def _notify_entered(self, active: ActiveState) -> None:
        self._listener.on_state_entered(active)

    def _notify_exited(self, active: ActiveState) -> None:
        self._listener.on_state_exited(active)
