"""Harel-style state charts as a workflow specification language (§3.1).

A state chart is essentially a finite state machine with a distinguished
initial state and ECA-rule-driven transitions.  Two structuring features
matter for workflow management:

* **nested states** — a state may contain an entire lower-level state
  chart (a *region*); entering the state enters the region's initial
  state, leaving it leaves the whole region (used for subworkflows);
* **orthogonal components** — a state with several regions runs them in
  parallel; all regions enter their initial states simultaneously and the
  composite completes when every region has reached its final state.

For the stochastic translation (Figure 4), transitions carry optional
*probability annotations*: the designer's estimate of the branching
probability, or a value calibrated from audit trails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import ValidationError
from repro.spec.events import Action, ECARule, StartActivity


@dataclass(frozen=True)
class ChartState:
    """One state of a state chart.

    Parameters
    ----------
    name:
        State name, unique within its chart.
    activity:
        Convenience shorthand: the activity started upon entry (expands to
        a :class:`StartActivity` entry action); the state then completes
        when the activity does.
    entry_actions:
        Additional actions executed upon entering the state.
    regions:
        Nested state charts: one region nests a subworkflow, several
        regions run orthogonally (in parallel).
    mean_duration:
        For states without an activity and without regions (routing or
        bookkeeping states): the mean time spent in the state, used by the
        stochastic translation.
    """

    name: str
    activity: str | None = None
    entry_actions: tuple[Action, ...] = ()
    regions: tuple["StateChart", ...] = ()
    mean_duration: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("state name must be non-empty")
        object.__setattr__(self, "entry_actions", tuple(self.entry_actions))
        object.__setattr__(self, "regions", tuple(self.regions))
        if self.activity is not None and self.regions:
            raise ValidationError(
                f"state {self.name}: cannot both start an activity and "
                "contain regions"
            )
        if self.mean_duration is not None and self.mean_duration <= 0.0:
            raise ValidationError(
                f"state {self.name}: mean_duration must be positive"
            )
        if self.regions and self.mean_duration is not None:
            raise ValidationError(
                f"state {self.name}: duration of a composite state is "
                "derived from its regions"
            )
        # The interpreter reads the expanded entry actions on every state
        # entry; expand the activity shorthand once instead of per entry.
        object.__setattr__(
            self,
            "_all_entry_actions",
            (StartActivity(self.activity),) + self.entry_actions
            if self.activity is not None
            else self.entry_actions,
        )

    @property
    def is_composite(self) -> bool:
        """Whether the state contains nested regions."""
        return bool(self.regions)

    @property
    def is_orthogonal(self) -> bool:
        """Whether the state runs two or more regions in parallel."""
        return len(self.regions) >= 2

    @property
    def all_entry_actions(self) -> tuple[Action, ...]:
        """Entry actions including the activity shorthand expansion."""
        return self._all_entry_actions


@dataclass(frozen=True)
class ChartTransition:
    """A transition between two states of the same chart."""

    source: str
    target: str
    rule: ECARule = field(default_factory=ECARule)
    probability: float | None = None

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise ValidationError("transition endpoints must be non-empty")
        if self.probability is not None:
            if not 0.0 < self.probability <= 1.0:
                raise ValidationError(
                    f"transition {self.source}->{self.target}: probability "
                    f"{self.probability} must lie in (0, 1]"
                )

    def __str__(self) -> str:
        annotation = (
            f" @{self.probability}" if self.probability is not None else ""
        )
        return f"{self.source} --{self.rule}--> {self.target}{annotation}"


@dataclass(frozen=True)
class StateChart:
    """A state chart: states, transitions, and a single initial state.

    The *final* state is the unique state without outgoing transitions
    (the paper assumes a single final state; connect multiple terminals to
    an explicit termination state if needed).
    """

    name: str
    states: tuple[ChartState, ...]
    transitions: tuple[ChartTransition, ...]
    initial_state: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("chart name must be non-empty")
        states = tuple(self.states)
        transitions = tuple(self.transitions)
        object.__setattr__(self, "states", states)
        object.__setattr__(self, "transitions", transitions)
        names = [state.name for state in states]
        if len(set(names)) != len(names):
            raise ValidationError(
                f"chart {self.name}: duplicate state names"
            )
        known = set(names)
        for transition in transitions:
            if transition.source not in known:
                raise ValidationError(
                    f"chart {self.name}: transition from unknown state "
                    f"{transition.source!r}"
                )
            if transition.target not in known:
                raise ValidationError(
                    f"chart {self.name}: transition to unknown state "
                    f"{transition.target!r}"
                )
        if self.initial_state not in known:
            raise ValidationError(
                f"chart {self.name}: unknown initial state "
                f"{self.initial_state!r}"
            )
        # Lookup indexes: the interpreter resolves states and outgoing
        # transitions on every transition fired, so both must be O(1)
        # rather than scans over the state/transition tuples.
        object.__setattr__(
            self,
            "_state_index",
            {state.name: state for state in states},
        )
        outgoing: dict[str, list[ChartTransition]] = {
            name: [] for name in names
        }
        for transition in transitions:
            outgoing[transition.source].append(transition)
        object.__setattr__(
            self,
            "_outgoing_index",
            {
                name: tuple(listed) for name, listed in outgoing.items()
            },
        )

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    @property
    def state_names(self) -> tuple[str, ...]:
        """Names of the states, in definition order."""
        return tuple(state.name for state in self.states)

    def state(self, name: str) -> ChartState:
        """The state called ``name`` (raises if unknown)."""
        try:
            return self._state_index[name]
        except KeyError:
            raise ValidationError(
                f"chart {self.name}: no state named {name!r}"
            ) from None

    def outgoing(self, state_name: str) -> tuple[ChartTransition, ...]:
        """All transitions leaving a state (in definition order)."""
        try:
            return self._outgoing_index[state_name]
        except KeyError:
            raise ValidationError(
                f"chart {self.name}: no state named {state_name!r}"
            ) from None

    def incoming(self, state_name: str) -> tuple[ChartTransition, ...]:
        """All transitions entering a state."""
        self.state(state_name)
        return tuple(
            transition
            for transition in self.transitions
            if transition.target == state_name
        )

    @property
    def final_states(self) -> tuple[str, ...]:
        """States without outgoing transitions."""
        sources = {transition.source for transition in self.transitions}
        return tuple(
            name for name in self.state_names if name not in sources
        )

    @property
    def final_state(self) -> str:
        """The single final state; raises if it is not unique."""
        finals = self.final_states
        if len(finals) != 1:
            raise ValidationError(
                f"chart {self.name}: expected exactly one final state, "
                f"found {list(finals)}"
            )
        return finals[0]

    def walk_charts(self) -> Iterator["StateChart"]:
        """This chart and, depth-first, every nested region chart."""
        yield self
        for state in self.states:
            for region in state.regions:
                yield from region.walk_charts()

    def activities(self) -> frozenset[str]:
        """All activity names referenced anywhere in the chart tree."""
        result: set[str] = set()
        for chart in self.walk_charts():
            for state in chart.states:
                if state.activity is not None:
                    result.add(state.activity)
                for action in state.all_entry_actions:
                    if isinstance(action, StartActivity):
                        result.add(action.activity_name)
        return frozenset(result)
