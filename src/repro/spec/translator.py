"""Translation of state charts into the stochastic model layer (§3.2).

This is the *mapping* component of the configuration tool (Section 7.1):
it turns a workflow specification (a state chart with probability
annotations) into the :class:`~repro.core.workflow_model.WorkflowDefinition`
from which the CTMC of Figure 4 is built.

Mapping rules:

* every top-level chart state becomes one workflow execution state;
* a state that starts an activity becomes an activity state (residence
  time = the activity's mean turnaround time);
* a composite state becomes a subworkflow state whose children are the
  recursively translated regions (parallel regions stay parallel);
* transition probabilities come from the chart's annotations; a state
  with a single un-annotated outgoing transition implicitly has
  probability 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.model_types import ActivitySpec
from repro.core.workflow_model import WorkflowDefinition, WorkflowState
from repro.exceptions import ValidationError
from repro.spec.statechart import ChartState, ChartTransition, StateChart
from repro.spec.validation import ensure_valid

#: Residence time assigned to routing states that specify none.  Pure
#: control-flow states are near-instantaneous; the CTMC still needs a
#: positive residence time.
DEFAULT_ROUTING_DURATION = 1e-3


@dataclass(frozen=True)
class ActivityRegistry:
    """Catalogue of activity types available to the translation.

    Maps activity names (as referenced by ``st!(...)`` / the ``activity``
    shorthand) to their :class:`~repro.core.model_types.ActivitySpec`,
    i.e. mean durations and per-server-type load vectors.
    """

    activities: Mapping[str, ActivitySpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        activities = dict(self.activities)
        for name, spec in activities.items():
            if name != spec.name:
                raise ValidationError(
                    f"registry key {name!r} does not match activity name "
                    f"{spec.name!r}"
                )
        object.__setattr__(self, "activities", activities)

    def get(self, name: str) -> ActivitySpec:
        """The activity spec registered under ``name`` (raises if unknown)."""
        try:
            return self.activities[name]
        except KeyError:
            raise ValidationError(
                f"unknown activity {name!r}; registered: "
                f"{sorted(self.activities)}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self.activities


def translate_chart(
    chart: StateChart,
    registry: ActivityRegistry,
    default_routing_duration: float = DEFAULT_ROUTING_DURATION,
    validate: bool = True,
) -> WorkflowDefinition:
    """Translate a (validated) state chart into a workflow definition.

    Raises :class:`ValidationError` if the chart is structurally invalid,
    references unregistered activities, or branches without probability
    annotations.
    """
    if validate:
        ensure_valid(chart)
    if default_routing_duration <= 0.0:
        raise ValidationError("default_routing_duration must be positive")

    states = tuple(
        _translate_state(state, registry, default_routing_duration)
        for state in chart.states
    )
    transitions = _transition_probabilities(chart)
    return WorkflowDefinition(
        name=chart.name,
        states=states,
        transitions=transitions,
        initial_state=chart.initial_state,
    )


def _translate_state(
    state: ChartState,
    registry: ActivityRegistry,
    default_routing_duration: float,
) -> WorkflowState:
    if state.is_composite:
        children = tuple(
            translate_chart(
                region, registry, default_routing_duration, validate=False
            )
            for region in state.regions
        )
        return WorkflowState(name=state.name, subworkflows=children)
    if state.activity is not None:
        return WorkflowState(
            name=state.name,
            activity=registry.get(state.activity),
            mean_duration=state.mean_duration,
        )
    duration = (
        state.mean_duration
        if state.mean_duration is not None
        else default_routing_duration
    )
    return WorkflowState(name=state.name, mean_duration=duration)


def _transition_probabilities(
    chart: StateChart,
) -> dict[tuple[str, str], float]:
    """Collect annotated branching probabilities per transition.

    Parallel edges between the same state pair (e.g. two ECA rules for
    different business cases with the same source and target) have their
    probabilities summed.
    """
    result: dict[tuple[str, str], float] = {}
    for state_name in chart.state_names:
        outgoing = chart.outgoing(state_name)
        if not outgoing:
            continue
        if len(outgoing) == 1 and outgoing[0].probability is None:
            probabilities = [1.0]
        else:
            missing = [
                transition
                for transition in outgoing
                if transition.probability is None
            ]
            if missing:
                raise ValidationError(
                    f"chart {chart.name}: state {state_name} branches "
                    "without probability annotations; annotate every "
                    "outgoing transition (designer estimate or calibrated "
                    "from audit trails)"
                )
            probabilities = [
                transition.probability  # type: ignore[misc]
                for transition in outgoing
            ]
        for transition, probability in zip(outgoing, probabilities):
            key = (transition.source, transition.target)
            result[key] = result.get(key, 0.0) + probability
    return result


def definition_to_chart(
    definition: WorkflowDefinition,
) -> tuple[StateChart, ActivityRegistry]:
    """Inverse translation: a workflow definition back into a state chart.

    Project files store :class:`WorkflowDefinition` objects (the
    model-level view), but the simulated WFMS executes state charts.
    This reconstructs a chart whose probabilistic interpretation is
    exactly the definition: activity states keep their activity (and any
    per-workflow duration override), subworkflow states become
    nested/orthogonal regions, routing states keep their mean duration,
    and every transition carries the definition's branching probability.
    Returns the chart together with the registry of every referenced
    activity.
    """
    activities: dict[str, ActivitySpec] = {}
    chart = _definition_to_chart(definition, activities)
    ensure_valid(chart)
    return chart, ActivityRegistry(activities)


def _definition_to_chart(
    definition: WorkflowDefinition,
    activities: dict[str, ActivitySpec],
) -> StateChart:
    states: list[ChartState] = []
    for state in definition.states:
        if state.is_subworkflow_state:
            regions = tuple(
                _definition_to_chart(child, activities)
                for child in state.subworkflows
            )
            states.append(ChartState(name=state.name, regions=regions))
        elif state.activity is not None:
            spec = state.activity
            existing = activities.get(spec.name)
            if existing is not None and existing != spec:
                raise ValidationError(
                    f"workflow {definition.name}: conflicting definitions "
                    f"of activity {spec.name!r}"
                )
            activities[spec.name] = spec
            states.append(
                ChartState(
                    name=state.name,
                    activity=spec.name,
                    mean_duration=state.mean_duration,
                )
            )
        else:
            states.append(
                ChartState(
                    name=state.name, mean_duration=state.mean_duration
                )
            )
    transitions = tuple(
        ChartTransition(
            source=source, target=target, probability=probability
        )
        for (source, target), probability in definition.transitions.items()
        if probability > 0.0
    )
    return StateChart(
        name=definition.name,
        states=tuple(states),
        transitions=transitions,
        initial_state=definition.initial_state,
    )
