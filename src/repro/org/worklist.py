"""Worklist management for interactive activities (Section 2).

Interactive activities are assigned to qualified actors according to a
*worklist management policy*; each actor processes their work items one
at a time (humans are single servers).  Plugged into the simulated WFMS,
this exposes the effect the analytic models deliberately exclude: under
actor contention, interactive activities wait in worklists and measured
turnaround times exceed the CTMC prediction — quantifying the cost of
the paper's "disregard all effects of human user behavior" assumption.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.exceptions import ValidationError
from repro.org.model import Actor, Organization
from repro.sim.engine import Simulator
from repro.sim.statistics import RunningStats, TimeWeightedStats


class AssignmentPolicy(enum.Enum):
    """How a new work item picks among the qualified actors."""

    RANDOM = "random"
    ROUND_ROBIN = "round_robin"
    #: Fewest open (queued + active) items; ties broken by order.
    LEAST_LOADED = "least_loaded"


@dataclass
class WorkItem:
    """One interactive activity instance waiting for / at an actor."""

    activity: str
    instance_id: int
    nominal_duration: float
    created_at: float
    on_complete: Callable[["WorkItem"], None] = field(repr=False)
    assigned_actor: str | None = None
    started_at: float | None = None
    completed_at: float | None = None

    @property
    def waiting_time(self) -> float:
        """Time spent in the worklist before the actor started it."""
        if self.started_at is None:
            raise ValidationError("work item not started yet")
        return self.started_at - self.created_at


class _ActorRuntime:
    """FCFS single-server runtime of one actor."""

    def __init__(self, simulator: Simulator, actor: Actor) -> None:
        self.simulator = simulator
        self.actor = actor
        self.queue: deque[WorkItem] = deque()
        self.current: WorkItem | None = None
        self.busy = TimeWeightedStats(0.0, simulator.now)
        self.completed_items = 0

    @property
    def open_items(self) -> int:
        return len(self.queue) + (1 if self.current is not None else 0)

    def submit(self, item: WorkItem) -> None:
        self.queue.append(item)
        self._try_start()

    def _try_start(self) -> None:
        if self.current is not None or not self.queue:
            return
        item = self.queue.popleft()
        item.started_at = self.simulator.now
        self.current = item
        self.busy.update(1.0, self.simulator.now)
        processing = item.nominal_duration / self.actor.efficiency
        self.simulator.schedule(processing, self._complete, item)

    def _complete(self, item: WorkItem) -> None:
        item.completed_at = self.simulator.now
        self.current = None
        self.completed_items += 1
        self.busy.update(0.0, self.simulator.now)
        item.on_complete(item)
        self._try_start()


@dataclass(frozen=True)
class ActorMeasurement:
    """Measured behaviour of one actor over a run."""

    name: str
    completed_items: int
    utilization: float


@dataclass(frozen=True)
class WorklistReport:
    """Aggregated worklist statistics of one run."""

    mean_waiting_time: float
    waiting_samples: int
    actors: dict[str, ActorMeasurement]

    def format_text(self) -> str:
        """Human-readable multi-line rendering of the report."""
        lines = [
            f"Worklist: mean waiting {self.mean_waiting_time:.4f} over "
            f"{self.waiting_samples} items",
        ]
        for measurement in self.actors.values():
            lines.append(
                f"  {measurement.name:16s} items "
                f"{measurement.completed_items:6d}   utilization "
                f"{measurement.utilization:.4f}"
            )
        return "\n".join(lines)


class SimulatedWorklist:
    """Assigns interactive work items to actors and runs them.

    Parameters
    ----------
    simulator:
        The discrete-event engine shared with the WFMS.
    organization:
        Actors (with roles) available for assignment.
    activity_roles:
        Maps activity names to the role required to work on them;
        unmapped activities may be handled by *any* actor.
    policy:
        The worklist management policy.
    """

    def __init__(
        self,
        simulator: Simulator,
        organization: Organization,
        activity_roles: Mapping[str, str] | None = None,
        policy: AssignmentPolicy = AssignmentPolicy.LEAST_LOADED,
        rng: random.Random | None = None,
    ) -> None:
        self.simulator = simulator
        self.organization = organization
        self.activity_roles = dict(activity_roles or {})
        self.policy = policy
        self._rng = rng if rng is not None else random.Random()
        self._runtimes = {
            actor.name: _ActorRuntime(simulator, actor)
            for actor in organization.actors
        }
        self._round_robin_position = 0
        self.waiting_times = RunningStats()

    # ------------------------------------------------------------------
    def submit(
        self,
        activity: str,
        instance_id: int,
        nominal_duration: float,
        on_complete: Callable[[WorkItem], None],
    ) -> WorkItem:
        """Create, assign, and enqueue one work item."""
        if nominal_duration <= 0.0:
            raise ValidationError("nominal duration must be positive")
        candidates = self._candidates(activity)
        actor = self._choose(candidates)

        def record_and_forward(item: WorkItem) -> None:
            self.waiting_times.add(item.waiting_time)
            on_complete(item)

        item = WorkItem(
            activity=activity,
            instance_id=instance_id,
            nominal_duration=nominal_duration,
            created_at=self.simulator.now,
            on_complete=record_and_forward,
            assigned_actor=actor.name,
        )
        self._runtimes[actor.name].submit(item)
        return item

    def _candidates(self, activity: str) -> tuple[Actor, ...]:
        role = self.activity_roles.get(activity)
        if role is None:
            return self.organization.actors
        candidates = self.organization.actors_with_role(role)
        if not candidates:
            raise ValidationError(
                f"no actor holds role {role!r} required by activity "
                f"{activity!r}"
            )
        return candidates

    def _choose(self, candidates: tuple[Actor, ...]) -> Actor:
        if len(candidates) == 1:
            return candidates[0]
        if self.policy is AssignmentPolicy.RANDOM:
            return self._rng.choice(candidates)
        if self.policy is AssignmentPolicy.ROUND_ROBIN:
            self._round_robin_position += 1
            return candidates[self._round_robin_position % len(candidates)]
        # LEAST_LOADED
        return min(
            candidates,
            key=lambda actor: self._runtimes[actor.name].open_items,
        )

    # ------------------------------------------------------------------
    def open_items(self, actor_name: str) -> int:
        """Currently queued + active items of one actor."""
        try:
            return self._runtimes[actor_name].open_items
        except KeyError:
            raise ValidationError(f"unknown actor {actor_name!r}") from None

    def report(self) -> WorklistReport:
        """Aggregate statistics over all actors."""
        now = self.simulator.now
        return WorklistReport(
            mean_waiting_time=self.waiting_times.mean,
            waiting_samples=self.waiting_times.count,
            actors={
                name: ActorMeasurement(
                    name=name,
                    completed_items=runtime.completed_items,
                    utilization=runtime.busy.time_average(now),
                )
                for name, runtime in self._runtimes.items()
            },
        )
