"""Organizational model and worklist management (Section 2 substrate)."""

from repro.org.model import Actor, Organization, OrgUnit, Role
from repro.org.worklist import (
    ActorMeasurement,
    AssignmentPolicy,
    SimulatedWorklist,
    WorkItem,
    WorklistReport,
)

__all__ = [
    "Actor",
    "ActorMeasurement",
    "AssignmentPolicy",
    "OrgUnit",
    "Organization",
    "Role",
    "SimulatedWorklist",
    "WorkItem",
    "WorklistReport",
]
