"""Organizational model: roles, actors, and organizational units.

Section 2 of the paper: an activity "can first require the assignment to
an appropriate human actor or organizational unit according to a
specified worklist management policy".  The paper's *performance* models
deliberately disregard human behaviour; this package provides the
organizational substrate anyway, because the simulated WFMS can then
demonstrate what the analytic model abstracts away — actor contention on
interactive activities — and because worklist management is part of the
architectural picture (the paper lists worklist facilities among the
server types one could add).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class Role:
    """A capability/qualification actors can hold (e.g. ``clerk``)."""

    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("role name must be non-empty")


@dataclass(frozen=True)
class Actor:
    """A human actor with roles and a relative working speed.

    ``efficiency`` scales processing durations: an actor with efficiency
    2.0 completes work items in half the nominal time.
    """

    name: str
    roles: frozenset[str] = field(default_factory=frozenset)
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("actor name must be non-empty")
        object.__setattr__(self, "roles", frozenset(self.roles))
        if self.efficiency <= 0.0:
            raise ValidationError(
                f"actor {self.name}: efficiency must be positive"
            )

    def has_role(self, role: str) -> bool:
        """Whether the actor holds the named role."""
        return role in self.roles


@dataclass(frozen=True)
class OrgUnit:
    """An organizational unit grouping actors (optionally nested)."""

    name: str
    actor_names: tuple[str, ...] = ()
    parent: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("unit name must be non-empty")
        object.__setattr__(self, "actor_names", tuple(self.actor_names))


class Organization:
    """The enterprise's actors, units, and declared roles."""

    def __init__(
        self,
        actors: Iterable[Actor],
        units: Iterable[OrgUnit] = (),
        roles: Iterable[Role] = (),
    ) -> None:
        self._actors = {actor.name: actor for actor in actors}
        if not self._actors:
            raise ValidationError("organization needs at least one actor")
        actor_list = list(self._actors)
        if len(actor_list) != len(set(actor_list)):  # pragma: no cover
            raise ValidationError("duplicate actor names")

        self._roles = {role.name: role for role in roles}
        if self._roles:
            for actor in self._actors.values():
                undeclared = actor.roles - set(self._roles)
                if undeclared:
                    raise ValidationError(
                        f"actor {actor.name} holds undeclared roles "
                        f"{sorted(undeclared)}"
                    )

        self._units = {unit.name: unit for unit in units}
        for unit in self._units.values():
            for member in unit.actor_names:
                if member not in self._actors:
                    raise ValidationError(
                        f"unit {unit.name} lists unknown actor {member!r}"
                    )
            if unit.parent is not None and unit.parent not in self._units:
                raise ValidationError(
                    f"unit {unit.name} has unknown parent {unit.parent!r}"
                )
        self._check_unit_cycles()

    def _check_unit_cycles(self) -> None:
        for name in self._units:
            seen = set()
            node: str | None = name
            while node is not None:
                if node in seen:
                    raise ValidationError(
                        f"organizational units form a cycle at {node!r}"
                    )
                seen.add(node)
                node = self._units[node].parent

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def actors(self) -> tuple[Actor, ...]:
        """All actors, in registration order."""
        return tuple(self._actors.values())

    @property
    def roles(self) -> tuple[Role, ...]:
        """All roles, in registration order."""
        return tuple(self._roles.values())

    @property
    def units(self) -> tuple[OrgUnit, ...]:
        """All organizational units, in registration order."""
        return tuple(self._units.values())

    def actor(self, name: str) -> Actor:
        """The actor called ``name`` (raises if unknown)."""
        try:
            return self._actors[name]
        except KeyError:
            raise ValidationError(f"unknown actor {name!r}") from None

    def unit(self, name: str) -> OrgUnit:
        """The organizational unit called ``name`` (raises if unknown)."""
        try:
            return self._units[name]
        except KeyError:
            raise ValidationError(f"unknown unit {name!r}") from None

    def actors_with_role(self, role: str) -> tuple[Actor, ...]:
        """All actors qualified for ``role`` (may be empty)."""
        return tuple(
            actor for actor in self._actors.values()
            if actor.has_role(role)
        )

    def actors_of_unit(
        self, unit_name: str, include_subunits: bool = True
    ) -> tuple[Actor, ...]:
        """Members of a unit, optionally including nested units."""
        self.unit(unit_name)
        names: list[str] = []
        for unit in self._units.values():
            if unit.name == unit_name or (
                include_subunits and self._is_descendant(unit, unit_name)
            ):
                names.extend(unit.actor_names)
        seen: set[str] = set()
        members = []
        for name in names:
            if name not in seen:
                seen.add(name)
                members.append(self._actors[name])
        return tuple(members)

    def _is_descendant(self, unit: OrgUnit, ancestor: str) -> bool:
        node = unit.parent
        while node is not None:
            if node == ancestor:
                return True
            node = self._units[node].parent
        return False
