"""JSON (de)serialization of model objects.

A configuration-tool deployment needs its inputs — server landscape,
workflow definitions, arrival rates, goals — as data, not code.  This
module round-trips the model layer through plain JSON-compatible
dictionaries: server types, activities, (nested) workflow definitions,
system configurations, and performability goals, plus a ``Project``
bundle tying a whole study together for the command-line interface.

All ``*_from_dict`` functions validate through the model constructors,
so a hand-edited file fails with the same errors as bad code would.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.core.goals import PerformabilityGoals
from repro.core.model_types import (
    ActivitySpec,
    ServerRole,
    ServerTypeIndex,
    ServerTypeSpec,
)
from repro.core.performance import (
    SystemConfiguration,
    Workload,
    WorkloadItem,
)
from repro.core.workflow_model import WorkflowDefinition, WorkflowState
from repro.exceptions import ValidationError


# ----------------------------------------------------------------------
# Server types
# ----------------------------------------------------------------------
def server_type_to_dict(spec: ServerTypeSpec) -> dict[str, Any]:
    """Serialize one server type."""
    result: dict[str, Any] = {
        "name": spec.name,
        "mean_service_time": spec.mean_service_time,
        "second_moment_service_time": spec.second_moment_service_time,
        "cost": spec.cost,
        "role": spec.role.value,
    }
    if spec.failure_rate > 0.0:
        result["failure_rate"] = spec.failure_rate
    if math.isfinite(spec.repair_rate):
        result["repair_rate"] = spec.repair_rate
    return result


def server_type_from_dict(data: Mapping[str, Any]) -> ServerTypeSpec:
    """Deserialize one server type."""
    _require_keys(data, {"name", "mean_service_time"}, "server type")
    return ServerTypeSpec(
        name=data["name"],
        mean_service_time=float(data["mean_service_time"]),
        second_moment_service_time=(
            float(data["second_moment_service_time"])
            if "second_moment_service_time" in data
            and data["second_moment_service_time"] is not None
            else None
        ),
        failure_rate=float(data.get("failure_rate", 0.0)),
        repair_rate=float(data.get("repair_rate", math.inf)),
        cost=float(data.get("cost", 1.0)),
        role=ServerRole(data.get("role", ServerRole.OTHER.value)),
    )


def server_types_to_list(index: ServerTypeIndex) -> list[dict[str, Any]]:
    """Serialize a server type index (order-preserving)."""
    return [server_type_to_dict(spec) for spec in index.specs]


def server_types_from_list(items: list) -> ServerTypeIndex:
    """Deserialize a server type index."""
    return ServerTypeIndex(
        server_type_from_dict(item) for item in items
    )


# ----------------------------------------------------------------------
# Activities and workflows
# ----------------------------------------------------------------------
def activity_to_dict(spec: ActivitySpec) -> dict[str, Any]:
    """Serialize one activity type."""
    return {
        "name": spec.name,
        "mean_duration": spec.mean_duration,
        "loads": dict(spec.loads),
        "interactive": spec.interactive,
    }


def activity_from_dict(data: Mapping[str, Any]) -> ActivitySpec:
    """Deserialize one activity type."""
    _require_keys(data, {"name", "mean_duration"}, "activity")
    return ActivitySpec(
        name=data["name"],
        mean_duration=float(data["mean_duration"]),
        loads={
            str(key): float(value)
            for key, value in dict(data.get("loads", {})).items()
        },
        interactive=bool(data.get("interactive", False)),
    )


def workflow_state_to_dict(state: WorkflowState) -> dict[str, Any]:
    """Serialize one workflow state (recursively for subworkflows)."""
    result: dict[str, Any] = {"name": state.name}
    if state.activity is not None:
        result["activity"] = activity_to_dict(state.activity)
    if state.subworkflows:
        result["subworkflows"] = [
            workflow_to_dict(child) for child in state.subworkflows
        ]
    if state.mean_duration is not None:
        result["mean_duration"] = state.mean_duration
    return result


def workflow_state_from_dict(data: Mapping[str, Any]) -> WorkflowState:
    """Deserialize one workflow state."""
    _require_keys(data, {"name"}, "workflow state")
    return WorkflowState(
        name=data["name"],
        activity=(
            activity_from_dict(data["activity"])
            if data.get("activity") is not None
            else None
        ),
        subworkflows=tuple(
            workflow_from_dict(child)
            for child in data.get("subworkflows", [])
        ),
        mean_duration=(
            float(data["mean_duration"])
            if data.get("mean_duration") is not None
            else None
        ),
    )


def workflow_to_dict(definition: WorkflowDefinition) -> dict[str, Any]:
    """Serialize a workflow definition (recursively)."""
    return {
        "name": definition.name,
        "initial_state": definition.initial_state,
        "states": [
            workflow_state_to_dict(state) for state in definition.states
        ],
        "transitions": [
            {"source": source, "target": target, "probability": probability}
            for (source, target), probability
            in sorted(definition.transitions.items())
        ],
    }


def workflow_from_dict(data: Mapping[str, Any]) -> WorkflowDefinition:
    """Deserialize a workflow definition."""
    _require_keys(
        data, {"name", "initial_state", "states", "transitions"}, "workflow"
    )
    transitions: dict[tuple[str, str], float] = {}
    for item in data["transitions"]:
        _require_keys(
            item, {"source", "target", "probability"}, "transition"
        )
        transitions[(item["source"], item["target"])] = float(
            item["probability"]
        )
    return WorkflowDefinition(
        name=data["name"],
        states=tuple(
            workflow_state_from_dict(state) for state in data["states"]
        ),
        transitions=transitions,
        initial_state=data["initial_state"],
    )


# ----------------------------------------------------------------------
# Configurations and goals
# ----------------------------------------------------------------------
def configuration_to_dict(
    configuration: SystemConfiguration,
) -> dict[str, int]:
    """Serialize a system configuration."""
    return dict(sorted(configuration.replicas.items()))


def configuration_from_dict(
    data: Mapping[str, Any],
) -> SystemConfiguration:
    """Deserialize a system configuration."""
    return SystemConfiguration(
        {str(name): int(count) for name, count in data.items()}
    )


def goals_to_dict(goals: PerformabilityGoals) -> dict[str, Any]:
    """Serialize performability goals (None entries omitted)."""
    result: dict[str, Any] = {}
    if goals.max_waiting_time is not None:
        result["max_waiting_time"] = goals.max_waiting_time
    if goals.max_waiting_times_per_type:
        result["max_waiting_times_per_type"] = dict(
            goals.max_waiting_times_per_type
        )
    if goals.max_unavailability is not None:
        result["max_unavailability"] = goals.max_unavailability
    if goals.max_unavailability_per_type:
        result["max_unavailability_per_type"] = dict(
            goals.max_unavailability_per_type
        )
    return result


def goals_from_dict(data: Mapping[str, Any]) -> PerformabilityGoals:
    """Deserialize performability goals."""
    return PerformabilityGoals(
        max_waiting_time=(
            float(data["max_waiting_time"])
            if data.get("max_waiting_time") is not None
            else None
        ),
        max_waiting_times_per_type=dict(
            data.get("max_waiting_times_per_type", {})
        ),
        max_unavailability=(
            float(data["max_unavailability"])
            if data.get("max_unavailability") is not None
            else None
        ),
        max_unavailability_per_type=dict(
            data.get("max_unavailability_per_type", {})
        ),
    )


# ----------------------------------------------------------------------
# Project bundles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Project:
    """A complete configuration study: landscape, workflows, rates.

    The JSON on-disk format of the command-line interface.
    """

    server_types: ServerTypeIndex
    workflows: tuple[WorkflowDefinition, ...]
    arrival_rates: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [workflow.name for workflow in self.workflows]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate workflow names in {names}")
        unknown = set(self.arrival_rates) - set(names)
        if unknown:
            raise ValidationError(
                f"arrival rates for unknown workflows: {sorted(unknown)}"
            )

    def workload(self) -> Workload:
        """The project's workload (workflows with positive rates)."""
        items = [
            WorkloadItem(workflow, self.arrival_rates.get(workflow.name, 0.0))
            for workflow in self.workflows
        ]
        return Workload(items)


def project_to_dict(project: Project) -> dict[str, Any]:
    """Serialize a project bundle."""
    return {
        "server_types": server_types_to_list(project.server_types),
        "workflows": [
            workflow_to_dict(workflow) for workflow in project.workflows
        ],
        "arrival_rates": dict(sorted(project.arrival_rates.items())),
    }


def project_from_dict(data: Mapping[str, Any]) -> Project:
    """Deserialize a project bundle."""
    _require_keys(data, {"server_types", "workflows"}, "project")
    return Project(
        server_types=server_types_from_list(data["server_types"]),
        workflows=tuple(
            workflow_from_dict(workflow) for workflow in data["workflows"]
        ),
        arrival_rates={
            str(name): float(rate)
            for name, rate in dict(data.get("arrival_rates", {})).items()
        },
    )


def save_project(project: Project, path: str | Path) -> None:
    """Write a project bundle as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(project_to_dict(project), indent=2, sort_keys=True)
        + "\n"
    )


def load_project(path: str | Path) -> Project:
    """Read a project bundle from JSON."""
    try:
        data = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ValidationError(f"project file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid JSON in {path}: {exc}") from exc
    return project_from_dict(data)


def _require_keys(
    data: Mapping[str, Any], keys: set[str], what: str
) -> None:
    missing = keys - set(data)
    if missing:
        raise ValidationError(
            f"{what} record is missing keys: {sorted(missing)}"
        )
