"""Importer for the WfCommons JSON instance format.

WfCommons (arXiv 2105.14352) publishes real and synthetic scientific
workflow *instances* as JSON documents: a DAG of tasks with runtimes and
parent/child dependencies.  This module maps such an instance onto a
:class:`~repro.scenarios.spec.WorkflowSpec` so real workflow traces flow
through the same pipeline as the bundled examples — lowering to state
charts, CTMC assessment, configuration search, and simulation — without
special-casing.

Two schema generations are understood:

* the original WorkflowHub/WfCommons layout — ``workflow.tasks`` (or
  ``workflow.jobs``) with per-task ``runtime``/``runtimeInSeconds`` and
  inline ``parents``/``children``;
* the current WfFormat — ``workflow.specification.tasks`` for the DAG
  plus ``workflow.execution.tasks`` for measured ``runtimeInSeconds``.

Mapping.  The paper's model is block-structured (hierarchical fork/join)
rather than general DAG, so the importer applies *level synchronization*:
tasks are grouped by their longest-path depth, and the DAG becomes a
sequence of levels, each a parallel composite over the level's tasks.
This is a conservative approximation — a task may wait for the whole
previous level instead of just its own parents — so the assessed
turnaround upper-bounds the DAG's critical path.  All tasks are mapped to
automated activities (engine/application/communication request counts of
Figure 1) on the standard landscape unless a landscape is supplied.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ValidationError

#: Runtimes at or below zero are clamped to this (minutes); chart states
#: and activities require strictly positive durations.
MIN_DURATION = 1e-3


def _task_runtime(task: Mapping[str, Any]) -> float | None:
    for key in ("runtimeInSeconds", "runtime"):
        if task.get(key) is not None:
            return float(task[key])
    return None


def _normalize_tasks(
    workflow: Mapping[str, Any]
) -> list[dict[str, Any]]:
    """Extract ``(name, runtime, parents)`` rows from either schema."""
    specification = workflow.get("specification")
    if isinstance(specification, Mapping) and specification.get("tasks"):
        # Current WfFormat: structure and measurements live apart.
        runtimes: dict[str, float] = {}
        execution = workflow.get("execution")
        if isinstance(execution, Mapping):
            for task in execution.get("tasks", []):
                runtime = _task_runtime(task)
                if runtime is not None:
                    runtimes[str(task.get("id"))] = runtime
        rows = []
        for task in specification["tasks"]:
            identity = str(task.get("id", task.get("name")))
            rows.append({
                "name": identity,
                "runtime": runtimes.get(identity, _task_runtime(task)),
                "parents": [str(p) for p in task.get("parents", [])],
            })
        return rows
    tasks = workflow.get("tasks", workflow.get("jobs"))
    if not tasks:
        raise ValidationError(
            "WfCommons instance has no tasks (checked "
            "workflow.specification.tasks, workflow.tasks, workflow.jobs)"
        )
    return [
        {
            "name": str(task.get("name", task.get("id"))),
            "runtime": _task_runtime(task),
            "parents": [str(p) for p in task.get("parents", [])],
        }
        for task in tasks
    ]


def _levelize(rows: list[dict[str, Any]]) -> list[list[dict[str, Any]]]:
    """Group tasks by longest-path depth (level synchronization)."""
    by_name = {row["name"]: row for row in rows}
    levels: dict[str, int] = {}

    def level_of(name: str, trail: tuple[str, ...] = ()) -> int:
        if name in levels:
            return levels[name]
        if name in trail:
            raise ValidationError(
                f"WfCommons instance has a dependency cycle through "
                f"{name!r}"
            )
        row = by_name.get(name)
        if row is None:
            raise ValidationError(
                f"WfCommons instance references unknown parent {name!r}"
            )
        parents = row["parents"]
        value = (
            0 if not parents
            else 1 + max(level_of(p, trail + (name,)) for p in parents)
        )
        levels[name] = value
        return value

    # Iterative-friendly: resolve in input order (recursion depth is
    # bounded by the longest dependency chain).
    for row in rows:
        level_of(row["name"])
    depth = max(levels.values()) + 1
    grouped: list[list[dict[str, Any]]] = [[] for _ in range(depth)]
    for row in rows:
        grouped[levels[row["name"]]].append(row)
    return grouped


def _sanitize(name: str, used: set[str]) -> str:
    """A chart-safe, unique state name derived from a task identity."""
    cleaned = "".join(
        ch if ch.isalnum() or ch in "_-" else "_" for ch in name
    ) or "Task"
    candidate = cleaned
    suffix = 1
    while candidate in used:
        suffix += 1
        candidate = f"{cleaned}_{suffix}"
    used.add(candidate)
    return candidate


def wfcommons_to_spec(
    document: Mapping[str, Any],
    name: str | None = None,
    server_types=None,
    arrival_rate: float = 0.0,
    seconds_per_time_unit: float = 60.0,
):
    """Map one parsed WfCommons instance document to a ``WorkflowSpec``.

    ``seconds_per_time_unit`` converts task runtimes (seconds in
    WfCommons) to the model's time unit (minutes by default).  Returns a
    :class:`~repro.scenarios.spec.WorkflowSpec`.
    """
    from repro.scenarios.spec import (
        ArrivalSpec,
        WorkflowSpec,
        activity,
        parallel,
        region,
        routing,
        sequence,
    )
    from repro.workflows.common import (
        automated_activity,
        standard_server_types,
    )

    workflow = document.get("workflow")
    if not isinstance(workflow, Mapping):
        raise ValidationError(
            "not a WfCommons instance: missing 'workflow' object"
        )
    workflow_name = name if name is not None else str(
        document.get("name", workflow.get("name", "WfCommonsImport"))
    )
    rows = _normalize_tasks(workflow)
    grouped = _levelize(rows)

    used: set[str] = set()
    activities = []
    blocks = []
    for index, level in enumerate(grouped):
        states = []
        for row in level:
            state = _sanitize(row["name"], used)
            runtime = row["runtime"]
            duration = max(
                (runtime if runtime is not None else MIN_DURATION)
                / seconds_per_time_unit,
                MIN_DURATION,
            )
            activities.append(automated_activity(state, duration))
            states.append(state)
        if len(states) == 1:
            blocks.append(activity(states[0]))
        else:
            blocks.append(parallel(
                f"Level{index}_S",
                *(
                    region(f"{state}_SC", activity(state))
                    for state in states
                ),
            ))
    exit_state = _sanitize(f"{workflow_name}_EXIT_S", used)
    blocks.append(routing(exit_state, MIN_DURATION))
    return WorkflowSpec(
        name=workflow_name,
        body=sequence(*blocks),
        activities=tuple(activities),
        server_types=(
            server_types if server_types is not None
            else standard_server_types()
        ),
        arrival=ArrivalSpec(rate=arrival_rate),
    )


def load_wfcommons_instance(
    path: str | Path,
    name: str | None = None,
    server_types=None,
    arrival_rate: float = 0.0,
    seconds_per_time_unit: float = 60.0,
):
    """Read a WfCommons JSON instance file into a ``WorkflowSpec``."""
    try:
        document = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ValidationError(
            f"WfCommons instance not found: {path}"
        ) from None
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid JSON in {path}: {exc}") from exc
    return wfcommons_to_spec(
        document,
        name=name,
        server_types=server_types,
        arrival_rate=arrival_rate,
        seconds_per_time_unit=seconds_per_time_unit,
    )
