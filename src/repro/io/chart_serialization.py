"""JSON (de)serialization of state charts.

Complements :mod:`repro.io.serialization` (which handles the translated
model layer) with the *specification* layer: guards, actions, ECA rules,
transitions with probability annotations, and nested/orthogonal regions
all round-trip through JSON, so a workflow repository can be persisted
and exchanged.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ValidationError
from repro.spec.events import (
    Action,
    And,
    ECARule,
    Guard,
    Not,
    Or,
    RaiseEvent,
    SetCondition,
    StartActivity,
    TrueGuard,
    Var,
)
from repro.spec.statechart import ChartState, ChartTransition, StateChart


# ----------------------------------------------------------------------
# Guards
# ----------------------------------------------------------------------
def guard_to_dict(guard: Guard) -> dict[str, Any]:
    """Serialize a guard expression tree."""
    if isinstance(guard, TrueGuard):
        return {"type": "true"}
    if isinstance(guard, Var):
        return {"type": "var", "name": guard.name}
    if isinstance(guard, Not):
        return {"type": "not", "operand": guard_to_dict(guard.operand)}
    if isinstance(guard, And):
        return {
            "type": "and",
            "operands": [guard_to_dict(g) for g in guard.operands],
        }
    if isinstance(guard, Or):
        return {
            "type": "or",
            "operands": [guard_to_dict(g) for g in guard.operands],
        }
    raise ValidationError(
        f"cannot serialize guard type {type(guard).__name__}"
    )


def guard_from_dict(data: Mapping[str, Any]) -> Guard:
    """Deserialize a guard expression tree."""
    kind = data.get("type")
    if kind == "true":
        return TrueGuard()
    if kind == "var":
        return Var(data["name"])
    if kind == "not":
        return Not(guard_from_dict(data["operand"]))
    if kind == "and":
        return And(*(guard_from_dict(g) for g in data["operands"]))
    if kind == "or":
        return Or(*(guard_from_dict(g) for g in data["operands"]))
    raise ValidationError(f"unknown guard type {kind!r}")


# ----------------------------------------------------------------------
# Actions and rules
# ----------------------------------------------------------------------
def action_to_dict(action: Action) -> dict[str, Any]:
    """Serialize one action."""
    if isinstance(action, StartActivity):
        return {"type": "start_activity", "activity": action.activity_name}
    if isinstance(action, SetCondition):
        return {
            "type": "set_condition",
            "name": action.name,
            "value": action.value,
        }
    if isinstance(action, RaiseEvent):
        return {"type": "raise_event", "event": action.event_name}
    raise ValidationError(
        f"cannot serialize action type {type(action).__name__}"
    )


def action_from_dict(data: Mapping[str, Any]) -> Action:
    """Deserialize one action."""
    kind = data.get("type")
    if kind == "start_activity":
        return StartActivity(data["activity"])
    if kind == "set_condition":
        return SetCondition(data["name"], bool(data["value"]))
    if kind == "raise_event":
        return RaiseEvent(data["event"])
    raise ValidationError(f"unknown action type {kind!r}")


def rule_to_dict(rule: ECARule) -> dict[str, Any]:
    """Serialize an ECA rule."""
    return {
        "event": rule.event,
        "guard": guard_to_dict(rule.guard),
        "actions": [action_to_dict(action) for action in rule.actions],
    }


def rule_from_dict(data: Mapping[str, Any]) -> ECARule:
    """Deserialize an ECA rule."""
    return ECARule(
        event=data.get("event"),
        guard=guard_from_dict(data.get("guard", {"type": "true"})),
        actions=tuple(
            action_from_dict(action) for action in data.get("actions", [])
        ),
    )


# ----------------------------------------------------------------------
# States and charts
# ----------------------------------------------------------------------
def chart_state_to_dict(state: ChartState) -> dict[str, Any]:
    """Serialize one chart state (recursively for regions)."""
    result: dict[str, Any] = {"name": state.name}
    if state.activity is not None:
        result["activity"] = state.activity
    if state.entry_actions:
        result["entry_actions"] = [
            action_to_dict(action) for action in state.entry_actions
        ]
    if state.regions:
        result["regions"] = [
            chart_to_dict(region) for region in state.regions
        ]
    if state.mean_duration is not None:
        result["mean_duration"] = state.mean_duration
    return result


def chart_state_from_dict(data: Mapping[str, Any]) -> ChartState:
    """Deserialize one chart state."""
    return ChartState(
        name=data["name"],
        activity=data.get("activity"),
        entry_actions=tuple(
            action_from_dict(action)
            for action in data.get("entry_actions", [])
        ),
        regions=tuple(
            chart_from_dict(region) for region in data.get("regions", [])
        ),
        mean_duration=data.get("mean_duration"),
    )


def chart_to_dict(chart: StateChart) -> dict[str, Any]:
    """Serialize a state chart (with nested regions)."""
    return {
        "name": chart.name,
        "initial_state": chart.initial_state,
        "states": [
            chart_state_to_dict(state) for state in chart.states
        ],
        "transitions": [
            {
                "source": transition.source,
                "target": transition.target,
                "rule": rule_to_dict(transition.rule),
                "probability": transition.probability,
            }
            for transition in chart.transitions
        ],
    }


def chart_from_dict(data: Mapping[str, Any]) -> StateChart:
    """Deserialize a state chart; structure validated by the constructor."""
    for key in ("name", "initial_state", "states", "transitions"):
        if key not in data:
            raise ValidationError(f"chart record is missing key {key!r}")
    return StateChart(
        name=data["name"],
        states=tuple(
            chart_state_from_dict(state) for state in data["states"]
        ),
        transitions=tuple(
            ChartTransition(
                source=item["source"],
                target=item["target"],
                rule=rule_from_dict(item.get("rule", {})),
                probability=item.get("probability"),
            )
            for item in data["transitions"]
        ),
        initial_state=data["initial_state"],
    )


def save_chart(chart: StateChart, path: str | Path) -> None:
    """Write a chart as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(chart_to_dict(chart), indent=2, sort_keys=True) + "\n"
    )


def load_chart(path: str | Path) -> StateChart:
    """Read a chart from JSON."""
    try:
        data = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ValidationError(f"chart file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid JSON in {path}: {exc}") from exc
    return chart_from_dict(data)
