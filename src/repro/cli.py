"""Command-line interface to the configuration tool.

Operates on a *project file* (JSON: server types, workflow definitions,
arrival rates — see :mod:`repro.io`) and exposes the tool's evaluation
and recommendation functions:

.. code-block:: console

   $ python -m repro.cli init-demo study.json
   $ python -m repro.cli assess --project study.json \\
         --config comm-server=1,wf-engine=2,app-server=3
   $ python -m repro.cli recommend --project study.json \\
         --max-waiting 0.15 --max-unavailability 1e-5
   $ python -m repro.cli availability --project study.json \\
         --config comm-server=2,wf-engine=2,app-server=3

Exit status 0 on success, 1 when ``recommend`` finds no admissible
configuration satisfying the goals, 2 on usage/validation errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import obs
from repro.core.availability import AvailabilityModel
from repro.core.configuration import (
    ReplicationConstraints,
    branch_and_bound_configuration,
    exhaustive_configuration,
    greedy_configuration,
    simulated_annealing_configuration,
)
from repro.core.evaluation_cache import EvaluationCache
from repro.core.goals import GoalEvaluator, PerformabilityGoals
from repro.core.performance import PerformanceModel, SystemConfiguration
from repro.core.performability import PerformabilityModel
from repro.exceptions import (
    InfeasibleConfigurationError,
    ReproError,
    ValidationError,
)
from repro.io import Project, load_project, save_project
from repro.scenarios.generator import LANDSCAPES, SERVICE_TIME_FAMILIES

_SEARCHES = {
    "greedy": greedy_configuration,
    "exhaustive": exhaustive_configuration,
    "branch_and_bound": branch_and_bound_configuration,
    "simulated_annealing": simulated_annealing_configuration,
}


def _parse_configuration(text: str) -> SystemConfiguration:
    """Parse ``name=count,name=count`` into a configuration."""
    replicas: dict[str, int] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValidationError(
                f"bad --config entry {part!r}; expected name=count"
            )
        name, _, count = part.partition("=")
        try:
            replicas[name.strip()] = int(count)
        except ValueError:
            raise ValidationError(
                f"bad replica count in {part!r}"
            ) from None
    if not replicas:
        raise ValidationError("--config must name at least one server type")
    return SystemConfiguration(replicas)


def _performance_model(project: Project) -> PerformanceModel:
    return PerformanceModel(project.server_types, project.workload())


def _load_spec_file(path: str, default_rate: float):
    """Load one spec file: WorkflowSpec JSON or a WfCommons instance.

    The format is sniffed from the document: WfCommons instances carry a
    top-level ``workflow`` object, spec files a ``body`` block.  Specs
    without an arrival rate get ``default_rate``; specs without a server
    landscape get the standard three-type one.
    """
    import dataclasses
    import json

    from repro.io.wfcommons import wfcommons_to_spec
    from repro.scenarios.spec import ArrivalSpec, spec_from_dict

    try:
        document = json.loads(open(path).read())
    except FileNotFoundError:
        raise ValidationError(f"spec file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid JSON in {path}: {exc}") from exc
    if isinstance(document, dict) and "workflow" in document:
        spec = wfcommons_to_spec(document)
    else:
        spec = spec_from_dict(document)
    if spec.server_types is None:
        from repro.workflows.common import standard_server_types

        spec = dataclasses.replace(
            spec, server_types=standard_server_types()
        )
    if spec.arrival.rate <= 0.0 and default_rate > 0.0:
        spec = dataclasses.replace(
            spec, arrival=ArrivalSpec(rate=default_rate)
        )
    return spec


def _load_study(args: argparse.Namespace) -> Project:
    """Resolve ``--project`` / ``--spec`` into a project bundle."""
    specs = getattr(args, "spec", None)
    project_path = getattr(args, "project", None)
    if specs:
        if project_path:
            raise ValidationError(
                "--project and --spec are mutually exclusive"
            )
        from repro.scenarios import spec_to_project

        default_rate = getattr(args, "arrival_rate", 0.0) or 0.0
        return spec_to_project(
            _load_spec_file(path, default_rate) for path in specs
        )
    if not project_path:
        raise ValidationError("pass --project FILE or --spec FILE")
    return load_project(project_path)


def _goals_from_args(args: argparse.Namespace) -> PerformabilityGoals:
    return PerformabilityGoals(
        max_waiting_time=args.max_waiting,
        max_unavailability=args.max_unavailability,
    )


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_init_demo(args: argparse.Namespace) -> int:
    from repro.workflows import (
        ecommerce_workflow,
        order_processing_workflow,
        standard_server_types,
    )

    project = Project(
        server_types=standard_server_types(),
        workflows=(ecommerce_workflow(), order_processing_workflow()),
        arrival_rates={"EP": 0.4, "OrderProcessing": 0.2},
    )
    save_project(project, args.path)
    print(f"wrote demo project (EP + OrderProcessing) to {args.path}")
    return 0


def _cmd_assess(args: argparse.Namespace) -> int:
    project = load_project(args.project)
    configuration = _parse_configuration(args.config)
    performance = _performance_model(project)
    print(performance.assess(configuration).format_text())

    availability = AvailabilityModel(project.server_types, configuration)
    print(
        f"\nSystem unavailability: {availability.unavailability():.3e} "
        f"(~{availability.downtime_per_year('hours'):.2f} hours/year)"
    )
    performability = PerformabilityModel(performance, availability)
    print()
    print(performability.expected_waiting_times().format_text())
    return 0


def _cmd_availability(args: argparse.Namespace) -> int:
    project = load_project(args.project)
    configuration = _parse_configuration(args.config)
    model = AvailabilityModel(project.server_types, configuration)
    print(f"Configuration {configuration}")
    print(f"  system unavailability: {model.unavailability():.6e}")
    for unit in ("hours", "minutes", "seconds"):
        print(
            f"  downtime/year: {model.downtime_per_year(unit):12.4f} {unit}"
        )
    print("  per-type unavailability:")
    for name, value in model.per_type_unavailability().items():
        print(f"    {name:20s} {value:.6e}")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    import json

    project = _load_study(args)
    cache = EvaluationCache(enabled=not args.no_evaluation_cache)
    evaluator = GoalEvaluator(_performance_model(project), cache=cache)
    goals = _goals_from_args(args)
    constraints = ReplicationConstraints(
        fixed=dict(
            (name, int(count))
            for name, _, count in (
                entry.partition("=") for entry in args.fix or []
            )
        ),
        max_total_servers=args.max_total_servers,
    )
    if args.workers < 1:
        raise ValidationError("--workers must be >= 1")
    executor = None
    if args.workers > 1:
        from repro.core.search import ProcessPoolEvaluator

        executor = ProcessPoolEvaluator(workers=args.workers)
    try:
        if args.frontier:
            from repro.core.search import OBJECTIVES, frontier_search

            objectives = (
                tuple(args.objectives) if args.objectives else OBJECTIVES
            )
            result = frontier_search(
                evaluator,
                goals,
                constraints,
                objectives=objectives,
                seed=args.seed,
                executor=executor,
            )
            if args.json:
                print(json.dumps(result.to_document(), indent=2))
            else:
                print(result.format_text())
            return 0
        search = _SEARCHES[args.algorithm]
        recommendation = search(
            evaluator, goals, constraints, executor=executor
        )
    except InfeasibleConfigurationError as error:
        return _report_infeasible(error, json_output=args.json)
    finally:
        if executor is not None:
            executor.close()
    if args.json:
        print(json.dumps(recommendation.to_document(), indent=2))
    else:
        print(recommendation.format_text())
    return 0


def _report_infeasible(
    error: InfeasibleConfigurationError, json_output: bool
) -> int:
    """Report an exhausted search: exit status 1, violations included.

    Distinguishes "the search ran but no admissible configuration meets
    the goals" (exit 1, structured ``violations`` from the best
    configuration found) from usage/validation errors (exit 2).
    """
    import json

    best = error.best_found
    if json_output:
        document = {
            "satisfied": False,
            "error": str(error),
            "violations": (
                best.to_document()["violations"] if best is not None else []
            ),
            "best_found": (
                best.to_document() if best is not None else None
            ),
        }
        print(json.dumps(document, indent=2))
    else:
        print(f"error: {error}", file=sys.stderr)
        if best is not None:
            print(
                f"best configuration found: {best.configuration} "
                f"(cost {best.cost:g})",
                file=sys.stderr,
            )
            for violation in best.assessment.violations:
                print(f"  violated: {violation}", file=sys.stderr)
    return 1


def _cmd_breakdown(args: argparse.Namespace) -> int:
    project = load_project(args.project)
    model = _performance_model(project)
    breakdown = model.load_breakdown()
    totals = model.total_request_rates()
    print("Load breakdown per server type (share of request rate):")
    for i, name in enumerate(project.server_types.names):
        print(f"  {name} (total {totals[i]:.4f} requests/unit):")
        shares = breakdown[name]
        if not shares:
            print("    (no load)")
            continue
        for workflow, share in sorted(
            shares.items(), key=lambda item: -item[1]
        ):
            print(f"    {workflow:24s} {share:7.2%}")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    project = load_project(args.project)
    configuration = _parse_configuration(args.config)
    model = AvailabilityModel(project.server_types, configuration)
    print(f"Configuration {configuration}")
    print(
        f"  system unavailability: {model.unavailability():.6e}"
    )
    print("  unavailability reduction from one extra replica:")
    sensitivity = model.replication_sensitivity()
    for name, value in sorted(
        sensitivity.items(), key=lambda item: -item[1]
    ):
        print(f"    +1 {name:20s} -{value:.6e}")
    return 0


def _cmd_quantile(args: argparse.Namespace) -> int:
    project = load_project(args.project)
    from repro.core.workflow_model import build_workflow_ctmc

    probabilities = sorted(set(args.probability or [0.5, 0.9, 0.95]))
    for probability in probabilities:
        if not 0.0 < probability < 1.0:
            raise ValidationError(
                f"quantile probability {probability} must lie in (0, 1)"
            )
    print("Turnaround-time quantiles (transient first-passage analysis):")
    for workflow in project.workflows:
        model = build_workflow_ctmc(workflow, project.server_types)
        mean = model.turnaround_time()
        cells = "  ".join(
            f"P{int(p * 100):02d}={model.turnaround_quantile(p):.2f}"
            for p in probabilities
        )
        print(f"  {workflow.name:24s} mean={mean:9.2f}  {cells}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.spec.translator import definition_to_chart
    from repro.wfms.runtime import SimulatedWFMS, SimulatedWorkflowType

    project = _load_study(args)
    configuration = _parse_configuration(args.config)
    workflow_types = []
    for workflow in project.workflows:
        chart, activities = definition_to_chart(workflow)
        workflow_types.append(
            SimulatedWorkflowType(
                chart=chart,
                activities=activities,
                arrival_rate=project.arrival_rates.get(workflow.name, 0.0),
            )
        )
    wfms = SimulatedWFMS(
        server_types=project.server_types,
        configuration=configuration,
        workflow_types=workflow_types,
        seed=args.seed,
        inject_failures=not args.no_failures,
        rng_mode=args.rng_mode,
    )
    report = wfms.run(duration=args.duration, warmup=args.warmup)
    print(f"Simulated configuration {configuration}")
    print(report.format_text())
    print(
        f"  simulator events executed: {wfms.simulator.executed_events} "
        f"(calendar high-water mark: {wfms.simulator.max_pending_events})"
    )
    if args.rng_mode == "fast":
        print(
            f"  logical events (incl. vectorized requests): "
            f"{wfms.logical_events}"
        )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import json

    from repro.sim.campaign import (
        CampaignPlan,
        run_campaign,
        validate_against_models,
    )
    from repro.spec.translator import definition_to_chart
    from repro.wfms.runtime import SimulatedWorkflowType

    project = _load_study(args)
    configuration = _parse_configuration(args.config)
    workflow_types = []
    for workflow in project.workflows:
        chart, activities = definition_to_chart(workflow)
        workflow_types.append(
            SimulatedWorkflowType(
                chart=chart,
                activities=activities,
                arrival_rate=project.arrival_rates.get(workflow.name, 0.0),
            )
        )
    plan = CampaignPlan(
        server_types=project.server_types,
        configuration=configuration,
        workflow_types=tuple(workflow_types),
        duration=args.duration,
        warmup=args.warmup,
        replications=args.replications,
        base_seed=args.seed,
        inject_failures=not args.no_failures,
        rng_mode=args.rng_mode,
    )
    result = run_campaign(plan, workers=args.workers)
    performance = _performance_model(project)
    availability = None
    performability = None
    if plan.inject_failures:
        availability = AvailabilityModel(project.server_types, configuration)
        performability = PerformabilityModel(performance, availability)
    validation = validate_against_models(
        result,
        performance,
        availability=availability,
        performability=performability,
    )
    if args.json:
        print(
            json.dumps(
                {
                    "campaign": result.to_document(),
                    "validation": validation.to_document(),
                },
                indent=2,
            )
        )
    else:
        print(f"Campaign over configuration {configuration}")
        print(result.format_text())
        print()
        print(validation.format_text())
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    import json

    from repro.monitor.drift import DriftMonitor
    from repro.monitor.persistence import iter_trail_records
    from repro.monitor.stream import StreamingCalibrator

    calibrator = StreamingCalibrator(window=args.window)
    monitor = DriftMonitor(calibrator=calibrator)
    monitor.observe_all(iter_trail_records(args.trail))
    estimates = calibrator.document(args.observation_period)
    if args.json:
        print(
            json.dumps(
                {
                    "schema": "repro.monitor.replay/v1",
                    "trail": str(args.trail),
                    "estimates": estimates,
                    "drift": monitor.document(),
                },
                indent=2,
            )
        )
        return 0
    print(
        f"Replayed {calibrator.records_seen} audit records from "
        f"{args.trail} "
        f"(observation period {estimates['observation_period']:g})"
    )
    for name, entry in estimates["workflow_types"].items():
        print(f"  workflow {name}:")
        print(f"    completed instances: {entry['completed_instances']}")
        if entry["turnaround_time"] is not None:
            print(f"    mean turnaround:     {entry['turnaround_time']:.4f}")
        if entry["arrival_rate"] is not None:
            print(
                f"    arrival rate:        {entry['arrival_rate']:.6f} "
                f"(windowed {entry['windowed_arrival_rate']:.6f})"
            )
        for transition, probability in entry[
            "transition_probabilities"
        ].items():
            print(f"    P[{transition}] = {probability:.4f}")
    for name, entry in estimates["server_types"].items():
        print(
            f"  server {name}: mean service "
            f"{entry['mean_service_time']:.4f}, mean wait "
            f"{entry['mean_waiting_time']:.4f} "
            f"({entry['sample_count']} samples)"
        )
    print(monitor.format_text())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.service import (
        RecommendationService,
        SearchSettings,
        parse_goals,
    )

    baseline = _load_study(args)
    goals = parse_goals(args.goals)
    settings = SearchSettings(
        algorithm=args.algorithm,
        frontier=args.frontier,
        objectives=tuple(args.objectives or ()),
        seed=args.seed,
        max_total_servers=args.max_total_servers,
    )
    # The service serves /metrics itself, so instrumentation is always
    # on for `serve` (main() only enables it for explicit flags).
    obs.enable()
    service = RecommendationService(
        baseline,
        goals,
        settings,
        host=args.host,
        port=args.port,
        window=args.window,
        snapshot_path=args.snapshot,
    )
    restored = len(service.state.tenants)
    service.start()
    if restored:
        print(
            f"restored {restored} tenant(s) from {args.snapshot}",
            file=sys.stderr,
        )
    print(
        f"serving recommendations on {service.url}",
        file=sys.stderr,
    )
    stop = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:
        stop.set()

    previous = {
        signal.SIGINT: signal.signal(signal.SIGINT, _request_stop),
        signal.SIGTERM: signal.signal(signal.SIGTERM, _request_stop),
    }
    try:
        while not stop.is_set():
            stop.wait(0.5)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        service.stop()
        if args.snapshot is not None:
            print(f"wrote snapshot to {args.snapshot}", file=sys.stderr)
    return 0


def _corpus_specs(args: argparse.Namespace) -> list:
    """Resolve corpus describe/assess inputs into workflow specs.

    Accepts any mix of ``--spec`` files (WorkflowSpec JSON or WfCommons
    instances), ``--scenario`` registry names, and ``--generated N``
    seeded random specs.
    """
    from repro.scenarios import generate_corpus, scenario

    specs = [
        _load_spec_file(path, default_rate=0.0)
        for path in (args.spec or [])
    ]
    for name in args.scenario or []:
        specs.append(scenario(name).spec())
    if args.generated:
        specs.extend(generate_corpus(args.generated, master_seed=args.seed))
    if not specs:
        raise ValidationError(
            "pass --spec FILE, --scenario NAME, or --generated COUNT"
        )
    return specs


def _cmd_corpus_generate(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.scenarios import GeneratorConfig, generate_corpus, save_spec

    config = GeneratorConfig(
        max_depth=args.max_depth,
        service_time_family=args.family,
        landscape=args.landscape,
        name_prefix=args.prefix,
    )
    specs = generate_corpus(args.count, master_seed=args.seed, config=config)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    for spec in specs:
        save_spec(spec, out / f"{spec.name}.spec.json")
    print(
        f"wrote {len(specs)} specs (seed {args.seed}, family "
        f"{args.family}) to {out}"
    )
    return 0


def _cmd_corpus_describe(args: argparse.Namespace) -> int:
    from repro.scenarios import spec_to_chart

    specs = _corpus_specs(args)
    print(f"{'name':28s} {'states':>6s} {'depth':>5s} "
          f"{'activities':>10s} {'arrival':>8s}")
    for spec in specs:
        spec_to_chart(spec)  # validates the lowering
        print(
            f"{spec.name:28s} {spec.state_count():6d} "
            f"{spec.nesting_depth():5d} {len(spec.activities):10d} "
            f"{spec.arrival.rate:8.4f}"
        )
    return 0


def _cmd_corpus_assess(args: argparse.Namespace) -> int:
    from repro.scenarios import spec_to_ctmc

    specs = _corpus_specs(args)
    print("Analytic assessment (absorbing-CTMC translation):")
    for spec in specs:
        model = spec_to_ctmc(spec)
        requests = ", ".join(
            f"{name}={value:.2f}"
            for name, value in zip(
                model.server_types.names, model.requests_per_instance()
            )
        )
        print(
            f"  {spec.name:28s} turnaround {model.turnaround_time():10.3f}"
            f"  requests/instance: {requests}"
        )
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    project = load_project(args.project)
    configuration = _parse_configuration(args.config)
    model = _performance_model(project)
    report = model.max_sustainable_throughput(configuration)
    print(f"Configuration {configuration}")
    print(
        f"  max sustainable throughput: "
        f"{report.max_workflow_throughput:.6f} workflows/time-unit"
    )
    print(f"  bottleneck: {report.bottleneck}")
    print(f"  headroom over current load: x{report.headroom:.3f}")
    for name, capacity in report.request_capacity.items():
        print(f"    {name:20s} capacity {capacity:12.4f} requests/unit")
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_observability_arguments(
    subparser: argparse.ArgumentParser,
) -> None:
    """Attach the shared instrumentation flags to one subcommand."""
    group = subparser.add_argument_group("observability")
    group.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write solver/search/simulator metrics as JSON",
    )
    group.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the span/event trace as JSON lines",
    )
    group.add_argument(
        "--verbose", "-v", action="store_true",
        help="print an observability run report after the command",
    )
    group.add_argument(
        "--serve-metrics", type=int, default=None, metavar="PORT",
        help="serve /metrics (Prometheus text), /health, and /report "
        "on 127.0.0.1:PORT while the command runs (0 picks a free "
        "port; implies instrumentation)",
    )


def _add_profile_argument(subparser: argparse.ArgumentParser) -> None:
    """Attach the ``--profile`` flag to a simulation subcommand."""
    subparser.add_argument(
        "--profile", nargs="?", const="-", default=None, metavar="PATH",
        help="profile the run with cProfile; prints the hottest "
        "functions, or dumps pstats data to PATH when one is given",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Performance/availability/performability assessment and "
            "configuration of distributed WFMSs (Gillmann et al., EDBT "
            "2000)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    init_demo = commands.add_parser(
        "init-demo", help="write a demo project file (EP e-commerce mix)"
    )
    init_demo.add_argument("path", help="output JSON path")
    init_demo.set_defaults(handler=_cmd_init_demo)

    def add_project(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--project", required=True, help="project JSON file"
        )

    def add_study(subparser: argparse.ArgumentParser) -> None:
        """``--project`` or repeatable ``--spec`` (workflow-spec files)."""
        subparser.add_argument(
            "--project", default=None, help="project JSON file"
        )
        subparser.add_argument(
            "--spec", action="append", metavar="FILE",
            help="workflow-spec JSON (repro.scenarios.WorkflowSpec) or "
            "WfCommons instance; repeatable, alternative to --project",
        )
        subparser.add_argument(
            "--arrival-rate", type=float, default=0.0, metavar="RATE",
            help="arrival rate for --spec files that carry none "
            "(e.g. WfCommons imports)",
        )

    assess = commands.add_parser(
        "assess", help="full assessment of one configuration"
    )
    add_project(assess)
    assess.add_argument(
        "--config", required=True,
        help="replica counts, e.g. comm-server=1,wf-engine=2",
    )
    assess.set_defaults(handler=_cmd_assess)

    availability = commands.add_parser(
        "availability", help="availability analysis of one configuration"
    )
    add_project(availability)
    availability.add_argument("--config", required=True)
    availability.set_defaults(handler=_cmd_availability)

    throughput = commands.add_parser(
        "throughput", help="maximum sustainable throughput analysis"
    )
    add_project(throughput)
    throughput.add_argument("--config", required=True)
    throughput.set_defaults(handler=_cmd_throughput)

    breakdown = commands.add_parser(
        "breakdown", help="per-workflow share of each server type's load"
    )
    add_project(breakdown)
    breakdown.set_defaults(handler=_cmd_breakdown)

    sensitivity = commands.add_parser(
        "sensitivity",
        help="unavailability reduction per additional replica",
    )
    add_project(sensitivity)
    sensitivity.add_argument("--config", required=True)
    sensitivity.set_defaults(handler=_cmd_sensitivity)

    quantile = commands.add_parser(
        "quantile", help="turnaround-time quantiles per workflow type"
    )
    add_project(quantile)
    quantile.add_argument(
        "--probability", "-p", type=float, action="append",
        help="quantile level, repeatable (default: 0.5, 0.9, 0.95)",
    )
    quantile.set_defaults(handler=_cmd_quantile)

    recommend = commands.add_parser(
        "recommend", help="search a minimum-cost configuration for goals"
    )
    add_study(recommend)
    recommend.add_argument(
        "--max-waiting", type=float, default=None,
        help="waiting-time goal (performability metric)",
    )
    recommend.add_argument(
        "--max-unavailability", type=float, default=None,
        help="system unavailability goal",
    )
    recommend.add_argument(
        "--algorithm", choices=sorted(_SEARCHES), default="greedy",
    )
    recommend.add_argument(
        "--frontier", action="store_true",
        help="multi-objective mode: emit the whole Pareto frontier of "
        "goal-satisfying configurations (ranked trade-off table) "
        "instead of a single recommendation",
    )
    recommend.add_argument(
        "--objectives", action="append", metavar="AXIS",
        choices=[
            "cost", "max_waiting_time", "unavailability",
            "performability_waiting_time",
        ],
        help="frontier objective axis, repeatable "
        "(default: all four axes)",
    )
    recommend.add_argument(
        "--seed", type=int, default=0,
        help="random seed of the frontier shotgun/restart sampling "
        "(same seed => byte-identical frontier)",
    )
    recommend.add_argument(
        "--max-total-servers", type=int, default=32,
        help="search bound on the total number of servers",
    )
    recommend.add_argument(
        "--fix", action="append", metavar="NAME=COUNT",
        help="pin a server type's replica count (repeatable)",
    )
    recommend.add_argument(
        "--no-evaluation-cache", action="store_true",
        help="disable the shared evaluation cache (reference path; "
        "every candidate is assessed from scratch)",
    )
    recommend.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="evaluate candidate batches on N worker processes "
        "(results are bit-identical to the serial default)",
    )
    recommend.add_argument(
        "--json", action="store_true",
        help="print the recommendation (configuration, cost, "
        "violations, trace) as machine-readable JSON",
    )
    recommend.set_defaults(handler=_cmd_recommend)

    simulate = commands.add_parser(
        "simulate",
        help="run the simulated WFMS against a project's workload",
    )
    add_study(simulate)
    simulate.add_argument(
        "--config", required=True,
        help="replica counts, e.g. comm-server=1,wf-engine=2",
    )
    simulate.add_argument(
        "--duration", type=float, default=10_000.0,
        help="measured simulation time after the warm-up window",
    )
    simulate.add_argument(
        "--warmup", type=float, default=0.0,
        help="warm-up time excluded from the measurements",
    )
    simulate.add_argument(
        "--seed", type=int, default=0, help="random seed"
    )
    simulate.add_argument(
        "--no-failures", action="store_true",
        help="disable failure injection (failure-free run)",
    )
    simulate.add_argument(
        "--rng-mode", choices=("exact", "fast"), default="exact",
        help="random-number mode: 'exact' keeps the bit-identical "
        "random.Random streams, 'fast' pre-draws variates in numpy "
        "blocks (statistically equivalent, much faster)",
    )
    _add_profile_argument(simulate)
    simulate.set_defaults(handler=_cmd_simulate)

    campaign = commands.add_parser(
        "campaign",
        help="replicated simulation campaign with confidence intervals "
        "and analytic-model validation verdicts",
    )
    add_study(campaign)
    campaign.add_argument(
        "--config", required=True,
        help="replica counts, e.g. comm-server=1,wf-engine=2",
    )
    campaign.add_argument(
        "--duration", type=float, default=2_000.0,
        help="measured time per replication after its warm-up window",
    )
    campaign.add_argument(
        "--warmup", type=float, default=0.0,
        help="warm-up time excluded from each replication's measurements",
    )
    campaign.add_argument(
        "--replications", "-n", type=int, default=10,
        help="number of independent replications",
    )
    campaign.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run replications on N worker processes (the aggregate "
        "document is byte-identical to the serial run)",
    )
    campaign.add_argument(
        "--seed", type=int, default=0,
        help="base seed; per-replication seeds are derived from it",
    )
    campaign.add_argument(
        "--no-failures", action="store_true",
        help="disable failure injection (validates against the "
        "failure-free M/G/1 waiting times instead of performability)",
    )
    campaign.add_argument(
        "--rng-mode", choices=("exact", "fast"), default="exact",
        help="random-number mode per replication: 'exact' keeps the "
        "bit-identical random.Random streams, 'fast' pre-draws "
        "variates in numpy blocks (statistically equivalent, much "
        "faster; the aggregate stays byte-identical across worker "
        "counts in both modes)",
    )
    campaign.add_argument(
        "--json", action="store_true",
        help="print the campaign aggregate and validation verdicts as "
        "machine-readable JSON",
    )
    _add_profile_argument(campaign)
    campaign.set_defaults(handler=_cmd_campaign)

    monitor = commands.add_parser(
        "monitor",
        help="replay an audit-trail JSONL through the streaming "
        "calibrator and drift detectors",
    )
    monitor.add_argument(
        "--trail", required=True, metavar="PATH",
        help="audit-trail JSONL file "
        "(written by repro.monitor.persistence.save_trail)",
    )
    monitor.add_argument(
        "--window", type=float, default=1_000.0,
        help="sliding window (simulation time units) of the windowed "
        "arrival-rate estimator",
    )
    monitor.add_argument(
        "--observation-period", type=float, default=None,
        help="period for cumulative arrival rates "
        "(default: the observed time span)",
    )
    monitor.add_argument(
        "--json", action="store_true",
        help="print the streaming estimates and drift verdicts as "
        "machine-readable JSON",
    )
    monitor.set_defaults(handler=_cmd_monitor)

    serve = commands.add_parser(
        "serve",
        help="run the always-on recommendation service (ingests audit "
        "events over HTTP, re-searches on drift, serves the current "
        "recommendation)",
    )
    add_study(serve)
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port to bind (default: 0 = ephemeral; the announced "
        "URL is printed to stderr)",
    )
    serve.add_argument(
        "--goals", required=True, metavar="SPEC",
        help="goal thresholds as key=value pairs, e.g. "
        "max-waiting=0.5,max-unavailability=1e-4",
    )
    serve.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="snapshot file: restored on startup when present, "
        "written on graceful shutdown (warm restart)",
    )
    serve.add_argument(
        "--window", type=float, default=1_000.0,
        help="sliding window (simulation time units) of the windowed "
        "arrival-rate estimator",
    )
    serve.add_argument(
        "--algorithm", choices=sorted(_SEARCHES), default="greedy",
        help="point-search algorithm for each re-search",
    )
    serve.add_argument(
        "--frontier", action="store_true",
        help="multi-objective mode: each re-search emits the whole "
        "Pareto frontier instead of a single recommendation",
    )
    serve.add_argument(
        "--objectives", action="append", metavar="AXIS",
        choices=[
            "cost", "max_waiting_time", "unavailability",
            "performability_waiting_time",
        ],
        help="frontier objective axis, repeatable "
        "(default: all four axes)",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="random seed of the frontier shotgun/restart sampling",
    )
    serve.add_argument(
        "--max-total-servers", type=int, default=32,
        help="search bound on the total number of servers",
    )
    serve.set_defaults(handler=_cmd_serve)

    corpus = commands.add_parser(
        "corpus",
        help="generate, describe, or assess workflow-spec corpora",
    )
    corpus_commands = corpus.add_subparsers(
        dest="corpus_command", required=True
    )

    corpus_generate = corpus_commands.add_parser(
        "generate", help="write a seeded random spec corpus to a directory"
    )
    corpus_generate.add_argument(
        "--count", type=int, default=10, help="number of specs to generate"
    )
    corpus_generate.add_argument(
        "--seed", type=int, default=0, help="master seed of the corpus"
    )
    corpus_generate.add_argument(
        "--out", required=True, metavar="DIR",
        help="output directory for <name>.spec.json files",
    )
    corpus_generate.add_argument(
        "--prefix", default="Gen", help="workflow name prefix"
    )
    corpus_generate.add_argument(
        "--max-depth", type=int, default=2,
        help="maximum nesting depth of generated structure blocks",
    )
    corpus_generate.add_argument(
        "--family", choices=sorted(SERVICE_TIME_FAMILIES),
        default="exponential",
        help="service-time distribution family of activity durations",
    )
    corpus_generate.add_argument(
        "--landscape", choices=sorted(LANDSCAPES), default="standard",
        help="server landscape the specs are assessed on",
    )
    corpus_generate.set_defaults(handler=_cmd_corpus_generate)

    def add_corpus_inputs(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--spec", action="append", metavar="FILE",
            help="workflow-spec JSON or WfCommons instance (repeatable)",
        )
        subparser.add_argument(
            "--scenario", action="append", metavar="NAME",
            help="bundled scenario name, e.g. ecommerce (repeatable)",
        )
        subparser.add_argument(
            "--generated", type=int, default=0, metavar="N",
            help="include N seeded random specs",
        )
        subparser.add_argument(
            "--seed", type=int, default=0,
            help="master seed of the --generated specs",
        )

    corpus_describe = corpus_commands.add_parser(
        "describe",
        help="table of structural properties (validates the lowering)",
    )
    add_corpus_inputs(corpus_describe)
    corpus_describe.set_defaults(handler=_cmd_corpus_describe)

    corpus_assess = corpus_commands.add_parser(
        "assess",
        help="analytic turnaround and requests/instance per spec",
    )
    add_corpus_inputs(corpus_assess)
    corpus_assess.set_defaults(handler=_cmd_corpus_assess)

    for subcommand in commands.choices.values():
        _add_observability_arguments(subcommand)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    serve_port = getattr(args, "serve_metrics", None)
    observing = bool(
        getattr(args, "metrics_out", None)
        or getattr(args, "trace_out", None)
        or getattr(args, "verbose", False)
        or serve_port is not None
    )
    server = None
    if observing:
        obs.reset()
        obs.enable()
    try:
        if serve_port is not None:
            from repro.obs.server import MetricsServer

            server = MetricsServer(port=serve_port)
            server.start()
            print(f"serving metrics on {server.url}", file=sys.stderr)
        status = _run_handler(args)
        if observing:
            _emit_observability(args)
        return status
    except BrokenPipeError:
        # A downstream pager/`head` closed the pipe; not an error.
        try:
            sys.stdout.close()
        except OSError:  # pragma: no cover - depends on the consumer
            pass
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        # Unwritable --metrics-out/--trace-out paths and the like.
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if server is not None:
            server.stop()
        if observing:
            obs.disable()


def _run_handler(args: argparse.Namespace) -> int:
    """Dispatch to the subcommand handler, optionally under cProfile."""
    target = getattr(args, "profile", None)
    if not target:
        return args.handler(args)
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    status = profiler.runcall(args.handler, args)
    if target == "-":
        print()
        print("Profile (top 15 functions by internal time):")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("tottime").print_stats(15)
    else:
        profiler.dump_stats(target)
        print(f"wrote profile to {target}")
    return status


def _emit_observability(args: argparse.Namespace) -> None:
    """Write the requested metric/trace outputs after a successful run."""
    if args.verbose:
        print()
        print(obs.run_report())
    if args.metrics_out:
        obs.write_metrics_json(args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}")
    if args.trace_out:
        records = obs.write_trace_jsonl(args.trace_out)
        print(f"wrote {records} trace records to {args.trace_out}")


if __name__ == "__main__":
    sys.exit(main())
