"""Seeded, recipe-style random workflow-spec generation.

In the spirit of WfCommons' synthetic workflow recipes, this module
grows :class:`~repro.scenarios.spec.WorkflowSpec` trees from a seeded
:class:`random.Random` so that corpus-scale campaigns (hundreds of
workflow types with deep nesting, wide fan-out, and heavy-tailed
activity times) are reproducible bit-for-bit: the same
``(master_seed, index, config)`` always yields the same spec, across
processes and platforms (seeds derive via
:func:`repro.sim.seeding.derive_seed`, which is hash-randomization
free).

The knobs live in :class:`GeneratorConfig`: structural depth, sequence
lengths, branch/loop/parallel frequencies, fan-out, and the service-time
family (``exponential``, ``lognormal``, or the heavy-tailed
``pareto``).  Generated specs always pass chart validation: branch
probabilities are normalized exactly, every workflow ends in a dedicated
final routing state, and loops keep their repeat probability away
from 1.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.model_types import ActivitySpec, ServerTypeIndex
from repro.exceptions import ValidationError
from repro.scenarios.spec import (
    Arm,
    ArrivalSpec,
    Block,
    RegionSpec,
    WorkflowSpec,
    activity,
    arm,
    branch,
    loop,
    parallel,
    region,
    routing,
    sequence,
    subworkflow,
)
from repro.sim.seeding import derive_seed

#: Service-time families the generator can draw activity durations from.
SERVICE_TIME_FAMILIES = ("exponential", "lognormal", "pareto")

#: Landscape choices (resolved via :mod:`repro.workflows.common`).
LANDSCAPES = ("standard", "extended")


@dataclass(frozen=True)
class GeneratorConfig:
    """Structural and stochastic knobs of the spec generator.

    Parameters
    ----------
    max_depth:
        Maximum nesting depth of composite/branch/loop structures.
    min_length / max_length:
        Length range of the top-level (and nested) sequences, in
        structure blocks.
    branch_probability / loop_probability / parallel_probability /
    subworkflow_probability:
        Per-slot chance of growing the respective structure instead of a
        plain activity (the remainder yields activity leaves).
    max_fan_out:
        Maximum branch arms and parallel regions per structure.
    max_loop_repeat:
        Upper bound on a loop's repeat probability (< 1 keeps the CTMC
        absorbing).
    service_time_family:
        ``exponential``, ``lognormal``, or heavy-tailed ``pareto``.
    heavy_tail_alpha:
        Pareto shape (smaller = heavier tail; > 1 keeps the mean finite).
    mean_service_scale:
        Scale of the drawn activity durations (minutes).
    interactive_probability:
        Chance that an activity is interactive (no application-server
        load, as in the bundled examples).
    min_arrival_rate / max_arrival_rate:
        Range of the spec's Poisson arrival rate.
    landscape:
        ``standard`` (three server types) or ``extended`` (five).
    name_prefix:
        Prefix of generated workflow names (``<prefix><index>``).
    """

    max_depth: int = 2
    min_length: int = 2
    max_length: int = 6
    branch_probability: float = 0.25
    loop_probability: float = 0.15
    parallel_probability: float = 0.15
    subworkflow_probability: float = 0.05
    max_fan_out: int = 3
    max_loop_repeat: float = 0.7
    service_time_family: str = "exponential"
    heavy_tail_alpha: float = 1.5
    mean_service_scale: float = 10.0
    interactive_probability: float = 0.35
    min_arrival_rate: float = 0.01
    max_arrival_rate: float = 0.5
    landscape: str = "standard"
    name_prefix: str = "Gen"

    def __post_init__(self) -> None:
        if self.service_time_family not in SERVICE_TIME_FAMILIES:
            raise ValidationError(
                f"unknown service-time family "
                f"{self.service_time_family!r}; choose from "
                f"{SERVICE_TIME_FAMILIES}"
            )
        if self.landscape not in LANDSCAPES:
            raise ValidationError(
                f"unknown landscape {self.landscape!r}; choose from "
                f"{LANDSCAPES}"
            )
        if self.max_depth < 0:
            raise ValidationError("max_depth must be >= 0")
        if not 1 <= self.min_length <= self.max_length:
            raise ValidationError("need 1 <= min_length <= max_length")
        if self.max_fan_out < 2:
            raise ValidationError("max_fan_out must be at least 2")
        if not 0.0 < self.max_loop_repeat < 1.0:
            raise ValidationError("max_loop_repeat must lie in (0, 1)")
        if self.heavy_tail_alpha <= 1.0:
            raise ValidationError(
                "heavy_tail_alpha must exceed 1 (finite mean)"
            )


class _Growth:
    """One generation run: a seeded RNG plus fresh-name counters."""

    def __init__(self, rng: random.Random, config: GeneratorConfig) -> None:
        self.rng = rng
        self.config = config
        self.activities: list[ActivitySpec] = []
        self._counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Names and activities
    # ------------------------------------------------------------------
    def fresh(self, kind: str) -> str:
        """A fresh name of the given kind (``Act3``, ``Par1_S``, ...)."""
        index = self._counters.get(kind, 0) + 1
        self._counters[kind] = index
        return f"{kind}{index}"

    def _draw_duration(self) -> float:
        config = self.config
        family = config.service_time_family
        if family == "exponential":
            value = self.rng.expovariate(1.0 / config.mean_service_scale)
        elif family == "lognormal":
            # mu chosen so that the median equals the configured scale.
            value = self.rng.lognormvariate(
                math.log(config.mean_service_scale), 1.0
            )
        else:  # pareto
            value = (
                config.mean_service_scale
                * (self.rng.paretovariate(config.heavy_tail_alpha) - 1.0)
            )
        return max(round(value, 4), 0.01)

    def new_activity(self) -> Block:
        """Draw a fresh activity leaf and register its spec."""
        from repro.workflows.common import (
            automated_activity,
            interactive_activity,
        )

        name = self.fresh("Act")
        duration = self._draw_duration()
        interactive = (
            self.rng.random() < self.config.interactive_probability
        )
        maker = interactive_activity if interactive else automated_activity
        self.activities.append(maker(name, duration))
        return activity(name)

    # ------------------------------------------------------------------
    # Structure growth
    # ------------------------------------------------------------------
    def grow_sequence(self, depth: int) -> Block:
        """A sequence of grown slots, starting with a plain leaf."""
        config = self.config
        length = self.rng.randint(config.min_length, config.max_length)
        blocks: list[Block] = [self.new_activity()]
        for _ in range(length - 1):
            blocks.extend(self.grow_slot(depth))
        return sequence(*blocks)

    def grow_slot(self, depth: int) -> list[Block]:
        """One sequence slot: an activity or a nested structure."""
        config = self.config
        roll = self.rng.random()
        if depth >= config.max_depth:
            return [self.new_activity()]
        threshold = config.branch_probability
        if roll < threshold:
            return self.grow_branch(depth)
        threshold += config.loop_probability
        if roll < threshold:
            return [self.grow_loop(depth)]
        threshold += config.parallel_probability
        if roll < threshold:
            return [self.grow_parallel(depth)]
        threshold += config.subworkflow_probability
        if roll < threshold:
            return [self.grow_subworkflow(depth)]
        return [self.new_activity()]

    def grow_branch(self, depth: int) -> list[Block]:
        """A leaf followed by probabilistic alternatives that re-join."""
        fan_out = self.rng.randint(2, self.config.max_fan_out)
        probabilities = self._probabilities(fan_out)
        arms: list[Arm] = []
        for probability in probabilities:
            # Arms may be empty (skip straight to the join) or hold a
            # short grown sequence.
            if self.rng.random() < 0.25:
                arms.append(arm(probability=probability))
            else:
                arms.append(arm(
                    self.grow_sequence(depth + 1),
                    probability=probability,
                ))
        return [self.new_activity(), branch(*arms)]

    def grow_loop(self, depth: int) -> Block:
        """A repeating body with an optional loop-section activity."""
        repeat = self.rng.uniform(0.05, self.config.max_loop_repeat)
        section = (
            self.new_activity() if self.rng.random() < 0.5 else None
        )
        return loop(
            self.new_activity(),
            arm(section, probability=repeat, next="loop"),
            arm(probability=1.0 - repeat),
        )

    def grow_parallel(self, depth: int) -> Block:
        """A composite state with parallel regions."""
        fan_out = self.rng.randint(2, self.config.max_fan_out)
        state = self.fresh("Par") + "_S"
        return parallel(
            state,
            *(self.grow_region(depth) for _ in range(fan_out)),
        )

    def grow_subworkflow(self, depth: int) -> Block:
        """A composite state nesting a single subworkflow region."""
        return subworkflow(
            self.fresh("Sub") + "_S", self.grow_region(depth)
        )

    def grow_region(self, depth: int) -> RegionSpec:
        """One region: a nested sequence one level deeper.

        A fresh terminal activity is appended so the region chart always
        has a unique final state even when the grown sequence ends in a
        branch or loop.
        """
        grown = self.grow_sequence(depth + 1)
        return region(
            self.fresh("Region") + "_SC",
            sequence(*grown.blocks, self.new_activity()),
        )

    def _probabilities(self, fan_out: int) -> list[float]:
        weights = [self.rng.random() + 0.1 for _ in range(fan_out)]
        total = sum(weights)
        probabilities = [weight / total for weight in weights[:-1]]
        # The last arm takes the exact remainder so the distribution sums
        # to 1.0 in floating point (chart validation checks 1e-9).
        probabilities.append(1.0 - sum(probabilities))
        return probabilities


def generate_spec(
    master_seed: int,
    index: int = 0,
    config: GeneratorConfig | None = None,
    name: str | None = None,
    server_types: ServerTypeIndex | None = None,
) -> WorkflowSpec:
    """Generate one deterministic random spec.

    The RNG seed derives from ``(master_seed, "scenario-spec", index)``
    via SHA-256, so the result is identical across processes, platforms,
    and hash-randomization settings.
    """
    config = config if config is not None else GeneratorConfig()
    rng = random.Random(derive_seed(master_seed, "scenario-spec", index))
    growth = _Growth(rng, config)
    body_blocks = [growth.grow_sequence(0)]
    exit_state = f"{config.name_prefix}{index}_EXIT_S"
    body = sequence(*body_blocks, routing(exit_state, 0.1))
    arrival = ArrivalSpec(rate=round(
        rng.uniform(config.min_arrival_rate, config.max_arrival_rate), 6
    ))
    if server_types is None:
        from repro.workflows.common import (
            extended_server_types,
            standard_server_types,
        )

        server_types = (
            extended_server_types()
            if config.landscape == "extended"
            else standard_server_types()
        )
    return WorkflowSpec(
        name=name if name is not None else f"{config.name_prefix}{index}",
        body=body,
        activities=tuple(growth.activities),
        server_types=server_types,
        arrival=arrival,
    )


def generate_corpus(
    count: int,
    master_seed: int = 0,
    config: GeneratorConfig | None = None,
) -> tuple[WorkflowSpec, ...]:
    """Generate a deterministic corpus of ``count`` specs.

    Spec ``i`` depends only on ``(master_seed, i, config)`` — generating
    a larger corpus with the same master seed extends a smaller one
    without changing its existing members.
    """
    if count < 1:
        raise ValidationError("corpus size must be at least 1")
    return tuple(
        generate_spec(master_seed, index, config) for index in range(count)
    )
