"""Named scenario registry with golden analytic results.

Maps scenario names to the bundled example
:class:`~repro.scenarios.spec.WorkflowSpec` factories, together with
*golden* analytic results (expected turnaround time and expected server
requests per instance, computed from the absorbing-CTMC translation on
the scenario's own landscape).  The goldens pin the whole lowering
pipeline: ``tests/scenarios/test_registry.py`` recomputes them from
scratch and asserts exact equality, so any drift in the IR, the
lowering, or the CTMC translation is caught immediately.

The example factories live in :mod:`repro.workflows`, which itself
builds on the scenarios package; imports are deferred to call time to
keep the dependency one-way at import time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ValidationError
from repro.scenarios.adapters import spec_to_ctmc
from repro.scenarios.spec import WorkflowSpec


@dataclass(frozen=True)
class ScenarioEntry:
    """One named scenario: spec factory plus golden analytic results."""

    name: str
    description: str
    factory: Callable[[], WorkflowSpec]
    golden_turnaround: float
    golden_requests: tuple[float, ...]

    def spec(self) -> WorkflowSpec:
        """Build the scenario's workflow spec."""
        return self.factory()

    def analytic_results(self) -> tuple[float, tuple[float, ...]]:
        """Recompute (turnaround, per-type requests) from the spec."""
        model = spec_to_ctmc(self.spec())
        return (
            model.turnaround_time(),
            tuple(model.requests_per_instance()),
        )


def bundled_scenarios() -> tuple[ScenarioEntry, ...]:
    """The five bundled example scenarios, with golden results."""
    from repro.workflows.ecommerce import ecommerce_spec
    from repro.workflows.insurance import insurance_spec
    from repro.workflows.loan import loan_spec
    from repro.workflows.order_processing import order_processing_spec
    from repro.workflows.travel import travel_spec

    return (
        ScenarioEntry(
            name="ecommerce",
            description=(
                "The paper's electronic purchase (EP) workflow: parallel "
                "notify/delivery subworkflows and an invoice reminder loop"
            ),
            factory=ecommerce_spec,
            golden_turnaround=81.36571428571429,
            golden_requests=(
                15.541714285714287,
                23.31257142857143,
                15.778285714285715,
            ),
        ),
        ScenarioEntry(
            name="order_processing",
            description=(
                "Flat TPC-C-flavoured order pipeline with a rejection "
                "branch and payment retries"
            ),
            factory=order_processing_spec,
            golden_turnaround=29.56111111111111,
            golden_requests=(
                11.7,
                17.549999999999997,
                11.7,
            ),
        ),
        ScenarioEntry(
            name="insurance",
            description=(
                "Long-running claim handling with a documents loop and a "
                "parallel assessment phase"
            ),
            factory=insurance_spec,
            golden_turnaround=283.26666666666665,
            golden_requests=(17.333333333333332, 26.0, 13.0),
        ),
        ScenarioEntry(
            name="loan",
            description=(
                "Loan approval spread over the extended five-type server "
                "landscape with an escalation loop"
            ),
            factory=loan_spec,
            golden_turnaround=171.96666666666664,
            golden_requests=(
                16.266666666666666,
                18.4,
                8.2,
                6.0,
                3.0,
            ),
        ),
        ScenarioEntry(
            name="travel",
            description=(
                "Cross-organization travel booking: three parallel "
                "bookings with a cancellation branch"
            ),
            factory=travel_spec,
            golden_turnaround=60.79999999999999,
            golden_requests=(18.3, 27.450000000000003, 21.0),
        ),
    )


def scenario_names() -> tuple[str, ...]:
    """Names of all registered scenarios."""
    return tuple(entry.name for entry in bundled_scenarios())


def scenario(name: str) -> ScenarioEntry:
    """Look up one scenario by name (raises on unknown names)."""
    for entry in bundled_scenarios():
        if entry.name == name:
            return entry
    raise ValidationError(
        f"unknown scenario {name!r}; registered: {list(scenario_names())}"
    )
