"""Scenario corpus: the WorkflowSpec IR, adapters, generator, registry.

The scenarios package turns "add a workflow" from a code change into a
data file.  A :class:`~repro.scenarios.spec.WorkflowSpec` declares a
workflow's structure (sequence/branch/loop/parallel/subworkflow blocks),
its activities, server landscape, and arrival process, and serializes to
plain JSON; :mod:`repro.scenarios.adapters` lowers it deterministically
to the repo's existing artifacts (state chart, CTMC, simulator inputs,
CLI project).  :mod:`repro.scenarios.generator` produces seeded random
specs for corpus-scale campaigns and
:mod:`repro.scenarios.registry` names the bundled scenarios with golden
analytic results.
"""

from repro.scenarios.adapters import (
    region_to_chart,
    spec_to_chart,
    spec_to_ctmc,
    spec_to_definition,
    spec_to_project,
    spec_to_registry,
    spec_to_simulated_type,
)
from repro.scenarios.generator import GeneratorConfig, generate_corpus, generate_spec
from repro.scenarios.registry import (
    ScenarioEntry,
    bundled_scenarios,
    scenario,
    scenario_names,
)
from repro.scenarios.spec import (
    SPEC_SCHEMA,
    ActivityBlock,
    Arm,
    ArrivalSpec,
    Block,
    BranchBlock,
    CompositeBlock,
    LoopBlock,
    RegionSpec,
    RoutingBlock,
    SequenceBlock,
    WorkflowSpec,
    activity,
    arm,
    block_from_dict,
    block_to_dict,
    branch,
    load_spec,
    loop,
    parallel,
    region,
    routing,
    save_spec,
    sequence,
    spec_from_dict,
    spec_to_dict,
    spec_to_json,
    subworkflow,
)

__all__ = [
    "SPEC_SCHEMA",
    "ActivityBlock",
    "Arm",
    "ArrivalSpec",
    "Block",
    "BranchBlock",
    "CompositeBlock",
    "GeneratorConfig",
    "LoopBlock",
    "RegionSpec",
    "RoutingBlock",
    "ScenarioEntry",
    "SequenceBlock",
    "WorkflowSpec",
    "activity",
    "arm",
    "block_from_dict",
    "block_to_dict",
    "branch",
    "bundled_scenarios",
    "generate_corpus",
    "generate_spec",
    "load_spec",
    "loop",
    "parallel",
    "region",
    "region_to_chart",
    "routing",
    "save_spec",
    "scenario",
    "scenario_names",
    "sequence",
    "spec_from_dict",
    "spec_to_chart",
    "spec_to_ctmc",
    "spec_to_definition",
    "spec_to_dict",
    "spec_to_json",
    "spec_to_project",
    "spec_to_registry",
    "spec_to_simulated_type",
    "subworkflow",
]
