"""The declarative, JSON-serializable workflow-spec IR.

A :class:`WorkflowSpec` is the single intermediate representation every
scenario in the corpus is expressed in: a tree of *structure blocks*
(sequence, branch, loop, parallel, subworkflow) over activity and routing
leaves, together with the activity catalogue, the server landscape, and
the arrival process.  Adapters in :mod:`repro.scenarios.adapters` lower a
spec to today's artifacts — state chart, workflow definition/CTMC,
simulation runtime inputs — so a new scenario is a data file, not code.

Structure blocks
----------------

* :class:`ActivityBlock` — a leaf state that runs an activity;
* :class:`RoutingBlock` — a leaf state without load (pure control flow);
* :class:`SequenceBlock` — blocks executed one after another;
* :class:`BranchBlock` — probabilistic/guarded alternatives
  (:class:`Arm`\\ s) that re-join afterwards, jump back to the innermost
  loop, or jump to the workflow's final state;
* :class:`LoopBlock` — a body plus arms, where ``next="loop"`` arms
  return to the body (optionally through a section block) and the other
  arms exit;
* :class:`CompositeBlock` — a state hosting nested region charts: one
  region is a *subworkflow*, several regions run *in parallel*.

Everything round-trips through plain JSON (:func:`spec_to_dict` /
:func:`spec_from_dict`), guard expressions included, and all
``*_from_dict`` paths validate through the model constructors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.core.model_types import ActivitySpec, ServerTypeIndex
from repro.exceptions import ValidationError
from repro.io.chart_serialization import guard_from_dict, guard_to_dict
from repro.io.serialization import (
    activity_from_dict,
    activity_to_dict,
    server_types_from_list,
    server_types_to_list,
)
from repro.spec.events import Guard

#: Schema tag embedded in every serialized spec document.
SPEC_SCHEMA = "repro.scenarios.workflow_spec/v1"

#: Valid continuations of a branch/loop arm.
ARM_NEXT = ("join", "loop", "final")


class Block:
    """Base class of all structure blocks (marker only)."""


@dataclass(frozen=True)
class ActivityBlock(Block):
    """A leaf state that starts an activity upon entry.

    ``activity`` defaults to the state name, matching the paper's
    examples where states and their activities share names.
    """

    state: str
    activity: str | None = None

    def __post_init__(self) -> None:
        if not self.state:
            raise ValidationError("activity block needs a state name")


@dataclass(frozen=True)
class RoutingBlock(Block):
    """A leaf state without load (control flow / bookkeeping only)."""

    state: str
    mean_duration: float | None = None

    def __post_init__(self) -> None:
        if not self.state:
            raise ValidationError("routing block needs a state name")
        if self.mean_duration is not None and self.mean_duration <= 0.0:
            raise ValidationError(
                f"routing block {self.state}: mean_duration must be positive"
            )


@dataclass(frozen=True)
class SequenceBlock(Block):
    """Blocks executed one after another."""

    blocks: tuple[Block, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "blocks", tuple(self.blocks))
        if not self.blocks:
            raise ValidationError("sequence block needs at least one block")
        if isinstance(self.blocks[0], BranchBlock):
            raise ValidationError(
                "a branch cannot start a sequence: it needs a preceding "
                "state to branch from"
            )


@dataclass(frozen=True)
class Arm(Block):
    """One alternative of a branch or loop.

    Parameters
    ----------
    block:
        Optional block executed when this arm is taken; an empty arm
        routes straight to its continuation.
    guard:
        Optional guard condition annotating the arm's transitions.
    probability:
        Branching probability annotation (designer estimate or
        calibrated); required whenever a state has several alternatives.
    next:
        Where the arm continues: ``"join"`` re-joins the surrounding
        sequence, ``"loop"`` returns to the innermost loop's body entry,
        ``"final"`` jumps to the workflow's final state.
    """

    block: Block | None = None
    guard: Guard | None = None
    probability: float | None = None
    next: str = "join"

    def __post_init__(self) -> None:
        if self.next not in ARM_NEXT:
            raise ValidationError(
                f"arm continuation {self.next!r} must be one of {ARM_NEXT}"
            )
        if self.probability is not None:
            if not 0.0 < self.probability <= 1.0:
                raise ValidationError(
                    f"arm probability {self.probability} must lie in (0, 1]"
                )
        if isinstance(self.block, (Arm, BranchBlock)):
            raise ValidationError(
                "an arm's block must start with a state, not a branch"
            )


@dataclass(frozen=True)
class BranchBlock(Block):
    """Guarded/probabilistic alternatives following the preceding state."""

    arms: tuple[Arm, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "arms", tuple(self.arms))
        if len(self.arms) < 2:
            raise ValidationError("branch block needs at least two arms")
        if any(arm.next == "loop" for arm in self.arms):
            raise ValidationError(
                "only loop arms may continue with 'loop'; use a LoopBlock"
            )


@dataclass(frozen=True)
class LoopBlock(Block):
    """A body whose exits either repeat the body or leave the loop.

    Arms with ``next="loop"`` return to the body's entry, executing the
    arm's ``block`` (the *loop section*, e.g. a reminder activity) on the
    way; the remaining arms exit towards the join or the final state.
    """

    body: Block
    arms: tuple[Arm, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "arms", tuple(self.arms))
        if not self.arms:
            raise ValidationError("loop block needs at least one arm")
        if isinstance(self.body, (Arm, BranchBlock)):
            raise ValidationError(
                "a loop body must start with a state, not a branch"
            )
        if not any(arm.next == "loop" for arm in self.arms):
            raise ValidationError("loop block needs an arm with next='loop'")


@dataclass(frozen=True)
class RegionSpec(Block):
    """One named region (nested chart) of a composite state."""

    name: str
    body: Block

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("region name must be non-empty")
        if isinstance(self.body, (Arm, BranchBlock)):
            raise ValidationError(
                f"region {self.name}: body must start with a state"
            )


@dataclass(frozen=True)
class CompositeBlock(Block):
    """A state hosting nested regions.

    One region nests a *subworkflow*; two or more regions run
    *orthogonally* (in parallel), the composite completing when every
    region has reached its final state.
    """

    state: str
    regions: tuple[RegionSpec, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "regions", tuple(self.regions))
        if not self.state:
            raise ValidationError("composite block needs a state name")
        if not self.regions:
            raise ValidationError(
                f"composite block {self.state}: needs at least one region"
            )
        names = [region.name for region in self.regions]
        if len(set(names)) != len(names):
            raise ValidationError(
                f"composite block {self.state}: duplicate region names"
            )


# ----------------------------------------------------------------------
# Convenience constructors (the fluent spec-building vocabulary)
# ----------------------------------------------------------------------
def activity(state: str, activity_name: str | None = None) -> ActivityBlock:
    """An activity leaf; the activity defaults to the state name."""
    return ActivityBlock(state=state, activity=activity_name)


def routing(state: str, mean_duration: float | None = None) -> RoutingBlock:
    """A load-free routing leaf."""
    return RoutingBlock(state=state, mean_duration=mean_duration)


def sequence(*blocks: Block) -> SequenceBlock:
    """Blocks executed one after another."""
    return SequenceBlock(blocks=tuple(blocks))


def arm(
    block: Block | None = None,
    guard: Guard | None = None,
    probability: float | None = None,
    next: str = "join",
) -> Arm:
    """One branch/loop alternative."""
    return Arm(block=block, guard=guard, probability=probability, next=next)


def branch(*arms: Arm) -> BranchBlock:
    """Alternatives following the preceding state."""
    return BranchBlock(arms=tuple(arms))


def loop(body: Block, *arms: Arm) -> LoopBlock:
    """A repeating body with explicit repeat/exit arms."""
    return LoopBlock(body=body, arms=tuple(arms))


def region(name: str, body: Block) -> RegionSpec:
    """A named region of a composite state."""
    return RegionSpec(name=name, body=body)


def parallel(state: str, *regions: RegionSpec) -> CompositeBlock:
    """A composite state whose regions run in parallel."""
    if len(regions) < 2:
        raise ValidationError(
            f"parallel block {state}: needs at least two regions "
            "(use subworkflow() for a single nested region)"
        )
    return CompositeBlock(state=state, regions=tuple(regions))


def subworkflow(state: str, nested: RegionSpec) -> CompositeBlock:
    """A composite state nesting a single subworkflow region."""
    return CompositeBlock(state=state, regions=(nested,))


# ----------------------------------------------------------------------
# Arrival process and the top-level spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrivalSpec:
    """The arrival process of a workflow type (Section 4.3).

    Only Poisson arrivals are modelled (the paper's assumption and the
    simulator's arrival process); ``rate`` is the expected number of new
    workflow instances per time unit.
    """

    rate: float = 0.0
    kind: str = "poisson"

    def __post_init__(self) -> None:
        if self.kind != "poisson":
            raise ValidationError(
                f"unsupported arrival kind {self.kind!r}; only 'poisson' "
                "arrivals are modelled"
            )
        if self.rate < 0.0:
            raise ValidationError("arrival rate must be >= 0")


@dataclass(frozen=True)
class WorkflowSpec:
    """One self-contained scenario: structure, activities, landscape.

    Parameters
    ----------
    name:
        Workflow type identifier (also the chart name).
    body:
        The root structure block (typically a :class:`SequenceBlock`).
    activities:
        Catalogue of every activity the structure references.
    server_types:
        The server landscape the activities' load vectors refer to;
        optional for specs assessed against an externally supplied
        landscape.
    arrival:
        The arrival process (rate 0 = not part of any workload mix).
    """

    name: str
    body: Block
    activities: tuple[ActivitySpec, ...] = ()
    server_types: ServerTypeIndex | None = None
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("workflow spec name must be non-empty")
        object.__setattr__(self, "activities", tuple(self.activities))
        names = [spec.name for spec in self.activities]
        if len(set(names)) != len(names):
            raise ValidationError(
                f"workflow spec {self.name}: duplicate activity names"
            )
        if isinstance(self.body, (Arm, BranchBlock)):
            raise ValidationError(
                f"workflow spec {self.name}: body must start with a state"
            )

    def activity(self, name: str) -> ActivitySpec:
        """The catalogued activity called ``name`` (raises if unknown)."""
        for spec in self.activities:
            if spec.name == name:
                return spec
        raise ValidationError(
            f"workflow spec {self.name}: no activity named {name!r}"
        )

    def walk_blocks(self) -> Iterator[tuple[Block, int]]:
        """Every block of the tree with its region-nesting depth."""
        yield from _walk(self.body, 0)

    def state_count(self) -> int:
        """Number of chart states the spec lowers to (regions included)."""
        return sum(
            1
            for block, _ in self.walk_blocks()
            if isinstance(block, (ActivityBlock, RoutingBlock,
                                  CompositeBlock))
        )

    def nesting_depth(self) -> int:
        """Maximum region-nesting depth (0 = flat workflow)."""
        return max(
            (depth for _, depth in self.walk_blocks()), default=0
        )


def _walk(block: Block, depth: int) -> Iterator[tuple[Block, int]]:
    yield block, depth
    if isinstance(block, SequenceBlock):
        for child in block.blocks:
            yield from _walk(child, depth)
    elif isinstance(block, BranchBlock):
        for child in block.arms:
            yield from _walk(child, depth)
    elif isinstance(block, LoopBlock):
        yield from _walk(block.body, depth)
        for child in block.arms:
            yield from _walk(child, depth)
    elif isinstance(block, Arm):
        if block.block is not None:
            yield from _walk(block.block, depth)
    elif isinstance(block, CompositeBlock):
        for nested in block.regions:
            yield nested, depth + 1
            yield from _walk(nested.body, depth + 1)


# ----------------------------------------------------------------------
# JSON serialization
# ----------------------------------------------------------------------
def block_to_dict(block: Block) -> dict[str, Any]:
    """Serialize one structure block (recursively)."""
    if isinstance(block, ActivityBlock):
        result: dict[str, Any] = {"kind": "activity", "state": block.state}
        if block.activity is not None and block.activity != block.state:
            result["activity"] = block.activity
        return result
    if isinstance(block, RoutingBlock):
        result = {"kind": "routing", "state": block.state}
        if block.mean_duration is not None:
            result["mean_duration"] = block.mean_duration
        return result
    if isinstance(block, SequenceBlock):
        return {
            "kind": "sequence",
            "blocks": [block_to_dict(child) for child in block.blocks],
        }
    if isinstance(block, BranchBlock):
        return {
            "kind": "branch",
            "arms": [_arm_to_dict(child) for child in block.arms],
        }
    if isinstance(block, LoopBlock):
        return {
            "kind": "loop",
            "body": block_to_dict(block.body),
            "arms": [_arm_to_dict(child) for child in block.arms],
        }
    if isinstance(block, CompositeBlock):
        regions = [
            {"name": nested.name, "body": block_to_dict(nested.body)}
            for nested in block.regions
        ]
        if len(regions) == 1:
            return {
                "kind": "subworkflow",
                "state": block.state,
                "region": regions[0],
            }
        return {"kind": "parallel", "state": block.state, "regions": regions}
    raise ValidationError(
        f"cannot serialize block type {type(block).__name__}"
    )


def _arm_to_dict(arm_: Arm) -> dict[str, Any]:
    result: dict[str, Any] = {}
    if arm_.guard is not None:
        result["guard"] = guard_to_dict(arm_.guard)
    if arm_.probability is not None:
        result["probability"] = arm_.probability
    if arm_.next != "join":
        result["next"] = arm_.next
    if arm_.block is not None:
        result["block"] = block_to_dict(arm_.block)
    return result


def block_from_dict(data: Mapping[str, Any]) -> Block:
    """Deserialize one structure block (recursively)."""
    kind = data.get("kind")
    if kind == "activity":
        return ActivityBlock(
            state=data["state"], activity=data.get("activity")
        )
    if kind == "routing":
        return RoutingBlock(
            state=data["state"],
            mean_duration=(
                float(data["mean_duration"])
                if data.get("mean_duration") is not None
                else None
            ),
        )
    if kind == "sequence":
        return SequenceBlock(
            blocks=tuple(block_from_dict(child) for child in data["blocks"])
        )
    if kind == "branch":
        return BranchBlock(
            arms=tuple(_arm_from_dict(child) for child in data["arms"])
        )
    if kind == "loop":
        return LoopBlock(
            body=block_from_dict(data["body"]),
            arms=tuple(_arm_from_dict(child) for child in data["arms"]),
        )
    if kind == "subworkflow":
        nested = data["region"]
        return CompositeBlock(
            state=data["state"],
            regions=(
                RegionSpec(
                    name=nested["name"], body=block_from_dict(nested["body"])
                ),
            ),
        )
    if kind == "parallel":
        return CompositeBlock(
            state=data["state"],
            regions=tuple(
                RegionSpec(
                    name=nested["name"], body=block_from_dict(nested["body"])
                )
                for nested in data["regions"]
            ),
        )
    raise ValidationError(f"unknown block kind {kind!r}")


def _arm_from_dict(data: Mapping[str, Any]) -> Arm:
    return Arm(
        block=(
            block_from_dict(data["block"])
            if data.get("block") is not None
            else None
        ),
        guard=(
            guard_from_dict(data["guard"])
            if data.get("guard") is not None
            else None
        ),
        probability=(
            float(data["probability"])
            if data.get("probability") is not None
            else None
        ),
        next=data.get("next", "join"),
    )


def spec_to_dict(spec: WorkflowSpec) -> dict[str, Any]:
    """Serialize a workflow spec to a JSON-compatible dictionary."""
    result: dict[str, Any] = {
        "schema": SPEC_SCHEMA,
        "name": spec.name,
        "body": block_to_dict(spec.body),
        "activities": [
            activity_to_dict(activity_spec)
            for activity_spec in spec.activities
        ],
        "arrival": {"kind": spec.arrival.kind, "rate": spec.arrival.rate},
    }
    if spec.server_types is not None:
        result["server_types"] = server_types_to_list(spec.server_types)
    return result


def spec_from_dict(data: Mapping[str, Any]) -> WorkflowSpec:
    """Deserialize a workflow spec from a JSON-compatible dictionary."""
    schema = data.get("schema")
    if schema is not None and schema != SPEC_SCHEMA:
        raise ValidationError(
            f"unsupported workflow-spec schema {schema!r} "
            f"(expected {SPEC_SCHEMA!r})"
        )
    missing = {"name", "body"} - set(data)
    if missing:
        raise ValidationError(
            f"workflow spec record is missing keys: {sorted(missing)}"
        )
    arrival_data = dict(data.get("arrival", {}))
    return WorkflowSpec(
        name=data["name"],
        body=block_from_dict(data["body"]),
        activities=tuple(
            activity_from_dict(item) for item in data.get("activities", [])
        ),
        server_types=(
            server_types_from_list(data["server_types"])
            if data.get("server_types")
            else None
        ),
        arrival=ArrivalSpec(
            rate=float(arrival_data.get("rate", 0.0)),
            kind=arrival_data.get("kind", "poisson"),
        ),
    )


def spec_to_json(spec: WorkflowSpec) -> str:
    """Canonical pretty-printed JSON text of a spec."""
    return json.dumps(spec_to_dict(spec), indent=2, sort_keys=True) + "\n"


def save_spec(spec: WorkflowSpec, path: str | Path) -> None:
    """Write a spec as pretty-printed JSON."""
    Path(path).write_text(spec_to_json(spec))


def load_spec(path: str | Path) -> WorkflowSpec:
    """Read a spec from JSON (validates through the constructors)."""
    try:
        data = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ValidationError(f"spec file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid JSON in {path}: {exc}") from exc
    return spec_from_dict(data)
