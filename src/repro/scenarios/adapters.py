"""Lowering adapters: WorkflowSpec → chart, CTMC, simulator, project.

The spec IR is declarative; everything downstream still consumes the
existing artifacts.  This module lowers a :class:`WorkflowSpec` into

* a validated :class:`~repro.spec.statechart.StateChart`
  (:func:`spec_to_chart`) plus its activity registry
  (:func:`spec_to_registry`),
* the analytic model-layer artifacts — :func:`spec_to_definition` and
  :func:`spec_to_ctmc` (the absorbing-CTMC translation of §4),
* simulator inputs — :func:`spec_to_simulated_type`,
* and a full CLI :class:`~repro.io.serialization.Project`
  (:func:`spec_to_project`), which is also the calibration input shape.

Lowering is **deterministic and order-preserving**: states appear in the
chart in depth-first spec order, and transitions are emitted sorted by
``(source-state position, branch-arm path)``.  This makes the lowering of
the hand-written example specs *byte-identical* to the charts the repo
previously built imperatively (see ``tests/workflows/test_goldens.py``).

Lowering algorithm
------------------

Phase A walks the block tree and collects chart states (activities,
routing states, and composite states whose regions are lowered
recursively into nested charts).  Phase B threads *pending exits* through
the tree: every block consumes the exits of its predecessor and produces
its own.  A branch/loop arm annotates the exits passing through it with
its guard (``And``-composed), its probability (multiplied), and its arm
index (appended to the sort path); ``next="loop"`` arms connect back to
the innermost loop's entry and ``next="final"`` arms jump to the
workflow's final block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.model_types import ServerTypeIndex
from repro.core.workflow_model import (
    WorkflowCTMC,
    WorkflowDefinition,
    build_workflow_ctmc,
)
from repro.exceptions import ValidationError
from repro.io.serialization import Project
from repro.spec.events import And, ECARule, Guard, TrueGuard, completion_event
from repro.spec.statechart import ChartState, ChartTransition, StateChart
from repro.spec.translator import ActivityRegistry, translate_chart
from repro.spec.validation import ensure_valid
from repro.scenarios.spec import (
    ActivityBlock,
    Arm,
    Block,
    BranchBlock,
    CompositeBlock,
    LoopBlock,
    RoutingBlock,
    SequenceBlock,
    WorkflowSpec,
)


@dataclass(frozen=True)
class _Exit(object):
    """One dangling outgoing edge awaiting its target state.

    ``path`` is the tuple of branch-arm indices the edge has passed
    through since leaving ``source``; sorting emitted transitions by
    ``(source-state position, path)`` reproduces the conventional
    hand-written transition order (all edges of a state together, in arm
    order).
    """

    source: str
    event: str | None
    guard: Guard | None
    probability: float | None
    path: tuple[int, ...]


def _entry(block: Block) -> str:
    """Name of the state entered first when control reaches ``block``."""
    if isinstance(block, (ActivityBlock, RoutingBlock, CompositeBlock)):
        return block.state
    if isinstance(block, SequenceBlock):
        return _entry(block.blocks[0])
    if isinstance(block, LoopBlock):
        return _entry(block.body)
    raise ValidationError(
        f"block type {type(block).__name__} has no entry state"
    )


class _Lowering:
    """Lowers one block tree (a workflow body or a region body)."""

    def __init__(self, name: str, body: Block) -> None:
        self.name = name
        self.body = body
        self.states: list[ChartState] = []
        self.position: dict[str, int] = {}
        self.edges: list[tuple[tuple[int, tuple[int, ...]],
                               ChartTransition]] = []
        self.loop_entries: list[str] = []
        self.validate_regions = True

    # ------------------------------------------------------------------
    # Phase A: state collection (depth-first, definition order)
    # ------------------------------------------------------------------
    def collect(self, block: Block) -> None:
        """Append every chart state under ``block`` in spec order."""
        if isinstance(block, ActivityBlock):
            self._add(ChartState(
                name=block.state,
                activity=(
                    block.activity if block.activity is not None
                    else block.state
                ),
            ))
        elif isinstance(block, RoutingBlock):
            self._add(ChartState(
                name=block.state, mean_duration=block.mean_duration,
            ))
        elif isinstance(block, SequenceBlock):
            for child in block.blocks:
                self.collect(child)
        elif isinstance(block, BranchBlock):
            for arm in block.arms:
                if arm.block is not None:
                    self.collect(arm.block)
        elif isinstance(block, LoopBlock):
            self.collect(block.body)
            for arm in block.arms:
                if arm.next == "loop" and arm.block is not None:
                    self.collect(arm.block)
            for arm in block.arms:
                if arm.next != "loop" and arm.block is not None:
                    self.collect(arm.block)
        elif isinstance(block, CompositeBlock):
            regions = tuple(
                _lower(nested.name, nested.body,
                       validate=self.validate_regions)
                for nested in block.regions
            )
            self._add(ChartState(name=block.state, regions=regions))
        else:
            raise ValidationError(
                f"chart {self.name}: cannot lower block type "
                f"{type(block).__name__}"
            )

    def _add(self, state: ChartState) -> None:
        if state.name in self.position:
            raise ValidationError(
                f"chart {self.name}: duplicate state {state.name!r}"
            )
        self.position[state.name] = len(self.states)
        self.states.append(state)

    # ------------------------------------------------------------------
    # Phase B: wiring
    # ------------------------------------------------------------------
    def wire(self, block: Block, pending: list[_Exit]) -> list[_Exit]:
        """Connect ``pending`` into ``block``; return the block's exits."""
        if isinstance(block, (ActivityBlock, RoutingBlock)):
            self._connect(pending, block.state)
            event = (
                completion_event(
                    block.activity if block.activity is not None
                    else block.state
                )
                if isinstance(block, ActivityBlock)
                else None
            )
            return [_Exit(block.state, event, None, None, ())]
        if isinstance(block, CompositeBlock):
            self._connect(pending, block.state)
            # A composite completes when its region(s) do; the completion
            # is the region join itself, so the exit carries no event.
            return [_Exit(block.state, None, None, None, ())]
        if isinstance(block, SequenceBlock):
            for child in block.blocks:
                pending = self.wire(child, pending)
            return pending
        if isinstance(block, BranchBlock):
            return self._wire_arms(block.arms, pending)
        if isinstance(block, LoopBlock):
            body_exits = self.wire(block.body, pending)
            self.loop_entries.append(_entry(block.body))
            try:
                return self._wire_arms(block.arms, body_exits)
            finally:
                self.loop_entries.pop()
        raise ValidationError(
            f"chart {self.name}: cannot wire block type "
            f"{type(block).__name__}"
        )

    def _wire_arms(
        self, arms: Sequence[Arm], pending: list[_Exit]
    ) -> list[_Exit]:
        joined: list[_Exit] = []
        for index, arm in enumerate(arms):
            routed = [self._through(exit_, arm, index) for exit_ in pending]
            if arm.block is not None:
                routed = self.wire(arm.block, routed)
            if arm.next == "join":
                joined.extend(routed)
            elif arm.next == "loop":
                if not self.loop_entries:
                    raise ValidationError(
                        f"chart {self.name}: next='loop' outside a loop"
                    )
                self._connect(routed, self.loop_entries[-1])
            else:  # "final"
                self._connect(routed, self._final_entry())
        return joined

    @staticmethod
    def _through(exit_: _Exit, arm: Arm, index: int) -> _Exit:
        guard = exit_.guard
        if arm.guard is not None:
            guard = arm.guard if guard is None else And(guard, arm.guard)
        probability = exit_.probability
        if arm.probability is not None:
            probability = (
                arm.probability if probability is None
                else probability * arm.probability
            )
        return _Exit(
            exit_.source, exit_.event, guard, probability,
            exit_.path + (index,),
        )

    def _final_entry(self) -> str:
        if not isinstance(self.body, SequenceBlock):
            raise ValidationError(
                f"chart {self.name}: next='final' needs a sequence body "
                "with a distinguished final block"
            )
        return _entry(self.body.blocks[-1])

    def _connect(self, exits: Iterable[_Exit], target: str) -> None:
        for exit_ in exits:
            transition = ChartTransition(
                source=exit_.source,
                target=target,
                rule=ECARule(
                    event=exit_.event,
                    guard=(
                        exit_.guard if exit_.guard is not None
                        else TrueGuard()
                    ),
                ),
                probability=exit_.probability,
            )
            self.edges.append(
                ((self.position[exit_.source], exit_.path), transition)
            )

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> StateChart:
        """Run both phases and assemble the chart."""
        self.validate_regions = validate
        self.collect(self.body)
        exits = self.wire(self.body, [])
        if exits:
            # A well-formed spec ends in its final block: every exit of
            # the body must have been consumed except the final state's
            # own (a leaf/composite last block produces exactly one).
            final = _entry_of_last(self.body)
            dangling = [e for e in exits if e.source != final]
            if dangling:
                raise ValidationError(
                    f"chart {self.name}: dangling exits from "
                    f"{sorted({e.source for e in dangling})}"
                )
        self.edges.sort(key=lambda item: item[0])
        chart = StateChart(
            name=self.name,
            states=tuple(self.states),
            transitions=tuple(edge for _, edge in self.edges),
            initial_state=_entry(self.body),
        )
        if validate:
            ensure_valid(chart)
        return chart


def _entry_of_last(body: Block) -> str:
    """Entry state of the block that terminates ``body``."""
    if isinstance(body, SequenceBlock):
        return _entry_of_last(body.blocks[-1])
    if isinstance(body, (ActivityBlock, RoutingBlock, CompositeBlock)):
        return body.state
    raise ValidationError(
        f"block type {type(body).__name__} cannot terminate a workflow"
    )


def _lower(name: str, body: Block, validate: bool = True) -> StateChart:
    """Lower one body to a chart (regions recurse through here)."""
    return _Lowering(name, body).build(validate=validate)


# ----------------------------------------------------------------------
# Public adapters
# ----------------------------------------------------------------------
def spec_to_chart(spec: WorkflowSpec, validate: bool = True) -> StateChart:
    """Lower a spec to its state chart (validated unless disabled)."""
    return _lower(spec.name, spec.body, validate=validate)


def region_to_chart(region, validate: bool = True) -> StateChart:
    """Lower one :class:`~repro.scenarios.spec.RegionSpec` to its chart.

    Composite states lower their regions through this automatically; it
    is exposed so subworkflow charts can also be built standalone (the
    ``*_subchart()`` helpers of :mod:`repro.workflows`).
    """
    return _lower(region.name, region.body, validate=validate)


def spec_to_registry(spec: WorkflowSpec) -> ActivityRegistry:
    """The spec's activity catalogue as a translator registry."""
    return ActivityRegistry(
        {activity.name: activity for activity in spec.activities}
    )


def spec_to_definition(
    spec: WorkflowSpec, validate: bool = True
) -> WorkflowDefinition:
    """Lower a spec to the model-layer workflow definition."""
    return translate_chart(
        spec_to_chart(spec, validate=validate),
        spec_to_registry(spec),
        validate=validate,
    )


def spec_to_ctmc(
    spec: WorkflowSpec, server_types: ServerTypeIndex | None = None
) -> WorkflowCTMC:
    """Lower a spec all the way to the absorbing-CTMC translation.

    ``server_types`` overrides the spec's bundled landscape (required if
    the spec does not bundle one).
    """
    landscape = server_types if server_types is not None \
        else spec.server_types
    if landscape is None:
        raise ValidationError(
            f"spec {spec.name}: no server landscape (pass server_types or "
            "bundle one in the spec)"
        )
    return build_workflow_ctmc(spec_to_definition(spec), landscape)


def spec_to_simulated_type(
    spec: WorkflowSpec, arrival_rate: float | None = None
):
    """Lower a spec to a simulator workflow type.

    ``arrival_rate`` overrides the spec's arrival process (the simulator
    requires a positive rate).  Imported lazily to keep the scenarios
    package usable without the simulator stack.
    """
    from repro.wfms.runtime import SimulatedWorkflowType

    rate = arrival_rate if arrival_rate is not None else spec.arrival.rate
    return SimulatedWorkflowType(
        chart=spec_to_chart(spec),
        activities=spec_to_registry(spec),
        arrival_rate=rate,
    )


def spec_to_project(specs: Iterable[WorkflowSpec]) -> Project:
    """Bundle one or more specs into a CLI project.

    The specs' landscapes are merged by server-type name; two specs
    naming the same server type must agree on its parameters.  Arrival
    rates come from each spec's arrival process.
    """
    specs = list(specs)
    if not specs:
        raise ValidationError("spec_to_project needs at least one spec")
    merged: dict[str, object] = {}
    for spec in specs:
        if spec.server_types is None:
            raise ValidationError(
                f"spec {spec.name}: no server landscape; cannot build a "
                "project"
            )
        for name in spec.server_types.names:
            candidate = spec.server_types.spec(name)
            existing = merged.get(name)
            if existing is None:
                merged[name] = candidate
            elif existing != candidate:
                raise ValidationError(
                    f"server type {name!r} differs between specs"
                )
    landscape = ServerTypeIndex(tuple(merged.values()))
    return Project(
        server_types=landscape,
        workflows=tuple(spec_to_definition(spec) for spec in specs),
        arrival_rates={
            spec.name: spec.arrival.rate
            for spec in specs
            if spec.arrival.rate > 0.0
        },
    )
