"""The shared calibrate → evaluate → recommend pipeline (Section 7).

One function — :func:`recommend_from_calibration` — turns the current
state of a :class:`~repro.monitor.stream.StreamingCalibrator` into a
canonical recommendation document.  Both consumers call it:

* the **batch** path (:func:`batch_recommendation`, the programmatic
  twin of ``repro monitor`` followed by ``repro recommend``) replays a
  complete trail file into a fresh calibrator first;
* the **service** path (:mod:`repro.service.server`) calls it against a
  calibrator that was fed the same records over ``POST /events``.

Because the streaming calibrator is bitwise-equal to batch replay on
the same record sequence (the PR 6 contract) and this module is the
single implementation of everything downstream — model overlay, total
request rates, search, document rendering — the two paths produce
**byte-identical** documents.  ``benchmarks/bench_service.py`` gates
exactly that.

The calibrated model overlays measured quantities on a *baseline
project* (the prior landscape): per-type service-time moments replace
the baseline ones (:func:`~repro.monitor.calibration.calibrate_server_type`),
while failure/repair rates and costs — which the audit trail cannot
observe — are kept.  Per-type total request rates are assembled as
``sum_w lambda_w * r_{w,x}`` from the measured arrival rates and
requests-per-instance vectors, which is all the configuration search
needs (:meth:`~repro.core.performance.PerformanceModel.from_request_totals`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.configuration import (
    branch_and_bound_configuration,
    exhaustive_configuration,
    greedy_configuration,
    simulated_annealing_configuration,
)
from repro.core.evaluation_cache import EvaluationCache, model_fingerprint
from repro.core.goals import GoalEvaluator, PerformabilityGoals
from repro.core.model_types import ServerTypeIndex, ServerTypeSpec
from repro.core.performance import PerformanceModel
from repro.core.search import ReplicationConstraints, frontier_search
from repro.exceptions import (
    InfeasibleConfigurationError,
    ValidationError,
)
from repro.io import Project
from repro.monitor.calibration import calibrate_server_type
from repro.monitor.stream import StreamingCalibrator

#: Schema tag of the canonical recommendation document.
SCHEMA = "repro.service.recommendation/v1"

#: Search algorithms the pipeline can run (the CLI ``recommend`` set).
SEARCHES: dict[str, Callable[..., Any]] = {
    "greedy": greedy_configuration,
    "exhaustive": exhaustive_configuration,
    "branch_and_bound": branch_and_bound_configuration,
    "simulated_annealing": simulated_annealing_configuration,
}


@dataclass(frozen=True)
class SearchSettings:
    """The re-search strategy the service (or batch twin) runs.

    Mirrors the knobs of the ``recommend`` subcommand: a point search
    by ``algorithm``, or the multi-objective frontier sweep when
    ``frontier`` is set (``objectives``/``seed`` then apply).
    """

    algorithm: str = "greedy"
    frontier: bool = False
    objectives: tuple[str, ...] = ()
    seed: int = 0
    max_total_servers: int = 32
    fixed: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.frontier and self.algorithm not in SEARCHES:
            raise ValidationError(
                f"unknown search algorithm {self.algorithm!r}; "
                f"choose from {sorted(SEARCHES)}"
            )

    def to_document(self) -> dict[str, Any]:
        """Plain-JSON form embedded in every recommendation document."""
        return {
            "algorithm": "frontier" if self.frontier else self.algorithm,
            "frontier": self.frontier,
            "objectives": list(self.objectives),
            "seed": self.seed,
            "max_total_servers": self.max_total_servers,
            "fixed": dict(sorted(self.fixed.items())),
        }


def goals_to_document(goals: PerformabilityGoals) -> dict[str, Any]:
    """Plain-JSON form of the goal thresholds."""
    return {
        "max_waiting_time": goals.max_waiting_time,
        "max_waiting_times_per_type": dict(
            sorted(goals.max_waiting_times_per_type.items())
        ),
        "max_unavailability": goals.max_unavailability,
        "max_unavailability_per_type": dict(
            sorted(goals.max_unavailability_per_type.items())
        ),
    }


def parse_goals(text: str) -> PerformabilityGoals:
    """Parse the CLI's ``--goals`` syntax into goal thresholds.

    The syntax is ``key=value`` pairs separated by commas, with keys
    ``max-waiting`` and ``max-unavailability`` (matching the flags of
    the ``recommend`` subcommand)::

        max-waiting=0.5,max-unavailability=1e-4
    """
    values: dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, separator, raw = part.partition("=")
        if not separator:
            raise ValidationError(
                f"bad --goals entry {part!r}; expected key=value"
            )
        key = key.strip()
        if key not in ("max-waiting", "max-unavailability"):
            raise ValidationError(
                f"unknown goal {key!r}; expected max-waiting or "
                f"max-unavailability"
            )
        try:
            values[key] = float(raw)
        except ValueError:
            raise ValidationError(
                f"bad goal value in {part!r}"
            ) from None
    if not values:
        raise ValidationError(
            "--goals must set max-waiting and/or max-unavailability"
        )
    return PerformabilityGoals(
        max_waiting_time=values.get("max-waiting"),
        max_unavailability=values.get("max-unavailability"),
    )


def calibrated_specs(
    calibrator: StreamingCalibrator, baseline: Project
) -> ServerTypeIndex:
    """Baseline server types with measured service moments overlaid.

    Baseline types without any observed service request keep their
    baseline moments (the prior); measured types missing from the
    baseline raise — the baseline names the landscape the search may
    replicate, and a request against an unknown type means trail and
    baseline do not belong to the same system.
    """
    estimates = calibrator.service_times()
    known = set(baseline.server_types.names)
    unknown = sorted(set(estimates) - known)
    if unknown:
        raise ValidationError(
            f"audit trail names server types missing from the baseline "
            f"project: {unknown}"
        )
    specs: list[ServerTypeSpec] = []
    for spec in baseline.server_types.specs:
        estimate = estimates.get(spec.name)
        if estimate is not None and estimate.sample_count >= 1:
            specs.append(calibrate_server_type(spec, estimate))
        else:
            specs.append(spec)
    return ServerTypeIndex(specs)


def calibrated_model(
    calibrator: StreamingCalibrator,
    baseline: Project,
    observation_period: float | None = None,
) -> PerformanceModel:
    """The partial performance model of the current calibration.

    Total request rates are assembled workflow-by-workflow (sorted by
    name, so the float accumulation order never depends on observation
    order): the measured arrival rate times the measured mean requests
    per instance.  Workflows without a completed instance contribute
    nothing yet.  Raises when no workflow has completed at all — there
    is no workload to recommend against.
    """
    index = calibrated_specs(calibrator, baseline)
    if observation_period is None:
        observation_period = calibrator.observed_span
    if observation_period <= 0.0:
        raise ValidationError(
            "calibration has no observed time span yet; feed the "
            "service more audit records before requesting a "
            "recommendation"
        )
    positions = {name: i for i, name in enumerate(index.names)}
    totals = [0.0] * len(index)
    contributed = False
    for workflow in sorted(calibrator.workflow_types()):
        try:
            requests = calibrator.requests_per_instance(workflow)
        except ValidationError:
            continue
        rate = calibrator.arrival_rate(workflow, observation_period)
        for name in sorted(requests):
            totals[positions[name]] += rate * requests[name]
        contributed = True
    if not contributed:
        raise ValidationError(
            "no workflow instance has completed yet; cannot estimate "
            "arrival rates or per-type request loads"
        )
    return PerformanceModel.from_request_totals(index, totals)


def recommend_from_calibration(
    calibrator: StreamingCalibrator,
    baseline: Project,
    goals: PerformabilityGoals,
    settings: SearchSettings | None = None,
    cache: EvaluationCache | None = None,
    observation_period: float | None = None,
    stop_check: Callable[[], bool] | None = None,
) -> dict[str, Any]:
    """Run the full §7 loop tail on the current calibration.

    Builds the calibrated model, re-binds ``cache`` to its fingerprint
    (:meth:`~repro.core.evaluation_cache.EvaluationCache.rebind` keeps
    still-valid curves and pool marginals, drops the rest), clears the
    assessment cache so the ``evaluations`` accounting matches a cold
    run, executes the configured search, and returns the canonical
    document.  An infeasible search is a *result*, not an error: the
    document carries ``"feasible": false`` plus the violations of the
    best configuration found.

    ``stop_check`` is forwarded to the search engine so a background
    re-search can be abandoned when superseded
    (:class:`~repro.exceptions.SearchCancelledError` propagates to the
    caller).
    """
    settings = settings if settings is not None else SearchSettings()
    model = calibrated_model(calibrator, baseline, observation_period)
    fingerprint = model_fingerprint(model)
    if cache is None:
        cache = EvaluationCache()
    cache.rebind(fingerprint, reason="service recalibration")
    cache.clear_assessments()
    evaluator = GoalEvaluator(model, cache=cache)
    constraints = ReplicationConstraints(
        fixed=dict(settings.fixed),
        max_total_servers=settings.max_total_servers,
    )

    span = (
        calibrator.observed_span
        if observation_period is None
        else observation_period
    )
    document: dict[str, Any] = {
        "schema": SCHEMA,
        "goals": goals_to_document(goals),
        "search": settings.to_document(),
        "calibration": {
            "records_seen": calibrator.records_seen,
            "observation_period": span,
            "window": calibrator.window,
            "workflow_types": sorted(calibrator.workflow_types()),
            "server_types": sorted(calibrator.server_types()),
        },
    }
    try:
        if settings.frontier:
            from repro.core.search.frontier import OBJECTIVES

            objectives = settings.objectives or OBJECTIVES
            result = frontier_search(
                evaluator,
                goals,
                constraints,
                objectives=objectives,
                seed=settings.seed,
                stop_check=stop_check,
            )
            document["feasible"] = True
            document["result"] = result.to_document()
        else:
            recommendation = SEARCHES[settings.algorithm](
                evaluator, goals, constraints, stop_check=stop_check
            )
            document["feasible"] = True
            document["result"] = recommendation.to_document()
    except InfeasibleConfigurationError as error:
        best = error.best_found
        document["feasible"] = False
        document["error"] = str(error)
        document["result"] = (
            best.to_document() if best is not None else None
        )
    return document


def render_document(document: dict[str, Any]) -> bytes:
    """The canonical byte encoding of a recommendation document.

    ``sort_keys`` plus a fixed indent make the rendering a pure function
    of the document's values; Python's shortest-repr float serialization
    makes it a pure function of the *bits* — the unit of the
    service-equals-batch gate.
    """
    return (
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")


def batch_recommendation(
    trail_path: str,
    baseline: Project,
    goals: PerformabilityGoals,
    settings: SearchSettings | None = None,
    window: float = 1_000.0,
    observation_period: float | None = None,
) -> dict[str, Any]:
    """The batch ``monitor`` → ``recommend`` reference path.

    Replays a complete trail file into a fresh streaming calibrator and
    runs the shared pipeline — the document the always-on service must
    reproduce byte-for-byte after ingesting the same records over HTTP.
    """
    from repro.monitor.persistence import iter_trail_records

    calibrator = StreamingCalibrator(window=window)
    calibrator.replay_records(iter_trail_records(trail_path))
    return recommend_from_calibration(
        calibrator,
        baseline,
        goals,
        settings,
        observation_period=observation_period,
    )
