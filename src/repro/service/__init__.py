"""The always-on recommendation service (the paper's §7 loop, live).

Wires the existing pieces — streaming calibration
(:mod:`repro.monitor.stream`), drift detection
(:mod:`repro.monitor.drift`), the evaluation cache and configuration
search (:mod:`repro.core.search`) — into a long-running HTTP service:

* :mod:`repro.service.pipeline` — the shared calibrate → evaluate →
  recommend tail; the batch path and the service call the same
  function, which is what makes the served document byte-identical to
  the ``monitor`` → ``recommend`` batch pipeline;
* :mod:`repro.service.state` — per-tenant shards and the snapshot
  format for graceful shutdown / warm restart;
* :mod:`repro.service.server` — the stdlib-asyncio HTTP server
  (``POST /events``, ``GET /recommendation``, ``GET /status``, plus
  the ``/metrics``/``/health``/``/report`` observability endpoints).

The CLI front door is ``repro serve`` (see ``docs/OPERATIONS.md`` for
the runbook and ``docs/CLI.md`` for every flag).
"""

from repro.service.pipeline import (
    SCHEMA,
    SEARCHES,
    SearchSettings,
    batch_recommendation,
    calibrated_model,
    calibrated_specs,
    goals_to_document,
    parse_goals,
    recommend_from_calibration,
    render_document,
)
from repro.service.server import SERVICE_METRICS, RecommendationService
from repro.service.state import (
    DEFAULT_TENANT,
    SNAPSHOT_SCHEMA,
    ServiceState,
    TenantState,
)

__all__ = [
    "DEFAULT_TENANT",
    "RecommendationService",
    "SCHEMA",
    "SEARCHES",
    "SERVICE_METRICS",
    "SNAPSHOT_SCHEMA",
    "SearchSettings",
    "ServiceState",
    "TenantState",
    "batch_recommendation",
    "calibrated_model",
    "calibrated_specs",
    "goals_to_document",
    "parse_goals",
    "recommend_from_calibration",
    "render_document",
]
