"""Per-tenant calibration shards and the service snapshot format.

The always-on service keys all mutable state by *tenant* — one
:class:`TenantState` per project/workflow population, each carrying its
own streaming calibrator, drift monitor, evaluation cache, and last
published recommendation.  Sharding by tenant is what lets one service
process serve many independent workloads: nothing is shared across
shards except the read-only baseline project and goal settings.

:class:`ServiceState` is the dict-of-shards plus the snapshot
(de)serialization used for graceful shutdown and warm restart.  A
snapshot embeds each tenant's exact drift-monitor state (which embeds
the calibrator state down to the float accumulators), so a restarted
service continues producing *bitwise* the same estimates — and
therefore byte-identical recommendation documents — as one that never
stopped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

from repro.core.evaluation_cache import EvaluationCache
from repro.exceptions import ValidationError
from repro.monitor.drift import DriftEvent, DriftMonitor
from repro.monitor.stream import StreamingCalibrator

#: Schema tag of the on-disk service snapshot.
SNAPSHOT_SCHEMA = "repro.service.snapshot/v1"

#: Tenant used when a request does not name one.
DEFAULT_TENANT = "default"


class TenantState:
    """One tenant's calibration, drift, cache, and published result.

    The evaluation cache is deliberately *not* attached to the drift
    monitor: attachment would wipe the cache wholesale on every
    confirmed drift, whereas the pipeline re-binds it incrementally at
    search time
    (:meth:`~repro.core.evaluation_cache.EvaluationCache.rebind`),
    keeping every curve and pool marginal whose inputs did not move.
    """

    def __init__(
        self,
        name: str,
        window: float = 1_000.0,
        on_drift: Callable[[DriftEvent], None] | None = None,
        monitor: DriftMonitor | None = None,
    ) -> None:
        if not name:
            raise ValidationError("tenant name must be non-empty")
        self.name = name
        self.cache = EvaluationCache()
        if monitor is None:
            monitor = DriftMonitor(
                calibrator=StreamingCalibrator(window=window),
                on_drift=on_drift,
            )
        self.monitor = monitor
        #: Last published recommendation document (None until the first
        #: search completes) and its staleness bookkeeping.
        self.document: dict[str, Any] | None = None
        self.revision = 0
        self.records_at_publish = 0
        self.drift_at_publish = 0
        self.drift_confirmations = 0

    @property
    def calibrator(self) -> StreamingCalibrator:
        """The tenant's streaming calibrator (owned by the monitor)."""
        return self.monitor.calibrator

    @property
    def records_seen(self) -> int:
        """Audit records ingested for this tenant so far."""
        return self.calibrator.records_seen

    def publish(self, document: dict[str, Any], records_seen: int) -> int:
        """Adopt a recommendation computed at ``records_seen`` records.

        Returns the new revision.  ``records_seen`` is the calibrator
        position the search ran against — for a background search that
        is the snapshot position, which may already trail the live
        calibrator; the staleness metadata reports the difference.
        """
        self.document = document
        self.revision += 1
        self.records_at_publish = records_seen
        self.drift_at_publish = self.drift_confirmations
        return self.revision

    def staleness(self) -> dict[str, Any]:
        """The ``/recommendation`` staleness metadata of this tenant.

        ``age_records`` counts records ingested since the published
        document's calibration position; ``drift_since_publish`` counts
        drift confirmations since then.  A recommendation is ``stale``
        when either is positive (newer evidence exists that it does not
        reflect) or when none has been published yet.
        """
        age = self.records_seen - self.records_at_publish
        drift = self.drift_confirmations - self.drift_at_publish
        return {
            "tenant": self.name,
            "revision": self.revision,
            "published": self.document is not None,
            "records_seen": self.records_seen,
            "records_at_publish": self.records_at_publish,
            "age_records": age,
            "drift_since_publish": drift,
            "stale": self.document is None or age > 0 or drift > 0,
        }

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, Any]:
        """JSON-serializable exact state of this shard."""
        return {
            "name": self.name,
            "monitor": self.monitor.export_state(),
            "document": self.document,
            "revision": self.revision,
            "records_at_publish": self.records_at_publish,
            "drift_at_publish": self.drift_at_publish,
            "drift_confirmations": self.drift_confirmations,
        }

    @classmethod
    def restore_state(
        cls,
        state: dict[str, Any],
        on_drift: Callable[[DriftEvent], None] | None = None,
    ) -> "TenantState":
        """Rebuild a shard from :meth:`export_state` output."""
        monitor = DriftMonitor.restore_state(
            state["monitor"], on_drift=on_drift
        )
        tenant = cls(name=state["name"], monitor=monitor)
        tenant.document = state.get("document")
        tenant.revision = int(state.get("revision", 0))
        tenant.records_at_publish = int(state.get("records_at_publish", 0))
        tenant.drift_at_publish = int(state.get("drift_at_publish", 0))
        tenant.drift_confirmations = int(
            state.get("drift_confirmations", 0)
        )
        return tenant


class ServiceState:
    """All tenant shards of one service process."""

    def __init__(
        self,
        window: float = 1_000.0,
        on_drift: Callable[[str, DriftEvent], None] | None = None,
    ) -> None:
        self.window = window
        self._on_drift = on_drift
        self.tenants: dict[str, TenantState] = {}

    def tenant(self, name: str = DEFAULT_TENANT) -> TenantState:
        """The shard for ``name``, created on first use."""
        shard = self.tenants.get(name)
        if shard is None:
            shard = TenantState(
                name,
                window=self.window,
                on_drift=self._tenant_callback(name),
            )
            self.tenants[name] = shard
        return shard

    def _tenant_callback(
        self, name: str
    ) -> Callable[[DriftEvent], None] | None:
        if self._on_drift is None:
            return None
        on_drift = self._on_drift
        return lambda event: on_drift(name, event)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def export_snapshot(self) -> dict[str, Any]:
        """JSON-serializable exact state of every shard."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "window": self.window,
            "tenants": {
                name: shard.export_state()
                for name, shard in sorted(self.tenants.items())
            },
        }

    @classmethod
    def restore_snapshot(
        cls,
        snapshot: dict[str, Any],
        on_drift: Callable[[str, DriftEvent], None] | None = None,
    ) -> "ServiceState":
        """Rebuild all shards from :meth:`export_snapshot` output."""
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            raise ValidationError(
                f"not a service snapshot (schema "
                f"{snapshot.get('schema')!r}, expected "
                f"{SNAPSHOT_SCHEMA!r})"
            )
        state = cls(
            window=float(snapshot.get("window", 1_000.0)),
            on_drift=on_drift,
        )
        for name, shard_state in snapshot.get("tenants", {}).items():
            state.tenants[name] = TenantState.restore_state(
                shard_state, on_drift=state._tenant_callback(name)
            )
        return state

    def save_snapshot(self, path: str | Path) -> int:
        """Write the snapshot as JSON; returns the number of tenants."""
        document = self.export_snapshot()
        Path(path).write_text(json.dumps(document, sort_keys=True))
        return len(self.tenants)

    @classmethod
    def load_snapshot(
        cls,
        path: str | Path,
        on_drift: Callable[[str, DriftEvent], None] | None = None,
    ) -> "ServiceState":
        """Read a snapshot file written by :meth:`save_snapshot`."""
        try:
            text = Path(path).read_text()
        except FileNotFoundError:
            raise ValidationError(
                f"snapshot file not found: {path}"
            ) from None
        try:
            snapshot = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"invalid JSON in snapshot {path}: {exc}"
            ) from exc
        return cls.restore_snapshot(snapshot, on_drift=on_drift)
