"""The always-on recommendation service (stdlib asyncio HTTP).

:class:`RecommendationService` closes the paper's §7 loop as a
long-running process: audit-trail events stream in over HTTP, the
per-tenant calibration state updates incrementally, confirmed drift
triggers a background re-search (superseding any still-running one),
and the freshest recommendation is always one ``GET`` away.

Endpoints
---------
``POST /events[?tenant=NAME]``
    Body is audit-trail JSONL — the exact on-disk format of
    :mod:`repro.monitor.persistence`, so ``curl --data-binary
    @trail.jsonl`` replays a recorded trail.  Responds with an
    ingestion summary (records ingested, drifts confirmed, whether a
    re-search was scheduled).
``GET /recommendation[?tenant=NAME][&refresh=1]``
    The canonical recommendation document
    (:data:`repro.service.pipeline.SCHEMA`), byte-identical to the
    batch ``monitor`` → ``recommend`` pipeline over the same records.
    ``refresh=1`` recomputes synchronously against the *current*
    calibration before answering; otherwise the last published document
    is served (404 until one exists).  Staleness metadata travels in
    ``X-Recommendation-*`` headers so the body stays canonical.
``GET /status[?tenant=NAME]``
    Staleness metadata as JSON (revision, age in records, drift since
    publish) — per tenant, or for all tenants without the parameter.
``GET /metrics`` / ``GET /health`` / ``GET /report``
    The observability endpoints, rendered by the exact same functions
    as :class:`repro.obs.server.MetricsServer`.

Threading model
---------------
The asyncio loop runs on a dedicated daemon thread behind a blocking
:meth:`start`/:meth:`stop` facade (mirroring ``MetricsServer``).  All
tenant state is touched only on the loop thread; background searches
run on :class:`~repro.core.search.BackgroundSearchExecutor` worker
threads against a *snapshot* of the calibrator (restored privately), so
ingestion never blocks on a search and a search never races ingestion.
A per-tenant lock serializes cache access between overlapping search
generations; results are published back onto the loop thread and only
if their generation is still current.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.core.goals import PerformabilityGoals
from repro.core.search.background import (
    BackgroundSearchExecutor,
    SearchOutcome,
)
from repro.exceptions import ReproError, ValidationError
from repro.io import Project
from repro.monitor.drift import DriftEvent
from repro.monitor.persistence import parse_record_line
from repro.monitor.stream import StreamingCalibrator
from repro.obs.server import (
    render_health,
    render_json_body,
    render_metrics,
    render_report,
)
from repro.service.pipeline import (
    SearchSettings,
    recommend_from_calibration,
    render_document,
)
from repro.service.state import DEFAULT_TENANT, ServiceState, TenantState

#: Every metric family the service exports, as ``(name, kind, help)``.
#: ``docs/OPERATIONS.md`` must reference each family by name —
#: ``tools/check_cli_docs.py`` gates that.  Families marked
#: ``per-tenant`` are exported once per tenant with a ``.<tenant>``
#: suffix.
SERVICE_METRICS: tuple[tuple[str, str, str], ...] = (
    ("service.http.requests", "counter",
     "HTTP requests accepted, any endpoint"),
    ("service.http.errors", "counter",
     "HTTP requests answered with a 4xx/5xx status"),
    ("service.events.ingested", "counter",
     "audit records ingested via POST /events"),
    ("service.events.rejected", "counter",
     "malformed POST /events lines rejected"),
    ("service.drift.confirmations", "counter",
     "drift events confirmed across all tenants"),
    ("service.searches.started", "counter",
     "background re-searches submitted"),
    ("service.searches.completed", "counter",
     "background re-searches that published a document"),
    ("service.searches.superseded", "counter",
     "re-searches cancelled or discarded because newer drift arrived"),
    ("service.searches.infeasible", "counter",
     "searches (background or refresh) with no goal-satisfying "
     "configuration"),
    ("service.searches.errors", "counter",
     "background re-searches that raised"),
    ("service.recommendations.published", "counter",
     "recommendation documents published (all tenants)"),
    ("service.recommendations.refreshed", "counter",
     "synchronous GET /recommendation?refresh=1 recomputations"),
    ("service.snapshot.saved", "counter",
     "service snapshots written (shutdown or explicit)"),
    ("service.snapshot.restored", "counter",
     "tenant shards restored from a snapshot at startup"),
    ("service.tenants", "gauge", "tenant shards currently live"),
    ("service.recommendation.revision", "per-tenant gauge",
     "published revision of the tenant's recommendation"),
    ("service.recommendation.age_records", "per-tenant gauge",
     "records ingested since the tenant's published revision"),
)

_JSON = "application/json; charset=utf-8"


class RecommendationService:
    """Long-running §7 recommendation loop over HTTP.

    Use as a context manager or via :meth:`start`/:meth:`stop`::

        service = RecommendationService(baseline, goals, port=0)
        with service:
            print(service.url)   # POST events, GET /recommendation
        # stop() wrote the snapshot when snapshot_path was given

    ``port=0`` binds an ephemeral port (read :attr:`port` back after
    :meth:`start`).  When ``snapshot_path`` names an existing file the
    service warm-restarts from it; on :meth:`stop` the current state is
    written back, so a restart cycle loses nothing.
    """

    def __init__(
        self,
        baseline: Project,
        goals: PerformabilityGoals,
        settings: SearchSettings | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        window: float = 1_000.0,
        snapshot_path: str | None = None,
        prefix: str = "repro",
    ) -> None:
        if not 0 <= port <= 65535:
            raise ValidationError(f"port {port} outside [0, 65535]")
        self.baseline = baseline
        self.goals = goals
        self.settings = settings if settings is not None else SearchSettings()
        self.host = host
        self.prefix = prefix
        self.window = window
        self.snapshot_path = snapshot_path
        self._requested_port = port
        self._bound_port: int | None = None
        self.state = self._initial_state()
        self.executor = BackgroundSearchExecutor()
        self._search_locks: dict[str, threading.Lock] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_future: asyncio.Future[None] | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    def _initial_state(self) -> ServiceState:
        if self.snapshot_path is not None:
            try:
                state = ServiceState.load_snapshot(
                    self.snapshot_path, on_drift=self._on_drift
                )
            except ValidationError as error:
                if "not found" not in str(error):
                    raise
            else:
                obs.count(
                    "service.snapshot.restored", len(state.tenants)
                )
                state.window = self.window
                return state
        return ServiceState(window=self.window, on_drift=self._on_drift)

    def _on_drift(self, tenant_name: str, event: DriftEvent) -> None:
        obs.count("service.drift.confirmations")
        obs.event(
            "service.drift",
            tenant=tenant_name,
            kind=event.kind,
            subject=event.subject,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (the ephemeral one when 0 was requested)."""
        if self._bound_port is not None:
            return self._bound_port
        return self._requested_port

    @property
    def url(self) -> str:
        """Base URL of the running service."""
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        """Whether the serving thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._thread is not None:
            raise ValidationError("recommendation service already started")
        self._started.clear()
        self._startup_error = None
        thread = threading.Thread(
            target=self._serve_thread,
            name="repro-recommendation-service",
            daemon=True,
        )
        self._thread = thread
        thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            error = self._startup_error
            self._thread = None
            self._startup_error = None
            if isinstance(error, ReproError):
                raise error
            raise ValidationError(
                f"service failed to start: {error}"
            ) from error
        if not self._started.is_set():
            raise ValidationError("service did not start within 30s")
        return self.port

    def _serve_thread(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve(loop))
        finally:
            loop.close()
            self._loop = None

    async def _serve(self, loop: asyncio.AbstractEventLoop) -> None:
        try:
            server = await asyncio.start_server(
                self._handle_connection, self.host, self._requested_port,
                reuse_address=True,
            )
        except BaseException as error:
            self._startup_error = error
            self._started.set()
            return
        self._server = server
        self._bound_port = server.sockets[0].getsockname()[1]
        self._stop_future = loop.create_future()
        self._started.set()
        try:
            await self._stop_future
        finally:
            server.close()
            await server.wait_closed()
            self._server = None

    def stop(self, snapshot: bool = True) -> None:
        """Drain searches, stop serving, optionally snapshot; idempotent.

        Background searches are cancelled (cooperatively) and joined
        before the snapshot is written, so the snapshot reflects the
        final published state.
        """
        if self._thread is None:
            return
        self.executor.shutdown(timeout=10.0)
        loop = self._loop
        if loop is not None:

            def _finish() -> None:
                future = self._stop_future
                if future is not None and not future.done():
                    future.set_result(None)

            try:
                loop.call_soon_threadsafe(_finish)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=10.0)
        self._thread = None
        if snapshot and self.snapshot_path is not None:
            tenants = self.state.save_snapshot(self.snapshot_path)
            obs.count("service.snapshot.saved")
            obs.event(
                "service.snapshot", path=self.snapshot_path,
                tenants=tenants,
            )

    def __enter__(self) -> "RecommendationService":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # HTTP plumbing (minimal HTTP/1.1, one request per connection)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            status, content_type, body, headers = await self._handle_request(
                reader
            )
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.LimitOverrunError,
            TimeoutError,
        ):
            writer.close()
            return
        except ValidationError as error:
            status, content_type, body, headers = (
                400, _JSON, render_json_body({"error": str(error)}), {},
            )
        except Exception as error:  # never kill the accept loop
            obs.count("service.http.errors")
            status, content_type, body, headers = (
                500, _JSON, render_json_body({"error": str(error)}), {},
            )
        if status >= 400:
            obs.count("service.http.errors")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed",
                  500: "Internal Server Error"}.get(status, "OK")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("utf-8")
        try:
            writer.write(head + body)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, str, bytes, dict[str, str]]:
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=10.0
        )
        if not request_line.strip():
            raise ConnectionError("empty request")
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(None, 2)
            )
        except ValueError:
            raise ValidationError("malformed request line") from None
        content_length = 0
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise ValidationError(
                        "bad Content-Length header"
                    ) from None
        body = b""
        if content_length > 0:
            body = await asyncio.wait_for(
                reader.readexactly(content_length), timeout=60.0
            )
        obs.count("service.http.requests")
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = {
            name: values[-1]
            for name, values in parse_qs(parts.query).items()
        }
        return self._route(method.upper(), path, query, body)

    def _route(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        body: bytes,
    ) -> tuple[int, str, bytes, dict[str, str]]:
        if path == "/events":
            if method != "POST":
                return self._method_not_allowed("POST")
            return self._post_events(query, body)
        if method != "GET":
            return self._method_not_allowed("GET")
        if path == "/recommendation":
            return self._get_recommendation(query)
        if path == "/status":
            return self._get_status(query)
        if path == "/metrics":
            content_type, rendered = render_metrics(
                obs.registry(), prefix=self.prefix
            )
            return 200, content_type, rendered, {}
        if path == "/health":
            content_type, rendered = render_health(
                {
                    "service": "repro.service",
                    "tenants": len(self.state.tenants),
                }
            )
            return 200, content_type, rendered, {}
        if path == "/report":
            content_type, rendered = render_report(
                obs.registry(), obs.tracer()
            )
            return 200, content_type, rendered, {}
        return (
            404, _JSON,
            render_json_body(
                {
                    "error": f"unknown path {path!r}",
                    "endpoints": [
                        "/events", "/recommendation", "/status",
                        "/metrics", "/health", "/report",
                    ],
                }
            ),
            {},
        )

    @staticmethod
    def _method_not_allowed(
        allowed: str,
    ) -> tuple[int, str, bytes, dict[str, str]]:
        return (
            405, _JSON,
            render_json_body({"error": f"method not allowed; use {allowed}"}),
            {"Allow": allowed},
        )

    # ------------------------------------------------------------------
    # Endpoint: POST /events
    # ------------------------------------------------------------------
    def _post_events(
        self, query: dict[str, str], body: bytes
    ) -> tuple[int, str, bytes, dict[str, str]]:
        tenant = self.state.tenant(query.get("tenant", DEFAULT_TENANT))
        obs.set_gauge("service.tenants", len(self.state.tenants))
        ingested = 0
        rejected: list[dict[str, Any]] = []
        confirmed: list[DriftEvent] = []
        for line_number, raw in enumerate(
            body.decode("utf-8", errors="replace").splitlines(), start=1
        ):
            line = raw.strip()
            if not line:
                continue
            try:
                record = parse_record_line(line, line_number)
                confirmed.extend(tenant.monitor.observe(record))
            except ValidationError as error:
                obs.count("service.events.rejected")
                if len(rejected) < 10:
                    rejected.append(
                        {"line": line_number, "error": str(error)}
                    )
                continue
            ingested += 1
        obs.count("service.events.ingested", ingested)
        tenant.drift_confirmations += len(confirmed)
        scheduled = self._maybe_schedule_search(
            tenant, drift_confirmed=bool(confirmed)
        )
        self._publish_gauges(tenant)
        document = {
            "tenant": tenant.name,
            "ingested": ingested,
            "rejected": len(rejected),
            "rejections": rejected,
            "records_seen": tenant.records_seen,
            "drift_confirmed": len(confirmed),
            "search_scheduled": scheduled,
        }
        status = 200 if ingested or not rejected else 400
        return status, _JSON, render_json_body(document), {}

    # ------------------------------------------------------------------
    # Background re-search
    # ------------------------------------------------------------------
    def _maybe_schedule_search(
        self, tenant: TenantState, drift_confirmed: bool
    ) -> bool:
        """Submit a background re-search when the published document
        is missing, stale, built on drifted calibration, or
        goal-violating.

        Staleness (records ingested past the published calibration
        position) counts: the loop must converge on the freshest
        calibration, and each superseding submission carries the
        *current* position, so a quiet tenant schedules nothing."""
        needs_search = (
            tenant.document is None
            or drift_confirmed
            or tenant.records_seen > tenant.records_at_publish
        )
        if not needs_search:
            result = tenant.document.get("result") or {}
            satisfied = result.get(
                "satisfied",
                (result.get("recommended") or {}).get("satisfied", False),
            )
            needs_search = (
                not tenant.document.get("feasible", False) or not satisfied
            )
        if not needs_search:
            return False
        try:
            state = tenant.calibrator.export_state()
        except ReproError:
            return False
        records_seen = tenant.records_seen
        if records_seen == 0:
            return False
        name = tenant.name
        lock = self._search_locks.setdefault(name, threading.Lock())
        cache = tenant.cache

        def task(stop_check: Callable[[], bool]) -> dict[str, Any]:
            private = StreamingCalibrator.restore_state(state)
            with lock:
                return recommend_from_calibration(
                    private,
                    self.baseline,
                    self.goals,
                    self.settings,
                    cache=cache,
                    stop_check=stop_check,
                )

        def on_outcome(outcome: SearchOutcome) -> None:
            self._search_finished(name, records_seen, outcome)

        self.executor.submit(name, task, on_outcome=on_outcome)
        obs.count("service.searches.started")
        return True

    def _search_finished(
        self, tenant_name: str, records_seen: int, outcome: SearchOutcome
    ) -> None:
        """Worker-thread callback: publish onto the loop thread."""
        if outcome.cancelled or not outcome.current:
            obs.count("service.searches.superseded")
            return
        if outcome.error is not None:
            obs.count("service.searches.errors")
            obs.event(
                "service.search.error",
                tenant=tenant_name,
                error=str(outcome.error),
            )
            return
        loop = self._loop
        if loop is None:
            return

        def publish() -> None:
            tenant = self.state.tenant(tenant_name)
            if self.executor.generation(tenant_name) != outcome.generation:
                obs.count("service.searches.superseded")
                return
            self._publish_document(tenant, outcome.result, records_seen)
            obs.count("service.searches.completed")

        try:
            loop.call_soon_threadsafe(publish)
        except RuntimeError:
            pass  # loop shut down while the search was finishing

    def _publish_document(
        self,
        tenant: TenantState,
        document: dict[str, Any],
        records_seen: int,
    ) -> None:
        tenant.publish(document, records_seen)
        obs.count("service.recommendations.published")
        if not document.get("feasible", True):
            obs.count("service.searches.infeasible")
        self._publish_gauges(tenant)

    def _publish_gauges(self, tenant: TenantState) -> None:
        meta = tenant.staleness()
        obs.set_gauge(
            f"service.recommendation.revision.{tenant.name}",
            meta["revision"],
        )
        obs.set_gauge(
            f"service.recommendation.age_records.{tenant.name}",
            meta["age_records"],
        )
        obs.set_gauge("service.tenants", len(self.state.tenants))

    # ------------------------------------------------------------------
    # Endpoint: GET /recommendation
    # ------------------------------------------------------------------
    def _get_recommendation(
        self, query: dict[str, str]
    ) -> tuple[int, str, bytes, dict[str, str]]:
        tenant = self.state.tenant(query.get("tenant", DEFAULT_TENANT))
        if query.get("refresh") in ("1", "true", "yes"):
            records_seen = tenant.records_seen
            lock = self._search_locks.setdefault(
                tenant.name, threading.Lock()
            )
            # The lock serializes cache access against any in-flight
            # background search for the same tenant (the search holds
            # it for its whole run and releases it independently of
            # this thread, so waiting here cannot deadlock).
            with lock:
                document = recommend_from_calibration(
                    tenant.calibrator,
                    self.baseline,
                    self.goals,
                    self.settings,
                    cache=tenant.cache,
                )
            obs.count("service.recommendations.refreshed")
            self._publish_document(tenant, document, records_seen)
        if tenant.document is None:
            return (
                404, _JSON,
                render_json_body(
                    {
                        "error": (
                            f"no recommendation published yet for tenant "
                            f"{tenant.name!r}; POST events and retry, or "
                            f"request ?refresh=1"
                        ),
                        "staleness": tenant.staleness(),
                    }
                ),
                {},
            )
        meta = tenant.staleness()
        headers = {
            "X-Recommendation-Revision": str(meta["revision"]),
            "X-Recommendation-Age-Records": str(meta["age_records"]),
            "X-Recommendation-Stale": (
                "true" if meta["stale"] else "false"
            ),
        }
        return 200, _JSON, render_document(tenant.document), headers

    # ------------------------------------------------------------------
    # Endpoint: GET /status
    # ------------------------------------------------------------------
    def _get_status(
        self, query: dict[str, str]
    ) -> tuple[int, str, bytes, dict[str, str]]:
        name = query.get("tenant")
        if name is not None:
            document: dict[str, Any] = self.state.tenant(name).staleness()
        else:
            document = {
                "tenants": {
                    tenant_name: shard.staleness()
                    for tenant_name, shard in sorted(
                        self.state.tenants.items()
                    )
                },
                "searches_active": self.executor.active_count(),
            }
        return 200, _JSON, render_json_body(document), {}
