"""Exporters: JSON metrics document, JSONL trace, Prometheus text.

Three machine-readable views of one instrumented run:

* :func:`metrics_document` / :func:`write_metrics_json` — a single JSON
  object bundling the metric snapshot with the per-span timing
  aggregates (the ``--metrics-out`` format of the CLI);
* :func:`write_trace_jsonl` — one JSON object per line for every
  finished span and every recorded simulation event, in the spirit of
  the WfCommons/WfBench standardized execution traces
  (the ``--trace-out`` format);
* :func:`prometheus_text` — a Prometheus text-exposition snapshot for
  scraping-style integrations.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, TextIO

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Tracer

#: Format identifier embedded in every JSON metrics document.
SCHEMA = "repro.obs/v1"

_INVALID_PROMETHEUS_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metrics_document(
    registry: MetricsRegistry, tracer: Tracer | None = None
) -> dict[str, Any]:
    """The combined metrics + span-timing document (JSON-serializable)."""
    document: dict[str, Any] = {
        "schema": SCHEMA,
        "metrics": registry.snapshot(),
    }
    if tracer is not None:
        document["spans"] = tracer.span_summary()
        document["events_recorded"] = len(tracer.events)
        document["records_dropped"] = tracer.dropped
    return document


def write_metrics_json(
    path: str | Path | TextIO,
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
) -> None:
    """Write :func:`metrics_document` as (non-finite-safe) JSON."""
    document = _sanitize(metrics_document(registry, tracer))
    if hasattr(path, "write"):
        json.dump(document, path, indent=2, sort_keys=True)
        path.write("\n")
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_trace_jsonl(
    path: str | Path | TextIO, tracer: Tracer
) -> int:
    """Write spans then events as JSON lines; returns the line count."""
    lines = [
        json.dumps(_sanitize(span.to_dict()), sort_keys=True)
        for span in tracer.spans
    ]
    lines.extend(
        json.dumps(_sanitize(event), sort_keys=True)
        for event in tracer.events
    )
    text = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(path, "write"):
        path.write(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return len(lines)


def prometheus_text(
    registry: MetricsRegistry, prefix: str = "repro"
) -> str:
    """Prometheus text-exposition snapshot of the registry.

    Metric names are sanitized (``linalg.gauss_seidel.sweeps`` becomes
    ``repro_linalg_gauss_seidel_sweeps``); histograms expand into the
    conventional ``_bucket``/``_sum``/``_count`` series.
    """
    lines: list[str] = []
    for name, metric in sorted(registry.metrics().items()):
        flat = _prometheus_name(prefix, name)
        if metric.help:
            lines.append(f"# HELP {flat} {_escape_help(metric.help)}")
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat} {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {flat} histogram")
            for boundary, count in metric.cumulative_buckets():
                lines.append(
                    f'{flat}_bucket{{le="{boundary:g}"}} {count}'
                )
            lines.append(f'{flat}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{flat}_sum {_format_value(metric.sum)}")
            lines.append(f"{flat}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _prometheus_name(prefix: str, name: str) -> str:
    flat = _INVALID_PROMETHEUS_CHARS.sub("_", f"{prefix}_{name}")
    if flat and flat[0].isdigit():
        flat = f"_{flat}"
    return flat


def _escape_help(text: str) -> str:
    """Escape a HELP line per the Prometheus text-exposition format.

    Backslashes become ``\\\\`` and newlines become the two-character
    sequence ``\\n``; nothing else is escaped on HELP lines.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render one sample value without precision loss.

    ``%g`` truncates to six significant digits, so counters past 1e6
    exported as ``1.23457e+06`` — integral values are now emitted as
    exact integers and everything else with ``repr``-level (shortest
    round-trip) precision.
    """
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def _sanitize(value: Any) -> Any:
    """Replace non-finite floats so the output is strict JSON."""
    if isinstance(value, dict):
        return {key: _sanitize(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(inner) for inner in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value
