"""Live observability endpoint: ``/metrics``, ``/health``, ``/report``.

A long-running monitored deployment (the paper's Section 7 tool loop,
ROADMAP item 3) needs its metrics *scrapable while work is in flight*,
not just dumped after the fact.  :class:`MetricsServer` wraps a
stdlib :class:`~http.server.ThreadingHTTPServer` around the process-wide
metrics registry and tracer:

* ``GET /metrics`` — the Prometheus text-exposition snapshot
  (:func:`repro.obs.export.prometheus_text`);
* ``GET /health``  — a tiny JSON liveness document;
* ``GET /report``  — the full JSON metrics document
  (:func:`repro.obs.export.metrics_document`), the same payload the
  CLI's ``--metrics-out`` writes.

The server runs on a daemon thread, binds to an ephemeral port when
``port=0``, and is safe to scrape concurrently with a running
simulation or search: snapshots materialize the key list first and read
plain floats/ints, so a request never blocks or corrupts recording.
The CLI exposes it as ``--serve-metrics PORT`` on ``simulate``,
``campaign``, ``recommend``, and ``monitor``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.exceptions import ValidationError
from repro.obs import export as _export
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

#: Content type mandated by the Prometheus text-exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _MetricsRequestHandler(BaseHTTPRequestHandler):
    """Routes the three read-only endpoints; logs nothing."""

    server: "_MetricsHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        """Serve ``/metrics``, ``/health``, or ``/report``."""
        owner = self.server.owner
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            body = _export.prometheus_text(
                owner.registry, prefix=owner.prefix
            ).encode("utf-8")
            self._respond(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/health":
            document = {"status": "ok", "endpoints": sorted(ENDPOINTS)}
            self._respond_json(200, document)
        elif path == "/report":
            document = _export.metrics_document(
                owner.registry, owner.tracer
            )
            self._respond_json(200, document)
        else:
            self._respond_json(
                404,
                {"error": f"unknown path {path!r}",
                 "endpoints": sorted(ENDPOINTS)},
            )

    def _respond_json(self, status: int, document: dict[str, Any]) -> None:
        body = json.dumps(
            _export._sanitize(document), indent=2, sort_keys=True
        ).encode("utf-8")
        self._respond(status, "application/json; charset=utf-8", body)

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Suppress per-request stderr logging (scrapes are frequent)."""


#: The paths the server answers.
ENDPOINTS = ("/metrics", "/health", "/report")


class _MetricsHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a back-reference to its owner."""

    daemon_threads = True
    owner: "MetricsServer"


class MetricsServer:
    """Serve the registry/tracer over HTTP from a daemon thread.

    Reads the process-wide default registry and tracer unless explicit
    instances are given.  Use as a context manager or via
    :meth:`start`/:meth:`stop`::

        with MetricsServer(port=0) as server:
            print(server.url)          # http://127.0.0.1:<ephemeral>
            ...                        # run a campaign, scrape away

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        prefix: str = "repro",
    ) -> None:
        if not 0 <= port <= 65535:
            raise ValidationError(f"port {port} outside [0, 65535]")
        from repro import obs

        self.host = host
        self.prefix = prefix
        self.registry = registry if registry is not None else obs.registry()
        self.tracer = tracer if tracer is not None else obs.tracer()
        self._requested_port = port
        self._server: _MetricsHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (the ephemeral one when 0 was requested)."""
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        """Whether the serving thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> int:
        """Bind and start serving on a daemon thread; returns the port."""
        if self._server is not None:
            raise ValidationError("metrics server already started")
        server = _MetricsHTTPServer(
            (self.host, self._requested_port), _MetricsRequestHandler
        )
        server.owner = self
        thread = threading.Thread(
            target=server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._server = server
        self._thread = thread
        thread.start()
        return self.port

    def stop(self) -> None:
        """Shut the server down and join the thread; idempotent."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
