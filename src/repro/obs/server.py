"""Live observability endpoint: ``/metrics``, ``/health``, ``/report``.

A long-running monitored deployment (the paper's Section 7 tool loop,
ROADMAP item 3) needs its metrics *scrapable while work is in flight*,
not just dumped after the fact.  :class:`MetricsServer` wraps a
stdlib :class:`~http.server.ThreadingHTTPServer` around the process-wide
metrics registry and tracer:

* ``GET /metrics`` — the Prometheus text-exposition snapshot
  (:func:`repro.obs.export.prometheus_text`);
* ``GET /health``  — a tiny JSON liveness document;
* ``GET /report``  — the full JSON metrics document
  (:func:`repro.obs.export.metrics_document`), the same payload the
  CLI's ``--metrics-out`` writes.

The server runs on a daemon thread, binds to an ephemeral port when
``port=0``, and is safe to scrape concurrently with a running
simulation or search: snapshots materialize the key list first and read
plain floats/ints, so a request never blocks or corrupts recording.
The CLI exposes it as ``--serve-metrics PORT`` on ``simulate``,
``campaign``, ``recommend``, and ``monitor``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.exceptions import ValidationError
from repro.obs import export as _export
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

#: Content type mandated by the Prometheus text-exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def render_json_body(document: dict[str, Any]) -> bytes:
    """Canonical JSON encoding shared by every observability endpoint."""
    return json.dumps(
        _export._sanitize(document), indent=2, sort_keys=True
    ).encode("utf-8")


def render_metrics(
    registry: MetricsRegistry, prefix: str = "repro"
) -> tuple[str, bytes]:
    """``(content type, body)`` of a ``/metrics`` Prometheus scrape.

    Shared by :class:`MetricsServer` and the asyncio recommendation
    service (:mod:`repro.service.server`), so both expose the identical
    text-exposition rendering of a registry.
    """
    body = _export.prometheus_text(registry, prefix=prefix).encode("utf-8")
    return PROMETHEUS_CONTENT_TYPE, body


def render_health(extra: dict[str, Any] | None = None) -> tuple[str, bytes]:
    """``(content type, body)`` of the ``/health`` liveness document."""
    document: dict[str, Any] = {
        "status": "ok", "endpoints": sorted(ENDPOINTS)
    }
    if extra:
        document.update(extra)
    return "application/json; charset=utf-8", render_json_body(document)


def render_report(
    registry: MetricsRegistry, tracer: Tracer
) -> tuple[str, bytes]:
    """``(content type, body)`` of the full ``/report`` JSON document."""
    document = _export.metrics_document(registry, tracer)
    return "application/json; charset=utf-8", render_json_body(document)


class _MetricsRequestHandler(BaseHTTPRequestHandler):
    """Routes the three read-only endpoints; logs nothing."""

    server: "_MetricsHTTPServer"

    #: Socket timeout for one request.  Without it, a client that
    #: connects and never sends a request line parks the handler thread
    #: in ``readline`` forever, which used to leave the listening port
    #: held across :meth:`MetricsServer.stop` (see ``block_on_close``
    #: below).  With the timeout the handler gives up and exits.
    timeout = 5.0

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        """Serve ``/metrics``, ``/health``, or ``/report``."""
        owner = self.server.owner
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            content_type, body = render_metrics(
                owner.registry, prefix=owner.prefix
            )
            self._respond(200, content_type, body)
        elif path == "/health":
            content_type, body = render_health()
            self._respond(200, content_type, body)
        elif path == "/report":
            content_type, body = render_report(owner.registry, owner.tracer)
            self._respond(200, content_type, body)
        else:
            self._respond_json(
                404,
                {"error": f"unknown path {path!r}",
                 "endpoints": sorted(ENDPOINTS)},
            )

    def handle_one_request(self) -> None:
        """One request, tolerating clients that hang up or stall."""
        try:
            super().handle_one_request()
        except TimeoutError:
            self.close_connection = True

    def _respond_json(self, status: int, document: dict[str, Any]) -> None:
        self._respond(
            status, "application/json; charset=utf-8",
            render_json_body(document),
        )

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Suppress per-request stderr logging (scrapes are frequent)."""


#: The paths the server answers.
ENDPOINTS = ("/metrics", "/health", "/report")


class _MetricsHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a back-reference to its owner.

    Shutdown is made deterministic for rapid stop/start cycles (the
    test suite and the service's warm restart both rebind the same
    port immediately):

    * ``allow_reuse_address`` (``SO_REUSEADDR``) lets a fresh server
      rebind while the previous socket lingers in ``TIME_WAIT``;
    * ``block_on_close = False`` keeps :meth:`server_close` from
      joining handler threads — a client that connected and went
      silent would otherwise park ``stop()`` until its (daemon)
      handler died, which could be never before handler timeouts.
    """

    daemon_threads = True
    allow_reuse_address = True
    block_on_close = False
    owner: "MetricsServer"


class MetricsServer:
    """Serve the registry/tracer over HTTP from a daemon thread.

    Reads the process-wide default registry and tracer unless explicit
    instances are given.  Use as a context manager or via
    :meth:`start`/:meth:`stop`::

        with MetricsServer(port=0) as server:
            print(server.url)          # http://127.0.0.1:<ephemeral>
            ...                        # run a campaign, scrape away

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        prefix: str = "repro",
    ) -> None:
        if not 0 <= port <= 65535:
            raise ValidationError(f"port {port} outside [0, 65535]")
        from repro import obs

        self.host = host
        self.prefix = prefix
        self.registry = registry if registry is not None else obs.registry()
        self.tracer = tracer if tracer is not None else obs.tracer()
        self._requested_port = port
        self._server: _MetricsHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (the ephemeral one when 0 was requested)."""
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        """Whether the serving thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> int:
        """Bind and start serving on a daemon thread; returns the port."""
        if self._server is not None:
            raise ValidationError("metrics server already started")
        server = _MetricsHTTPServer(
            (self.host, self._requested_port), _MetricsRequestHandler
        )
        server.owner = self
        thread = threading.Thread(
            target=server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._server = server
        self._thread = thread
        thread.start()
        return self.port

    def stop(self) -> None:
        """Shut the server down, release the port, join; idempotent.

        ``server_close()`` closes the listening socket immediately and
        — with ``block_on_close = False`` — never waits on handler
        threads, so the port is free for rebinding the moment this
        returns (``SO_REUSEADDR`` covers the ``TIME_WAIT`` tail).
        """
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
