"""Metric primitives: counters, gauges, histograms, and their registry.

The instrumentation layer of the reproduction is deliberately tiny and
dependency-free: a :class:`MetricsRegistry` hands out named metric
objects (get-or-create), every metric knows how to snapshot itself into
plain JSON-serializable data, and the registry can be disabled so that
the convenience recording methods (:meth:`MetricsRegistry.inc` etc.)
become cheap no-ops.  The analytic solvers, the configuration search,
and the simulated WFMS all record into the process-wide default registry
owned by :mod:`repro.obs`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.exceptions import ValidationError

#: Default histogram bucket boundaries: a 1-2-5 decade ladder wide
#: enough for iteration counts, truncation depths, and state-space sizes.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    base * 10**exponent
    for exponent in range(0, 7)
    for base in (1.0, 2.0, 5.0)
)


class Counter:
    """A monotonically increasing value (events, iterations, solves)."""

    kind = "counter"
    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current cumulative value."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0.0:
            raise ValidationError(
                f"counter {self.name}: increment must be >= 0, got {amount}"
            )
        self._value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self._value = 0.0

    def snapshot(self) -> dict:
        """JSON-ready document of the counter's state."""
        return {"type": self.kind, "value": self._value, "help": self.help}

    def export_state(self) -> dict:
        """Picklable state for cross-process merging."""
        return {"kind": self.kind, "help": self.help, "value": self._value}

    def merge_state(self, state: dict) -> None:
        """Fold an exported counter state in: values add."""
        self._value += float(state["value"])


class Gauge:
    """A value that can go up and down (queue depths, sizes)."""

    kind = "gauge"
    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current level."""
        return self._value

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the running maximum (high-water-mark gauges)."""
        if value > self._value:
            self._value = float(value)

    def reset(self) -> None:
        """Zero the gauge."""
        self._value = 0.0

    def snapshot(self) -> dict:
        """JSON-ready document of the gauge's state."""
        return {"type": self.kind, "value": self._value, "help": self.help}

    def export_state(self) -> dict:
        """Picklable state for cross-process merging."""
        return {"kind": self.kind, "help": self.help, "value": self._value}

    def merge_state(self, state: dict) -> None:
        """Fold an exported gauge state in: the maximum wins.

        Every gauge in this codebase is a level or high-water mark
        (calendar depth, worker counts, throughput); taking the maximum
        makes the merged value independent of merge order, which the
        deterministic cross-process propagation contract requires.
        """
        value = float(state["value"])
        if value > self._value:
            self._value = value


class Histogram:
    """A distribution summary: count/sum/min/max plus bucket counts.

    Buckets follow the Prometheus convention: ``buckets[i]`` counts
    observations with ``value <= boundary[i]`` (cumulative on export, an
    implicit ``+Inf`` bucket equals the total count).
    """

    kind = "histogram"
    __slots__ = ("name", "help", "_boundaries", "_buckets", "_count",
                 "_sum", "_min", "_max")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
    ) -> None:
        self.name = name
        self.help = help
        boundaries = tuple(
            sorted(DEFAULT_BUCKETS if buckets is None else buckets)
        )
        if not boundaries:
            raise ValidationError(
                f"histogram {name}: needs at least one bucket boundary"
            )
        self._boundaries = boundaries
        self._buckets = [0] * len(boundaries)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    @property
    def count(self) -> int:
        """Number of observed values."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean of the observed values."""
        return self._sum / self._count if self._count else 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        for i, boundary in enumerate(self._boundaries):
            if value <= boundary:
                self._buckets[i] += 1
                break

    def reset(self) -> None:
        """Drop all observations, keeping the bucket bounds."""
        self._buckets = [0] * len(self._boundaries)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_boundary, cumulative_count)`` pairs, Prometheus-style."""
        pairs = []
        running = 0
        for boundary, count in zip(self._boundaries, self._buckets):
            running += count
            pairs.append((boundary, running))
        return pairs

    def snapshot(self) -> dict:
        """JSON-ready document with bucket counts and summary stats."""
        return {
            "type": self.kind,
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "buckets": {
                f"{boundary:g}": count
                for boundary, count in self.cumulative_buckets()
            },
            "help": self.help,
        }

    def export_state(self) -> dict:
        """Picklable state (raw per-bucket counts) for merging."""
        return {
            "kind": self.kind,
            "help": self.help,
            "boundaries": list(self._boundaries),
            "buckets": list(self._buckets),
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
        }

    def merge_state(self, state: dict) -> None:
        """Fold an exported histogram state in (bucket-wise addition)."""
        boundaries = tuple(state["boundaries"])
        if boundaries != self._boundaries:
            raise ValidationError(
                f"histogram {self.name}: cannot merge states with "
                f"different bucket boundaries"
            )
        for i, count in enumerate(state["buckets"]):
            self._buckets[i] += count
        self._count += state["count"]
        self._sum += state["sum"]
        if state["min"] < self._min:
            self._min = state["min"]
        if state["max"] > self._max:
            self._max = state["max"]


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Named metrics with get-or-create semantics and an enable switch.

    The typed accessors (:meth:`counter`, :meth:`gauge`,
    :meth:`histogram`) always return a live metric object regardless of
    the enable state — tests and exporters need them.  The *recording*
    convenience methods (:meth:`inc`, :meth:`set_gauge`,
    :meth:`set_max`, :meth:`observe`) are the instrumentation entry
    points and become no-ops while the registry is disabled, which is
    what keeps observability effectively free when switched off.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._metrics: dict[str, Metric] = {}
        self._enabled = bool(enabled)

    # ------------------------------------------------------------------
    # Enable switch
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether recording is currently on."""
        return self._enabled

    def enable(self) -> None:
        """Turn recording on."""
        self._enabled = True

    def disable(self) -> None:
        """Turn recording off (recorded data is kept)."""
        self._enabled = False

    # ------------------------------------------------------------------
    # Metric accessors (get-or-create)
    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, factory, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            if not name:
                raise ValidationError("metric name must be non-empty")
            metric = factory(name, help)
            self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter called ``name``."""
        metric = self._get_or_create(name, Counter, help)
        if not isinstance(metric, Counter):
            raise ValidationError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge called ``name``."""
        metric = self._get_or_create(name, Gauge, help)
        if not isinstance(metric, Gauge):
            raise ValidationError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
    ) -> Histogram:
        """Get or create the histogram called ``name``."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help, buckets)
            self._metrics[name] = metric
        if not isinstance(metric, Histogram):
            raise ValidationError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    # ------------------------------------------------------------------
    # Recording (no-ops while disabled)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` when enabled."""
        if self._enabled:
            self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` when enabled."""
        if self._enabled:
            self.gauge(name).set(value)

    def set_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to at least ``value`` when enabled."""
        if self._enabled:
            self.gauge(name).set_max(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` in histogram ``name`` when enabled."""
        if self._enabled:
            self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def metrics(self) -> Mapping[str, Metric]:
        """Read-only view of the registered metrics."""
        return dict(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """JSON-serializable snapshot of every metric, sorted by name."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def reset(self) -> None:
        """Zero every metric, keeping the registrations."""
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Drop every registration."""
        self._metrics.clear()

    # ------------------------------------------------------------------
    # Cross-process snapshots
    # ------------------------------------------------------------------
    def export_snapshot(
        self, exclude_prefixes: tuple[str, ...] = ()
    ) -> dict[str, dict]:
        """Picklable snapshot of every metric that recorded anything.

        Zero-valued counters/gauges and empty histograms are skipped
        (worker processes re-declare the full well-known set, and
        shipping dozens of zeros per chunk is pure IPC overhead).
        ``exclude_prefixes`` drops metric families whose parent-side
        accounting is replayed by a different protocol — the search
        executors use it to keep adoption-replayed counters from being
        double counted.
        """
        snapshot: dict[str, dict] = {}
        for name in sorted(self._metrics):
            if any(name.startswith(prefix) for prefix in exclude_prefixes):
                continue
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                if metric.count == 0:
                    continue
            elif metric.value == 0.0:
                continue
            snapshot[name] = metric.export_state()
        return snapshot

    def merge_snapshot(self, snapshot: Mapping[str, dict]) -> int:
        """Fold an exported snapshot into this registry.

        Counters add, gauges keep the maximum, histograms merge
        bucket-wise — all order-independent operations, so merging the
        same set of worker snapshots in any order yields identical
        totals.  Missing metrics are created with the snapshot's kind
        and help text.  Merging bypasses the enable switch: the data
        was already recorded (in another process); this is bookkeeping,
        not new instrumentation.  Returns the number of merged metrics.
        """
        factories = {
            "counter": self.counter,
            "gauge": self.gauge,
            "histogram": self.histogram,
        }
        merged = 0
        for name in sorted(snapshot):
            state = snapshot[name]
            kind = state["kind"]
            if kind not in factories:
                raise ValidationError(
                    f"snapshot metric {name!r} has unknown kind {kind!r}"
                )
            if kind == "histogram" and name not in self._metrics:
                metric = self.histogram(
                    name, state["help"], state["boundaries"]
                )
            else:
                metric = factories[kind](name, state["help"])
            metric.merge_state(state)
            merged += 1
        return merged
