"""Observability: solver metrics, span tracing, and run reports.

This package is the instrumentation subsystem of the reproduction.  It
owns one process-wide :class:`~repro.obs.metrics.MetricsRegistry` and
one :class:`~repro.obs.trace.Tracer`, both **disabled by default**: the
module-level recording helpers (:func:`count`, :func:`span`,
:func:`observe`, :func:`event`, ...) are cheap no-ops until
:func:`enable` is called, so the analytic solvers and the simulator pay
essentially nothing when nobody is watching (enforced by
``tests/obs/test_overhead.py``), and produce byte-identical numerical
results either way (``tests/obs/test_regression.py``).

Typical use::

    from repro import obs

    obs.enable()
    ...  # run solvers / searches / simulations
    print(obs.run_report())
    obs.write_metrics_json("metrics.json")
    obs.disable()

Instrumented layers record under dotted metric names:

* ``linalg.*``    — Gauss-Seidel sweeps, direct/sparse solves;
* ``ctmc.*``      — uniformization steps, ``z_max`` truncation depths;
* ``performance.*`` / ``availability.*`` / ``performability.*`` — model
  evaluations and state-space sizes (Sections 4-6 pipelines);
* ``configuration.*`` — search iterations, candidates, goal violations;
* ``sim.*`` / ``wfms.*`` — events executed, queue depths, failures,
  repairs, instance and request counts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, TextIO

from repro.obs import export as _export
from repro.obs import report as _report
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NO_OP_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NO_OP_SPAN",
    "Span",
    "Tracer",
    "count",
    "disable",
    "enable",
    "event",
    "export_snapshot",
    "is_enabled",
    "merge_snapshot",
    "metrics_document",
    "observe",
    "prometheus_text",
    "registry",
    "reset",
    "run_report",
    "set_gauge",
    "set_max",
    "span",
    "tracer",
    "write_metrics_json",
    "write_trace_jsonl",
]

#: Well-known metrics pre-registered on :func:`reset` so that every
#: metrics dump exposes a stable key set (dashboards and the CLI's
#: ``--metrics-out`` consumers can rely on the solver iteration
#: counters and simulator event counts being present even at zero).
DECLARED_METRICS: tuple[tuple[str, str, str], ...] = (
    ("counter", "linalg.gauss_seidel.solves",
     "Gauss-Seidel systems solved"),
    ("counter", "linalg.gauss_seidel.sweeps",
     "Gauss-Seidel iteration sweeps across all solves"),
    ("counter", "linalg.direct.solves", "Dense LU solves"),
    ("counter", "linalg.sparse.solves", "Sparse LU steady-state solves"),
    ("counter", "ctmc.uniformization.steps",
     "Uniformized chain steps taken (z_max scans + taboo recursions)"),
    ("counter", "performance.assessments",
     "Full Section 4 configuration assessments"),
    ("counter", "performance.waiting_time_points",
     "Single-type M/G/1 waiting-time curve points computed"),
    ("counter", "evaluation_cache.assessments.hits",
     "Goal-assessment cache hits"),
    ("counter", "evaluation_cache.assessments.misses",
     "Goal-assessment cache misses"),
    ("counter", "evaluation_cache.waiting_curve.hits",
     "Per-type waiting-time curve cache hits"),
    ("counter", "evaluation_cache.waiting_curve.misses",
     "Per-type waiting-time curve cache misses"),
    ("counter", "evaluation_cache.pool_marginals.hits",
     "Per-pool birth-death marginal cache hits"),
    ("counter", "evaluation_cache.pool_marginals.misses",
     "Per-pool birth-death marginal cache misses"),
    ("counter", "evaluation_cache.evictions",
     "Entries evicted from the bounded evaluation caches"),
    ("counter", "evaluation_cache.merges",
     "Worker cache snapshots merged back into a parent cache"),
    ("counter", "availability.steady_state_solves",
     "Availability CTMC steady-state solves"),
    ("counter", "performability.evaluations",
     "Section 6 performability expectations computed"),
    ("counter", "configuration.search.iterations",
     "Configuration-search loop iterations across all algorithms"),
    ("counter", "configuration.search.batches",
     "Candidate batches proposed by the search engine"),
    ("counter", "configuration.search.speculative_evaluations",
     "Parallel candidate evaluations discarded after early termination"),
    ("gauge", "configuration.search.workers",
     "Worker processes serving the most recent parallel search"),
    ("counter", "configuration.candidates_evaluated",
     "Candidate configurations evaluated against the goals"),
    ("counter", "configuration.goal_violations",
     "Goal violations observed during search"),
    ("counter", "sim.events_executed",
     "Discrete-event simulator events dispatched"),
    ("counter", "sim.fastdraw.blocks_drawn",
     "Variate blocks pre-drawn by fast-RNG streams"),
    ("counter", "sim.fastdraw.variates_served",
     "Variates handed out by fast-RNG block streams"),
    ("counter", "wfms.requests_submitted",
     "Service requests submitted to server pools"),
    ("counter", "wfms.server_failures", "Replica failures injected"),
    ("counter", "wfms.server_repairs", "Replica repairs completed"),
    ("counter", "wfms.instances_started", "Workflow instances started"),
    ("counter", "wfms.instances_completed",
     "Workflow instances completed"),
    ("gauge", "sim.calendar.max_pending",
     "High-water mark of the event calendar"),
    ("gauge", "sim.events_per_second",
     "Event throughput (events per wall-clock second) of the most "
     "recent simulator dispatch loops"),
    ("counter", "campaign.replications_completed",
     "Simulation-campaign replications finished (serial or parallel)"),
    ("counter", "campaign.merges",
     "Replication statistics merged into campaign aggregates"),
    ("gauge", "campaign.workers",
     "Worker processes serving the most recent campaign"),
    ("counter", "obs.snapshots_merged",
     "Worker observability snapshots merged into this registry"),
    ("counter", "monitor.stream.records",
     "Audit-trail records ingested by the streaming calibrator"),
    ("counter", "monitor.drift.confirmed",
     "Confirmed parameter drifts across all drift detectors"),
    ("counter", "monitor.drift.cache_invalidations",
     "Evaluation caches invalidated after a confirmed drift"),
    ("counter", "evaluation_cache.invalidations",
     "Explicit evaluation-cache invalidations (drift or manual)"),
)

_registry = MetricsRegistry(enabled=False)
_tracer = Tracer(enabled=False)
_enabled = False


def _declare() -> None:
    for kind, name, help_text in DECLARED_METRICS:
        if kind == "counter":
            _registry.counter(name, help_text)
        elif kind == "gauge":
            _registry.gauge(name, help_text)
        else:
            _registry.histogram(name, help_text)


_declare()


# ----------------------------------------------------------------------
# Process-wide switch
# ----------------------------------------------------------------------
def enable() -> None:
    """Turn on the default registry and tracer."""
    global _enabled
    _enabled = True
    _registry.enable()
    _tracer.enable()


def disable() -> None:
    """Turn observability off again (recorded data is kept)."""
    global _enabled
    _enabled = False
    _registry.disable()
    _tracer.disable()


def is_enabled() -> bool:
    """Whether the process-wide observability switch is on."""
    return _enabled


def reset() -> None:
    """Zero all metrics, drop all spans/events, re-declare well-knowns."""
    _registry.reset()
    _tracer.reset()
    _declare()


def registry() -> MetricsRegistry:
    """The process-wide default metrics registry."""
    return _registry


def tracer() -> Tracer:
    """The process-wide default tracer."""
    return _tracer


# ----------------------------------------------------------------------
# Recording helpers (no-ops while disabled)
# ----------------------------------------------------------------------
def span(name: str, **attributes: Any):
    """Open a span on the default tracer (no-op singleton if disabled)."""
    return _tracer.span(name, **attributes)


def count(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` by ``amount`` (no-op while disabled)."""
    if _enabled:
        _registry.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op while disabled)."""
    if _enabled:
        _registry.gauge(name).set(value)


def set_max(name: str, value: float) -> None:
    """Raise gauge ``name`` to at least ``value`` (no-op while disabled)."""
    if _enabled:
        _registry.gauge(name).set_max(value)


def observe(name: str, value: float) -> None:
    """Record ``value`` in histogram ``name`` (no-op while disabled)."""
    if _enabled:
        _registry.histogram(name).observe(value)


def event(kind: str, **fields: Any) -> None:
    """Record a point event on the default tracer (no-op while disabled)."""
    if _enabled:
        _tracer.event(kind, **fields)


# ----------------------------------------------------------------------
# Cross-process propagation over the default instances
# ----------------------------------------------------------------------
def export_snapshot(
    exclude_prefixes: tuple[str, ...] = ()
) -> dict[str, Any]:
    """Picklable snapshot of the default registry and tracer.

    Worker processes call this after finishing their share of a
    parallel run; the parent folds the result back with
    :func:`merge_snapshot`, so instrumented parallel runs report the
    same totals as serial ones.
    """
    return {
        "metrics": _registry.export_snapshot(
            exclude_prefixes=exclude_prefixes
        ),
        "trace": _tracer.export_snapshot(),
    }


def merge_snapshot(snapshot: dict[str, Any] | None) -> int:
    """Fold a worker's :func:`export_snapshot` into the default
    registry and tracer.

    ``None`` (a worker that ran unobserved) is a no-op.  Returns the
    number of merged metrics and counts the merge under
    ``obs.snapshots_merged``.
    """
    if snapshot is None:
        return 0
    merged = _registry.merge_snapshot(snapshot.get("metrics", {}))
    _tracer.merge_snapshot(snapshot.get("trace", {}))
    count("obs.snapshots_merged")
    return merged


# ----------------------------------------------------------------------
# Export / reporting over the default instances
# ----------------------------------------------------------------------
def metrics_document() -> dict[str, Any]:
    """JSON-ready document of all metrics plus a trace summary."""
    return _export.metrics_document(_registry, _tracer)


def write_metrics_json(path: str | Path | TextIO) -> None:
    """Write :func:`metrics_document` as JSON to ``path``."""
    _export.write_metrics_json(path, _registry, _tracer)


def write_trace_jsonl(path: str | Path | TextIO) -> int:
    """Write finished spans as JSON lines; returns the span count."""
    return _export.write_trace_jsonl(path, _tracer)


def prometheus_text(prefix: str = "repro") -> str:
    """Prometheus text-format rendering of the default registry."""
    return _export.prometheus_text(_registry, prefix)


def run_report() -> str:
    """Human-readable run summary over the default metrics and spans."""
    return _report.run_report(_registry, _tracer)
