"""Lightweight span-based tracing with a no-op fast path.

A :class:`Span` measures the wall time (``time.perf_counter``) of one
named region — a Gauss-Seidel solve, a performability evaluation, a
simulation run — as a context manager.  Spans nest: the tracer keeps an
active-span stack, so each finished span records the name of its parent,
giving a hierarchical view of where a pipeline spent its time without
any global interpreter hooks.

While the tracer is disabled, :meth:`Tracer.span` returns a shared
:data:`NO_OP_SPAN` singleton without allocating anything, which keeps
instrumented hot paths within noise of their uninstrumented versions
(guarded by ``tests/obs/test_overhead.py``).

The tracer doubles as the sink for the optional simulation *event
trace*: discrete events (server failures, instance completions) recorded
via :meth:`Tracer.event` are exported alongside the spans as JSON lines.
"""

from __future__ import annotations

import time
from typing import Any

from repro.exceptions import ValidationError


class _NoOpSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        """Discard the attribute."""


#: The singleton no-op span (identity-checkable in tests).
NO_OP_SPAN = _NoOpSpan()


class Span:
    """One timed, named, attributed region of execution."""

    __slots__ = ("name", "attributes", "parent", "started_at", "duration",
                 "_tracer", "_start")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes
        self.parent: str | None = None
        self.started_at: float | None = None
        self.duration: float | None = None
        self._tracer = tracer
        self._start = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach or update one attribute (iterations, residuals, ...)."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        stack = self._tracer._stack
        self.parent = stack[-1].name if stack else None
        stack.append(self)
        self.started_at = time.perf_counter()
        self._start = self.started_at
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.duration = time.perf_counter() - self._start
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._finish(self)
        return False

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready document of the span."""
        return {
            "type": "span",
            "name": self.name,
            "parent": self.parent,
            "started_at": self.started_at,
            "duration_s": self.duration,
            "attributes": self.attributes,
        }


class Tracer:
    """Collects finished spans and discrete events.

    ``max_records`` bounds memory: beyond it, new spans/events are
    counted as dropped instead of stored (long simulation runs can emit
    millions of events).
    """

    def __init__(self, enabled: bool = True,
                 max_records: int = 1_000_000) -> None:
        if max_records < 1:
            raise ValidationError("max_records must be >= 1")
        self._enabled = bool(enabled)
        self._max_records = max_records
        self.spans: list[Span] = []
        self.events: list[dict[str, Any]] = []
        self.dropped = 0
        self._stack: list[Span] = []
        # Span aggregates folded in from other processes' tracers via
        # merge_snapshot; span_summary() combines them with local spans.
        self._merged_summary: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Enable switch
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether span recording is currently on."""
        return self._enabled

    def enable(self) -> None:
        """Turn span recording on."""
        self._enabled = True

    def disable(self) -> None:
        """Turn span recording off (recorded spans are kept)."""
        self._enabled = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Span | _NoOpSpan:
        """Open a timed span; use as a context manager.

        Returns the shared :data:`NO_OP_SPAN` while disabled — the fast
        path is a single attribute check plus the kwargs packing.
        """
        if not self._enabled:
            return NO_OP_SPAN
        return Span(self, name, attributes)

    def event(self, kind: str, **fields: Any) -> None:
        """Record one discrete event (simulation trace line)."""
        if not self._enabled:
            return
        if len(self.events) >= self._max_records:
            self.dropped += 1
            return
        record = {"type": "event", "event": kind}
        record.update(fields)
        self.events.append(record)

    def _finish(self, span: Span) -> None:
        if len(self.spans) >= self._max_records:
            self.dropped += 1
            return
        self.spans.append(span)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active_span(self) -> Span | None:
        """The innermost currently open span, if any."""
        return self._stack[-1] if self._stack else None

    def span_summary(self) -> dict[str, dict[str, float]]:
        """Aggregate finished spans by name: count and timing stats.

        Includes aggregates merged in from worker tracers via
        :meth:`merge_snapshot`.
        """
        summary: dict[str, dict[str, float]] = {
            name: dict(entry)
            for name, entry in self._merged_summary.items()
        }
        for span in self.spans:
            duration = span.duration or 0.0
            entry = summary.get(span.name)
            if entry is None:
                summary[span.name] = {
                    "count": 1,
                    "total_s": duration,
                    "min_s": duration,
                    "max_s": duration,
                }
            else:
                entry["count"] += 1
                entry["total_s"] += duration
                if duration < entry["min_s"]:
                    entry["min_s"] = duration
                if duration > entry["max_s"]:
                    entry["max_s"] = duration
        for entry in summary.values():
            entry["mean_s"] = entry["total_s"] / entry["count"]
        return dict(sorted(summary.items()))

    def reset(self) -> None:
        """Drop all recorded spans and events (open spans stay open)."""
        self.spans.clear()
        self.events.clear()
        self.dropped = 0
        self._merged_summary.clear()

    # ------------------------------------------------------------------
    # Cross-process snapshots
    # ------------------------------------------------------------------
    def export_snapshot(self) -> dict[str, Any]:
        """Picklable summary of this tracer for the parent process.

        Ships the per-name span aggregates (not individual spans — a
        worker may have finished thousands) plus the recorded discrete
        events and the drop count.
        """
        return {
            "spans": self.span_summary(),
            "events": list(self.events),
            "dropped": self.dropped,
        }

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold a worker tracer's snapshot into this tracer.

        Span aggregates combine count/total/min/max per name; events
        append in the order given (the caller merges worker snapshots
        in a deterministic order), still bounded by ``max_records``.
        Merging bypasses the enable switch — the records already exist.
        """
        for name, entry in snapshot.get("spans", {}).items():
            mine = self._merged_summary.get(name)
            if mine is None:
                self._merged_summary[name] = {
                    "count": entry["count"],
                    "total_s": entry["total_s"],
                    "min_s": entry["min_s"],
                    "max_s": entry["max_s"],
                }
                continue
            mine["count"] += entry["count"]
            mine["total_s"] += entry["total_s"]
            if entry["min_s"] < mine["min_s"]:
                mine["min_s"] = entry["min_s"]
            if entry["max_s"] > mine["max_s"]:
                mine["max_s"] = entry["max_s"]
        for event in snapshot.get("events", ()):
            if len(self.events) >= self._max_records:
                self.dropped += 1
                continue
            self.events.append(event)
        self.dropped += snapshot.get("dropped", 0)
