"""Human-readable run report over one instrumented run.

Renders the metric snapshot and the span-timing aggregates as the text
summary the CLI prints after ``recommend``/``simulate`` runs with
``--verbose`` — the quick "where did the time go, how many iterations
did the solvers take, what did the simulator do" view.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Tracer


def run_report(registry: MetricsRegistry, tracer: Tracer) -> str:
    """Render a run report; empty sections are omitted."""
    lines: list[str] = ["== Observability run report =="]

    summary = tracer.span_summary()
    if summary:
        total = sum(entry["total_s"] for entry in summary.values())
        lines.append("  Span timings (wall time):")
        lines.append(
            "    span                                   count    total s"
            "     mean ms   share"
        )
        ordered = sorted(
            summary.items(), key=lambda item: -item[1]["total_s"]
        )
        for name, entry in ordered:
            share = entry["total_s"] / total if total > 0.0 else 0.0
            lines.append(
                f"    {name:38s} {int(entry['count']):6d} "
                f"{entry['total_s']:10.4f} {entry['mean_s'] * 1e3:11.3f} "
                f"{share:6.1%}"
            )

    counters = [
        metric for metric in registry.metrics().values()
        if isinstance(metric, Counter) and metric.value > 0.0
    ]
    if counters:
        lines.append("  Counters:")
        for metric in sorted(counters, key=lambda m: m.name):
            lines.append(f"    {metric.name:44s} {metric.value:14g}")

    gauges = [
        metric for metric in registry.metrics().values()
        if isinstance(metric, Gauge) and metric.value != 0.0
    ]
    if gauges:
        lines.append("  Gauges:")
        for metric in sorted(gauges, key=lambda m: m.name):
            lines.append(f"    {metric.name:44s} {metric.value:14g}")

    histograms = [
        metric for metric in registry.metrics().values()
        if isinstance(metric, Histogram) and metric.count > 0
    ]
    if histograms:
        lines.append("  Histograms:")
        for metric in sorted(histograms, key=lambda m: m.name):
            snapshot = metric.snapshot()
            lines.append(
                f"    {metric.name:38s} n={metric.count:<7d} "
                f"mean={metric.mean:10.3f} min={snapshot['min']:g} "
                f"max={snapshot['max']:g}"
            )

    if tracer.dropped:
        lines.append(
            f"  ({tracer.dropped} trace records dropped at the cap)"
        )
    if len(lines) == 1:
        lines.append("  (no observations recorded)")
    return "\n".join(lines)
