"""M/G/1 queueing formulas (Pollaczek-Khinchine).

Section 4.4 of the paper models each server replica as an M/G/1 station:
Poisson request arrivals (justified by the superposition of many
independent workflow instances), a general service time characterized by
its first two moments, one server.  The mean waiting time is::

    w = arrival_rate * second_moment / (2 * (1 - utilization))

Saturated stations (utilization >= 1) yield an infinite waiting time by
default; callers that prefer an exception can pass ``strict=True``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import SaturationError, ValidationError


@dataclass(frozen=True)
class MG1Result:
    """All standard M/G/1 steady-state metrics of one station."""

    arrival_rate: float
    mean_service_time: float
    second_moment_service_time: float
    utilization: float
    mean_waiting_time: float
    mean_response_time: float
    mean_queue_length: float
    mean_number_in_system: float

    @property
    def is_stable(self) -> bool:
        """Whether the station can sustain its load."""
        return self.utilization < 1.0


def _validate_inputs(
    arrival_rate: float,
    mean_service_time: float,
    second_moment_service_time: float,
) -> None:
    if arrival_rate < 0.0:
        raise ValidationError("arrival rate must be >= 0")
    if mean_service_time <= 0.0:
        raise ValidationError("mean service time must be positive")
    if second_moment_service_time < mean_service_time**2:
        raise ValidationError(
            "second moment must be at least the squared mean"
        )


def mg1_mean_waiting_time(
    arrival_rate: float,
    mean_service_time: float,
    second_moment_service_time: float | None = None,
    strict: bool = False,
) -> float:
    """Mean waiting time (time in queue before service) of an M/G/1 station.

    ``second_moment_service_time`` defaults to the exponential value
    ``2 * mean**2`` (making the station an M/M/1).  Returns ``inf`` for a
    saturated station unless ``strict`` is set.
    """
    if second_moment_service_time is None:
        second_moment_service_time = 2.0 * mean_service_time**2
    _validate_inputs(arrival_rate, mean_service_time,
                     second_moment_service_time)
    utilization = arrival_rate * mean_service_time
    if utilization >= 1.0:
        if strict:
            raise SaturationError(
                f"station saturated: utilization {utilization:.4f} >= 1"
            )
        return math.inf
    return (arrival_rate * second_moment_service_time
            / (2.0 * (1.0 - utilization)))


def mg1_mean_response_time(
    arrival_rate: float,
    mean_service_time: float,
    second_moment_service_time: float | None = None,
    strict: bool = False,
) -> float:
    """Mean response time (waiting plus service) of an M/G/1 station."""
    waiting = mg1_mean_waiting_time(
        arrival_rate, mean_service_time, second_moment_service_time,
        strict=strict,
    )
    return waiting + mean_service_time


def mg1_mean_queue_length(
    arrival_rate: float,
    mean_service_time: float,
    second_moment_service_time: float | None = None,
    strict: bool = False,
) -> float:
    """Mean number of requests waiting in queue (Little's law on w)."""
    waiting = mg1_mean_waiting_time(
        arrival_rate, mean_service_time, second_moment_service_time,
        strict=strict,
    )
    if math.isinf(waiting):
        return math.inf
    return arrival_rate * waiting


def mg1_metrics(
    arrival_rate: float,
    mean_service_time: float,
    second_moment_service_time: float | None = None,
    strict: bool = False,
) -> MG1Result:
    """Compute the full set of M/G/1 metrics at once."""
    if second_moment_service_time is None:
        second_moment_service_time = 2.0 * mean_service_time**2
    waiting = mg1_mean_waiting_time(
        arrival_rate, mean_service_time, second_moment_service_time,
        strict=strict,
    )
    utilization = arrival_rate * mean_service_time
    response = waiting + mean_service_time
    queue_length = (math.inf if math.isinf(waiting)
                    else arrival_rate * waiting)
    in_system = (math.inf if math.isinf(response)
                 else arrival_rate * response)
    return MG1Result(
        arrival_rate=arrival_rate,
        mean_service_time=mean_service_time,
        second_moment_service_time=second_moment_service_time,
        utilization=utilization,
        mean_waiting_time=waiting,
        mean_response_time=response,
        mean_queue_length=queue_length,
        mean_number_in_system=in_system,
    )


def pooled_service_moments(
    arrival_rates: Sequence[float] | Iterable[float],
    mean_service_times: Sequence[float],
    second_moments: Sequence[float],
) -> tuple[float, float]:
    """First two moments of the service time of a merged request stream.

    When several server types share one computer (Section 4.4, generalized
    case), their Poisson streams superpose and the effective service time
    is a probabilistic mixture weighted by each stream's share of the total
    arrival rate.  Returns ``(mean, second_moment)`` of the mixture.
    """
    rates = [float(rate) for rate in arrival_rates]
    if len(rates) != len(mean_service_times) or len(rates) != len(second_moments):
        raise ValidationError("moment sequences must have equal length")
    if not rates:
        raise ValidationError("at least one stream is required")
    if any(rate < 0.0 for rate in rates):
        raise ValidationError("arrival rates must be >= 0")
    total = sum(rates)
    if total <= 0.0:
        raise ValidationError("total arrival rate must be positive")
    mean = sum(
        rate / total * b for rate, b in zip(rates, mean_service_times)
    )
    second = sum(
        rate / total * b2 for rate, b2 in zip(rates, second_moments)
    )
    return mean, second
