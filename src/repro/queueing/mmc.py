"""M/M/1 and M/M/c queueing formulas.

Used as oracles for the M/G/1 implementation (an M/M/1 is the exponential
special case) and to quantify how much the paper's "one M/G/1 per replica"
partitioning model loses against an idealized shared queue with ``c``
servers (see the ablation benchmark).
"""

from __future__ import annotations

import math

from repro.exceptions import SaturationError, ValidationError


def mm1_mean_waiting_time(
    arrival_rate: float, service_rate: float, strict: bool = False
) -> float:
    """Mean waiting time of an M/M/1 queue: ``rho / (mu - lambda)``."""
    if arrival_rate < 0.0:
        raise ValidationError("arrival rate must be >= 0")
    if service_rate <= 0.0:
        raise ValidationError("service rate must be positive")
    utilization = arrival_rate / service_rate
    if utilization >= 1.0:
        if strict:
            raise SaturationError(
                f"station saturated: utilization {utilization:.4f} >= 1"
            )
        return math.inf
    return utilization / (service_rate - arrival_rate)


def erlang_c(num_servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arriving request must wait.

    ``offered_load`` is ``a = lambda / mu`` in Erlangs; requires
    ``a < num_servers`` for stability.
    """
    if num_servers < 1:
        raise ValidationError("need at least one server")
    if offered_load < 0.0:
        raise ValidationError("offered load must be >= 0")
    if offered_load >= num_servers:
        return 1.0
    if offered_load == 0.0:
        return 0.0
    # Iterative Erlang-B then convert to Erlang-C (numerically stable).
    blocking = 1.0
    for k in range(1, num_servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    utilization = offered_load / num_servers
    return blocking / (1.0 - utilization * (1.0 - blocking))


def mmc_mean_waiting_time(
    arrival_rate: float,
    service_rate: float,
    num_servers: int,
    strict: bool = False,
) -> float:
    """Mean waiting time of an M/M/c queue with a shared queue."""
    if arrival_rate < 0.0:
        raise ValidationError("arrival rate must be >= 0")
    if service_rate <= 0.0:
        raise ValidationError("service rate must be positive")
    if num_servers < 1:
        raise ValidationError("need at least one server")
    offered_load = arrival_rate / service_rate
    if offered_load >= num_servers:
        if strict:
            raise SaturationError(
                f"station saturated: offered load {offered_load:.4f} >= "
                f"{num_servers} servers"
            )
        return math.inf
    wait_probability = erlang_c(num_servers, offered_load)
    return wait_probability / (num_servers * service_rate - arrival_rate)
