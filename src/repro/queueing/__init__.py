"""Queueing-theory utilities (M/G/1, M/M/1, M/M/c, Little's law).

The paper models every server replica as an M/G/1 station (Section 4.4)
and uses Little's law for the population of active workflow instances
(Section 4.3).  The M/M/1 and M/M/c results serve as special-case oracles
in the test suite and as alternatives for experimentation.
"""

from repro.queueing.littles_law import (
    mean_population,
    mean_response_time,
    throughput,
)
from repro.queueing.mg1 import (
    MG1Result,
    mg1_mean_queue_length,
    mg1_mean_response_time,
    mg1_mean_waiting_time,
    mg1_metrics,
    pooled_service_moments,
)
from repro.queueing.mmc import (
    erlang_c,
    mm1_mean_waiting_time,
    mmc_mean_waiting_time,
)

__all__ = [
    "MG1Result",
    "erlang_c",
    "mean_population",
    "mean_response_time",
    "mg1_mean_queue_length",
    "mg1_mean_response_time",
    "mg1_mean_waiting_time",
    "mg1_metrics",
    "mm1_mean_waiting_time",
    "mmc_mean_waiting_time",
    "pooled_service_moments",
    "throughput",
]
