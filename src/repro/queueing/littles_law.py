"""Little's law helpers.

Section 4.3 applies Little's law to the population of concurrently active
workflow instances: ``N_active = arrival_rate * turnaround_time``.  These
helpers make the three-way relationship explicit and validated.
"""

from __future__ import annotations

from repro.exceptions import ValidationError


def mean_population(arrival_rate: float, mean_time_in_system: float) -> float:
    """``N = lambda * T`` — e.g. concurrently active workflow instances."""
    if arrival_rate < 0.0:
        raise ValidationError("arrival rate must be >= 0")
    if mean_time_in_system < 0.0:
        raise ValidationError("mean time in system must be >= 0")
    return arrival_rate * mean_time_in_system


def mean_response_time(mean_population_: float, arrival_rate: float) -> float:
    """``T = N / lambda``."""
    if mean_population_ < 0.0:
        raise ValidationError("population must be >= 0")
    if arrival_rate <= 0.0:
        raise ValidationError("arrival rate must be positive")
    return mean_population_ / arrival_rate


def throughput(mean_population_: float, mean_time_in_system: float) -> float:
    """``lambda = N / T``."""
    if mean_population_ < 0.0:
        raise ValidationError("population must be >= 0")
    if mean_time_in_system <= 0.0:
        raise ValidationError("mean time in system must be positive")
    return mean_population_ / mean_time_in_system
