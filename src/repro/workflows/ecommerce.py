"""The paper's electronic purchase (EP) workflow (Figures 3 and 4).

A simplified e-commerce scenario similar to TPC-C, combining multiple
transaction types into one workflow with the full spectrum of control
flow: a branching split after ``NewOrder`` (pay by credit card or not), a
possible early termination on credit-card problems, the nested top-level
state ``Shipment_S`` spawning the two orthogonal/parallel subworkflows
``Notify_SC`` and ``Delivery_SC``, a join on their termination, a second
payment-mode split, a reminder *loop* for unpaid invoices, and the final
state ``EP_EXIT_S``.

The paper prints the chart's structure (Figure 3) and states that the
CTMC of Figure 4 has seven execution states plus the absorbing state; the
figure's transition probabilities and residence times are explicitly
"fictitious for mere illustration" and not printed in the text, so the
values below are this reproduction's documented choices.  They are chosen
to be *internally consistent*: the probability of paying by credit card
given that shipment is reached equals
``P(card) * P(card ok) / (P(card) * P(card ok) + P(no card))``.
"""

from __future__ import annotations

from repro.core.model_types import ActivitySpec
from repro.core.workflow_model import WorkflowDefinition
from repro.spec.builder import StateChartBuilder
from repro.spec.events import Not, Var
from repro.spec.statechart import StateChart
from repro.spec.translator import ActivityRegistry, translate_chart
from repro.workflows.common import (
    automated_activity,
    interactive_activity,
)

# ----------------------------------------------------------------------
# Branching probabilities (documented reproduction choices)
# ----------------------------------------------------------------------
#: Probability that the customer pays by credit card.
P_PAY_BY_CARD = 0.6
#: Probability that the credit card check finds a problem (terminating
#: the workflow early).
P_CARD_PROBLEM = 0.1
#: Probability that an invoice remains unpaid and a reminder is sent
#: (the loop of Figure 3).
P_REMINDER = 0.3
#: Probability that delivery finds the article out of stock.
P_OUT_OF_STOCK = 0.2

#: Probability of the credit-card branch after shipment, conditioned on
#: reaching shipment at all (kept consistent with the first split).
P_CARD_AFTER_SHIPMENT = (
    P_PAY_BY_CARD * (1.0 - P_CARD_PROBLEM)
    / (P_PAY_BY_CARD * (1.0 - P_CARD_PROBLEM) + (1.0 - P_PAY_BY_CARD))
)

# Mean activity durations in minutes (documented reproduction choices).
DURATION_NEW_ORDER = 10.0
DURATION_CREDIT_CARD_CHECK = 1.0
DURATION_PREPARE_NOTIFICATION = 0.5
DURATION_SEND_NOTIFICATION = 0.5
DURATION_CHECK_STOCK = 1.0
DURATION_REORDER = 120.0
DURATION_SHIP = 30.0
DURATION_UPDATE_BILLING = 1.0
DURATION_CREDIT_CARD_PAYMENT = 1.0
DURATION_INVOICE_PAYMENT = 30.0
DURATION_SEND_REMINDER = 2.0
DURATION_EXIT = 0.1


def ecommerce_activities() -> ActivityRegistry:
    """Activity catalogue of the EP workflow (Figure-1 request counts)."""
    activities: list[ActivitySpec] = [
        interactive_activity("NewOrder", DURATION_NEW_ORDER),
        automated_activity("CreditCardCheck", DURATION_CREDIT_CARD_CHECK),
        automated_activity(
            "PrepareNotification", DURATION_PREPARE_NOTIFICATION
        ),
        automated_activity("SendNotification", DURATION_SEND_NOTIFICATION),
        automated_activity("CheckStock", DURATION_CHECK_STOCK),
        automated_activity("Reorder", DURATION_REORDER),
        interactive_activity("Ship", DURATION_SHIP),
        automated_activity("UpdateBilling", DURATION_UPDATE_BILLING),
        automated_activity(
            "CreditCardPayment", DURATION_CREDIT_CARD_PAYMENT
        ),
        interactive_activity("InvoicePayment", DURATION_INVOICE_PAYMENT),
        automated_activity("SendReminder", DURATION_SEND_REMINDER),
    ]
    return ActivityRegistry({spec.name: spec for spec in activities})


def notify_subchart() -> StateChart:
    """``Notify_SC``: prepare and send the customer notification."""
    return (
        StateChartBuilder("Notify_SC")
        .activity_state("PrepareNotification")
        .activity_state("SendNotification")
        .initial("PrepareNotification")
        .transition("PrepareNotification", "SendNotification",
                    event="PrepareNotification_DONE")
        .build()
    )


def delivery_subchart() -> StateChart:
    """``Delivery_SC``: stock check, optional reorder, shipping, billing."""
    return (
        StateChartBuilder("Delivery_SC")
        .activity_state("CheckStock")
        .activity_state("Reorder")
        .activity_state("Ship")
        .activity_state("UpdateBilling")
        .initial("CheckStock")
        .transition("CheckStock", "Ship", event="CheckStock_DONE",
                    guard=Var("InStock"),
                    probability=1.0 - P_OUT_OF_STOCK)
        .transition("CheckStock", "Reorder", event="CheckStock_DONE",
                    guard=Not(Var("InStock")),
                    probability=P_OUT_OF_STOCK)
        .transition("Reorder", "Ship", event="Reorder_DONE")
        .transition("Ship", "UpdateBilling", event="Ship_DONE")
        .build()
    )


def ecommerce_chart() -> StateChart:
    """The top-level EP state chart (Figure 3).

    Seven top-level states — ``NewOrder``, ``CreditCardCheck``,
    ``Shipment_S`` (hosting the two parallel subworkflows),
    ``CreditCardPayment``, ``InvoicePayment``, ``SendReminder``,
    ``EP_EXIT_S`` — matching Figure 4's "seven further states" besides
    the absorbing state.
    """
    return (
        StateChartBuilder("EP")
        .activity_state("NewOrder")
        .activity_state("CreditCardCheck")
        .nested_state("Shipment_S", notify_subchart(), delivery_subchart())
        .activity_state("CreditCardPayment")
        .activity_state("InvoicePayment")
        .activity_state("SendReminder")
        .routing_state("EP_EXIT_S", mean_duration=DURATION_EXIT)
        .initial("NewOrder")
        .transition("NewOrder", "CreditCardCheck",
                    event="NewOrder_DONE", guard=Var("PayByCreditCard"),
                    probability=P_PAY_BY_CARD)
        .transition("NewOrder", "Shipment_S",
                    event="NewOrder_DONE",
                    guard=Not(Var("PayByCreditCard")),
                    probability=1.0 - P_PAY_BY_CARD)
        .transition("CreditCardCheck", "EP_EXIT_S",
                    event="CreditCardCheck_DONE",
                    guard=Var("CardProblem"),
                    probability=P_CARD_PROBLEM)
        .transition("CreditCardCheck", "Shipment_S",
                    event="CreditCardCheck_DONE",
                    guard=Not(Var("CardProblem")),
                    probability=1.0 - P_CARD_PROBLEM)
        .transition("Shipment_S", "CreditCardPayment",
                    guard=Var("PayByCreditCard"),
                    probability=P_CARD_AFTER_SHIPMENT)
        .transition("Shipment_S", "InvoicePayment",
                    guard=Not(Var("PayByCreditCard")),
                    probability=1.0 - P_CARD_AFTER_SHIPMENT)
        .transition("CreditCardPayment", "EP_EXIT_S",
                    event="CreditCardPayment_DONE")
        .transition("InvoicePayment", "EP_EXIT_S",
                    event="InvoicePayment_DONE",
                    guard=Var("InvoicePaid"),
                    probability=1.0 - P_REMINDER)
        .transition("InvoicePayment", "SendReminder",
                    event="InvoicePayment_DONE",
                    guard=Not(Var("InvoicePaid")),
                    probability=P_REMINDER)
        .transition("SendReminder", "InvoicePayment",
                    event="SendReminder_DONE")
        .build()
    )


def ecommerce_workflow() -> WorkflowDefinition:
    """The EP workflow translated into the model layer (Figure 4)."""
    return translate_chart(ecommerce_chart(), ecommerce_activities())
