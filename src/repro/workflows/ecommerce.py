"""The paper's electronic purchase (EP) workflow (Figures 3 and 4).

A simplified e-commerce scenario similar to TPC-C, combining multiple
transaction types into one workflow with the full spectrum of control
flow: a branching split after ``NewOrder`` (pay by credit card or not), a
possible early termination on credit-card problems, the nested top-level
state ``Shipment_S`` spawning the two orthogonal/parallel subworkflows
``Notify_SC`` and ``Delivery_SC``, a join on their termination, a second
payment-mode split, a reminder *loop* for unpaid invoices, and the final
state ``EP_EXIT_S``.

The paper prints the chart's structure (Figure 3) and states that the
CTMC of Figure 4 has seven execution states plus the absorbing state; the
figure's transition probabilities and residence times are explicitly
"fictitious for mere illustration" and not printed in the text, so the
values below are this reproduction's documented choices.  They are chosen
to be *internally consistent*: the probability of paying by credit card
given that shipment is reached equals
``P(card) * P(card ok) / (P(card) * P(card ok) + P(no card))``.

The workflow is expressed as a declarative
:class:`~repro.scenarios.spec.WorkflowSpec` (:func:`ecommerce_spec`); the
chart and model-layer artifacts are lowered from it.
"""

from __future__ import annotations

from repro.core.model_types import ActivitySpec
from repro.core.workflow_model import WorkflowDefinition
from repro.scenarios.adapters import (
    region_to_chart,
    spec_to_chart,
    spec_to_definition,
)
from repro.scenarios.spec import (
    ArrivalSpec,
    RegionSpec,
    WorkflowSpec,
    activity,
    arm,
    branch,
    loop,
    parallel,
    region,
    routing,
    sequence,
)
from repro.spec.events import Not, Var
from repro.spec.statechart import StateChart
from repro.spec.translator import ActivityRegistry
from repro.workflows.common import (
    automated_activity,
    interactive_activity,
    standard_server_types,
)

# ----------------------------------------------------------------------
# Branching probabilities (documented reproduction choices)
# ----------------------------------------------------------------------
#: Probability that the customer pays by credit card.
P_PAY_BY_CARD = 0.6
#: Probability that the credit card check finds a problem (terminating
#: the workflow early).
P_CARD_PROBLEM = 0.1
#: Probability that an invoice remains unpaid and a reminder is sent
#: (the loop of Figure 3).
P_REMINDER = 0.3
#: Probability that delivery finds the article out of stock.
P_OUT_OF_STOCK = 0.2

#: Probability of the credit-card branch after shipment, conditioned on
#: reaching shipment at all (kept consistent with the first split).
P_CARD_AFTER_SHIPMENT = (
    P_PAY_BY_CARD * (1.0 - P_CARD_PROBLEM)
    / (P_PAY_BY_CARD * (1.0 - P_CARD_PROBLEM) + (1.0 - P_PAY_BY_CARD))
)

# Mean activity durations in minutes (documented reproduction choices).
DURATION_NEW_ORDER = 10.0
DURATION_CREDIT_CARD_CHECK = 1.0
DURATION_PREPARE_NOTIFICATION = 0.5
DURATION_SEND_NOTIFICATION = 0.5
DURATION_CHECK_STOCK = 1.0
DURATION_REORDER = 120.0
DURATION_SHIP = 30.0
DURATION_UPDATE_BILLING = 1.0
DURATION_CREDIT_CARD_PAYMENT = 1.0
DURATION_INVOICE_PAYMENT = 30.0
DURATION_SEND_REMINDER = 2.0
DURATION_EXIT = 0.1

#: Default arrival rate in the benchmark mixes (``init-demo`` uses it).
ARRIVAL_RATE = 0.4


def _activity_specs() -> tuple[ActivitySpec, ...]:
    """The EP activities with Figure-1 request counts."""
    return (
        interactive_activity("NewOrder", DURATION_NEW_ORDER),
        automated_activity("CreditCardCheck", DURATION_CREDIT_CARD_CHECK),
        automated_activity(
            "PrepareNotification", DURATION_PREPARE_NOTIFICATION
        ),
        automated_activity("SendNotification", DURATION_SEND_NOTIFICATION),
        automated_activity("CheckStock", DURATION_CHECK_STOCK),
        automated_activity("Reorder", DURATION_REORDER),
        interactive_activity("Ship", DURATION_SHIP),
        automated_activity("UpdateBilling", DURATION_UPDATE_BILLING),
        automated_activity(
            "CreditCardPayment", DURATION_CREDIT_CARD_PAYMENT
        ),
        interactive_activity("InvoicePayment", DURATION_INVOICE_PAYMENT),
        automated_activity("SendReminder", DURATION_SEND_REMINDER),
    )


def ecommerce_activities() -> ActivityRegistry:
    """Activity catalogue of the EP workflow (Figure-1 request counts)."""
    return ActivityRegistry(
        {spec.name: spec for spec in _activity_specs()}
    )


def _notify_region() -> RegionSpec:
    """``Notify_SC``: prepare and send the customer notification."""
    return region(
        "Notify_SC",
        sequence(
            activity("PrepareNotification"),
            activity("SendNotification"),
        ),
    )


def _delivery_region() -> RegionSpec:
    """``Delivery_SC``: stock check, optional reorder, shipping, billing."""
    return region(
        "Delivery_SC",
        sequence(
            activity("CheckStock"),
            branch(
                arm(guard=Var("InStock"),
                    probability=1.0 - P_OUT_OF_STOCK),
                arm(activity("Reorder"), guard=Not(Var("InStock")),
                    probability=P_OUT_OF_STOCK),
            ),
            activity("Ship"),
            activity("UpdateBilling"),
        ),
    )


def notify_subchart() -> StateChart:
    """``Notify_SC`` lowered to a standalone state chart."""
    return region_to_chart(_notify_region())


def delivery_subchart() -> StateChart:
    """``Delivery_SC`` lowered to a standalone state chart."""
    return region_to_chart(_delivery_region())


def ecommerce_spec() -> WorkflowSpec:
    """The EP workflow as a declarative spec (Figure 3's structure)."""
    return WorkflowSpec(
        name="EP",
        body=sequence(
            activity("NewOrder"),
            branch(
                arm(
                    sequence(
                        activity("CreditCardCheck"),
                        branch(
                            arm(guard=Var("CardProblem"),
                                probability=P_CARD_PROBLEM,
                                next="final"),
                            arm(guard=Not(Var("CardProblem")),
                                probability=1.0 - P_CARD_PROBLEM),
                        ),
                    ),
                    guard=Var("PayByCreditCard"),
                    probability=P_PAY_BY_CARD,
                ),
                arm(guard=Not(Var("PayByCreditCard")),
                    probability=1.0 - P_PAY_BY_CARD),
            ),
            parallel("Shipment_S", _notify_region(), _delivery_region()),
            branch(
                arm(activity("CreditCardPayment"),
                    guard=Var("PayByCreditCard"),
                    probability=P_CARD_AFTER_SHIPMENT),
                arm(
                    loop(
                        activity("InvoicePayment"),
                        arm(guard=Var("InvoicePaid"),
                            probability=1.0 - P_REMINDER),
                        arm(activity("SendReminder"),
                            guard=Not(Var("InvoicePaid")),
                            probability=P_REMINDER,
                            next="loop"),
                    ),
                    guard=Not(Var("PayByCreditCard")),
                    probability=1.0 - P_CARD_AFTER_SHIPMENT,
                ),
            ),
            routing("EP_EXIT_S", DURATION_EXIT),
        ),
        activities=_activity_specs(),
        server_types=standard_server_types(),
        arrival=ArrivalSpec(rate=ARRIVAL_RATE),
    )


def ecommerce_chart() -> StateChart:
    """The top-level EP state chart (Figure 3), lowered from the spec.

    Seven top-level states — ``NewOrder``, ``CreditCardCheck``,
    ``Shipment_S`` (hosting the two parallel subworkflows),
    ``CreditCardPayment``, ``InvoicePayment``, ``SendReminder``,
    ``EP_EXIT_S`` — matching Figure 4's "seven further states" besides
    the absorbing state.
    """
    return spec_to_chart(ecommerce_spec())


def ecommerce_workflow() -> WorkflowDefinition:
    """The EP workflow translated into the model layer (Figure 4)."""
    return spec_to_definition(ecommerce_spec())
