"""A loan-approval workflow on the extended server landscape.

Unlike the other examples, this workflow spreads its activities over
*two* workflow engine types and *two* application server types (the
``m`` engines / ``n`` application servers of Figure 2): the credit-check
subworkflow runs on the second engine/application pair, modelling a
separate organizational unit.  Exercises configurations where the
critical server type differs per workflow type.
"""

from __future__ import annotations

from repro.core.workflow_model import WorkflowDefinition
from repro.spec.builder import StateChartBuilder
from repro.spec.events import Not, Var
from repro.spec.statechart import StateChart
from repro.spec.translator import ActivityRegistry, translate_chart
from repro.workflows.common import (
    APPLICATION_SERVER_2,
    WORKFLOW_ENGINE_2,
    automated_activity,
    interactive_activity,
)

#: Probability that the application is approved directly.
P_APPROVE = 0.55
#: Probability that the application is escalated for a senior review
#: (loop through an additional review state).
P_ESCALATE = 0.25

DURATION_APPLICATION = 20.0
DURATION_SCORING = 1.0
DURATION_CREDIT_BUREAU = 10.0
DURATION_COLLATERAL = 45.0
DURATION_DECISION = 15.0
DURATION_SENIOR_REVIEW = 120.0
DURATION_SIGNING = 60.0
DURATION_DISBURSE = 2.0
DURATION_CLOSE = 0.5


def loan_activities() -> ActivityRegistry:
    """Activity catalogue; credit activities live on the second pair."""
    activities = [
        interactive_activity("LoanApplication", DURATION_APPLICATION),
        automated_activity("Scoring", DURATION_SCORING),
        automated_activity(
            "CreditBureauQuery",
            DURATION_CREDIT_BUREAU,
            engine=WORKFLOW_ENGINE_2,
            app_server=APPLICATION_SERVER_2,
        ),
        interactive_activity(
            "CollateralAssessment",
            DURATION_COLLATERAL,
            engine=WORKFLOW_ENGINE_2,
        ),
        interactive_activity("LoanDecision", DURATION_DECISION),
        interactive_activity("SeniorReview", DURATION_SENIOR_REVIEW),
        interactive_activity("Signing", DURATION_SIGNING),
        automated_activity("Disburse", DURATION_DISBURSE),
        automated_activity("CloseFile", DURATION_CLOSE),
    ]
    return ActivityRegistry({spec.name: spec for spec in activities})


def credit_check_subchart() -> StateChart:
    """External credit bureau query (second engine/application pair)."""
    return (
        StateChartBuilder("CreditCheck_SC")
        .activity_state("CreditBureauQuery")
        .initial("CreditBureauQuery")
        .build()
    )


def risk_subchart() -> StateChart:
    """In-house scoring followed by collateral assessment."""
    return (
        StateChartBuilder("Risk_SC")
        .activity_state("Scoring")
        .activity_state("CollateralAssessment")
        .initial("Scoring")
        .transition("Scoring", "CollateralAssessment",
                    event="Scoring_DONE")
        .build()
    )


def loan_chart() -> StateChart:
    """Application -> parallel checks -> decision (approve / reject /
    escalate loop) -> signing -> disbursement -> close."""
    return (
        StateChartBuilder("LoanApproval")
        .activity_state("LoanApplication")
        .nested_state("Checks_S", credit_check_subchart(), risk_subchart())
        .activity_state("LoanDecision")
        .activity_state("SeniorReview")
        .activity_state("Signing")
        .activity_state("Disburse")
        .activity_state("CloseFile")
        .initial("LoanApplication")
        .transition("LoanApplication", "Checks_S",
                    event="LoanApplication_DONE")
        .transition("Checks_S", "LoanDecision")
        .transition("LoanDecision", "Signing",
                    event="LoanDecision_DONE", guard=Var("Approved"),
                    probability=P_APPROVE)
        .transition("LoanDecision", "SeniorReview",
                    event="LoanDecision_DONE", guard=Var("Escalated"),
                    probability=P_ESCALATE)
        .transition("LoanDecision", "CloseFile",
                    event="LoanDecision_DONE",
                    guard=Not(Var("Approved")),
                    probability=1.0 - P_APPROVE - P_ESCALATE)
        .transition("SeniorReview", "LoanDecision",
                    event="SeniorReview_DONE")
        .transition("Signing", "Disburse", event="Signing_DONE")
        .transition("Disburse", "CloseFile", event="Disburse_DONE")
        .build()
    )


def loan_workflow() -> WorkflowDefinition:
    """The loan-approval workflow translated into the model layer."""
    return translate_chart(loan_chart(), loan_activities())
