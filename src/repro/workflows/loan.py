"""A loan-approval workflow on the extended server landscape.

Unlike the other examples, this workflow spreads its activities over
*two* workflow engine types and *two* application server types (the
``m`` engines / ``n`` application servers of Figure 2): the credit-check
subworkflow runs on the second engine/application pair, modelling a
separate organizational unit.  Exercises configurations where the
critical server type differs per workflow type.

Expressed as a declarative :class:`~repro.scenarios.spec.WorkflowSpec`
(:func:`loan_spec`); chart and model lower from it.
"""

from __future__ import annotations

from repro.core.model_types import ActivitySpec
from repro.core.workflow_model import WorkflowDefinition
from repro.scenarios.adapters import (
    region_to_chart,
    spec_to_chart,
    spec_to_definition,
)
from repro.scenarios.spec import (
    ArrivalSpec,
    RegionSpec,
    WorkflowSpec,
    activity,
    arm,
    loop,
    parallel,
    region,
    sequence,
)
from repro.spec.events import Not, Var
from repro.spec.statechart import StateChart
from repro.spec.translator import ActivityRegistry
from repro.workflows.common import (
    APPLICATION_SERVER_2,
    WORKFLOW_ENGINE_2,
    automated_activity,
    extended_server_types,
    interactive_activity,
)

#: Probability that the application is approved directly.
P_APPROVE = 0.55
#: Probability that the application is escalated for a senior review
#: (loop through an additional review state).
P_ESCALATE = 0.25

DURATION_APPLICATION = 20.0
DURATION_SCORING = 1.0
DURATION_CREDIT_BUREAU = 10.0
DURATION_COLLATERAL = 45.0
DURATION_DECISION = 15.0
DURATION_SENIOR_REVIEW = 120.0
DURATION_SIGNING = 60.0
DURATION_DISBURSE = 2.0
DURATION_CLOSE = 0.5

#: Default arrival rate in the benchmark mixes (documented choice).
ARRIVAL_RATE = 0.02


def _activity_specs() -> tuple[ActivitySpec, ...]:
    """The loan activities; credit activities live on the second pair."""
    return (
        interactive_activity("LoanApplication", DURATION_APPLICATION),
        automated_activity("Scoring", DURATION_SCORING),
        automated_activity(
            "CreditBureauQuery",
            DURATION_CREDIT_BUREAU,
            engine=WORKFLOW_ENGINE_2,
            app_server=APPLICATION_SERVER_2,
        ),
        interactive_activity(
            "CollateralAssessment",
            DURATION_COLLATERAL,
            engine=WORKFLOW_ENGINE_2,
        ),
        interactive_activity("LoanDecision", DURATION_DECISION),
        interactive_activity("SeniorReview", DURATION_SENIOR_REVIEW),
        interactive_activity("Signing", DURATION_SIGNING),
        automated_activity("Disburse", DURATION_DISBURSE),
        automated_activity("CloseFile", DURATION_CLOSE),
    )


def loan_activities() -> ActivityRegistry:
    """Activity catalogue; credit activities live on the second pair."""
    return ActivityRegistry(
        {spec.name: spec for spec in _activity_specs()}
    )


def _credit_check_region() -> RegionSpec:
    """External credit bureau query (second engine/application pair)."""
    return region("CreditCheck_SC", activity("CreditBureauQuery"))


def _risk_region() -> RegionSpec:
    """In-house scoring followed by collateral assessment."""
    return region(
        "Risk_SC",
        sequence(
            activity("Scoring"),
            activity("CollateralAssessment"),
        ),
    )


def credit_check_subchart() -> StateChart:
    """``CreditCheck_SC`` lowered to a standalone state chart."""
    return region_to_chart(_credit_check_region())


def risk_subchart() -> StateChart:
    """``Risk_SC`` lowered to a standalone state chart."""
    return region_to_chart(_risk_region())


def loan_spec() -> WorkflowSpec:
    """Application -> parallel checks -> decision (approve / reject /
    escalate loop) -> signing -> disbursement -> close."""
    return WorkflowSpec(
        name="LoanApproval",
        body=sequence(
            activity("LoanApplication"),
            parallel(
                "Checks_S", _credit_check_region(), _risk_region()
            ),
            loop(
                activity("LoanDecision"),
                arm(
                    sequence(activity("Signing"), activity("Disburse")),
                    guard=Var("Approved"),
                    probability=P_APPROVE,
                ),
                arm(activity("SeniorReview"), guard=Var("Escalated"),
                    probability=P_ESCALATE, next="loop"),
                arm(guard=Not(Var("Approved")),
                    probability=1.0 - P_APPROVE - P_ESCALATE),
            ),
            activity("CloseFile"),
        ),
        activities=_activity_specs(),
        server_types=extended_server_types(),
        arrival=ArrivalSpec(rate=ARRIVAL_RATE),
    )


def loan_chart() -> StateChart:
    """The loan-approval chart, lowered from the spec."""
    return spec_to_chart(loan_spec())


def loan_workflow() -> WorkflowDefinition:
    """The loan-approval workflow translated into the model layer."""
    return spec_to_definition(loan_spec())
