"""Ready-made example workflows.

* :mod:`repro.workflows.ecommerce` — the paper's electronic purchase (EP)
  workflow of Figures 3 and 4, with parallel notify/delivery subworkflows
  and the invoice reminder loop.
* :mod:`repro.workflows.order_processing` — a flat, TPC-C-flavoured
  high-throughput pipeline with a rejection branch and payment retries.
* :mod:`repro.workflows.insurance` — a long-running claim-handling
  process with a documents loop and a parallel assessment phase.
* :mod:`repro.workflows.loan` — a loan approval spread over the extended
  five-type server landscape.
* :mod:`repro.workflows.travel` — a cross-organization travel booking
  with three parallel bookings and a cancellation branch.

All workflows share the server-type landscape and per-activity request
counts of :mod:`repro.workflows.common` (Figure 1 / Section 5.2).  Each
module expresses its workflow as a declarative
:class:`~repro.scenarios.spec.WorkflowSpec` (the ``*_spec()`` factory);
charts and model-layer definitions are lowered from the spec via
:mod:`repro.scenarios.adapters`.
"""

from repro.workflows.common import (
    APPLICATION_SERVER,
    APPLICATION_SERVER_2,
    COMMUNICATION_SERVER,
    WORKFLOW_ENGINE,
    WORKFLOW_ENGINE_2,
    automated_activity,
    extended_server_types,
    interactive_activity,
    standard_server_types,
)
from repro.workflows.ecommerce import (
    ecommerce_activities,
    ecommerce_chart,
    ecommerce_spec,
    ecommerce_workflow,
)
from repro.workflows.insurance import (
    insurance_activities,
    insurance_chart,
    insurance_spec,
    insurance_workflow,
)
from repro.workflows.loan import (
    loan_activities,
    loan_chart,
    loan_spec,
    loan_workflow,
)
from repro.workflows.order_processing import (
    order_processing_activities,
    order_processing_chart,
    order_processing_spec,
    order_processing_workflow,
)
from repro.workflows.travel import (
    travel_activities,
    travel_chart,
    travel_spec,
    travel_workflow,
)

__all__ = [
    "APPLICATION_SERVER",
    "APPLICATION_SERVER_2",
    "COMMUNICATION_SERVER",
    "WORKFLOW_ENGINE",
    "WORKFLOW_ENGINE_2",
    "automated_activity",
    "ecommerce_activities",
    "ecommerce_chart",
    "ecommerce_spec",
    "ecommerce_workflow",
    "extended_server_types",
    "insurance_activities",
    "insurance_chart",
    "insurance_spec",
    "insurance_workflow",
    "interactive_activity",
    "loan_activities",
    "loan_chart",
    "loan_spec",
    "loan_workflow",
    "order_processing_activities",
    "order_processing_chart",
    "order_processing_spec",
    "order_processing_workflow",
    "standard_server_types",
    "travel_activities",
    "travel_chart",
    "travel_spec",
    "travel_workflow",
]
