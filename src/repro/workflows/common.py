"""Shared building blocks of the example workflow library.

Centralizes the server-type landscape (the architectural model of
Figure 2 with the failure/repair rates of the Section 5.2 example) and
the canonical per-activity request counts of Figure 1, so that every
example workflow loads the same server types consistently.

**Time unit: minutes** throughout the example library.
"""

from __future__ import annotations

from repro.core.model_types import (
    ActivitySpec,
    ServerRole,
    ServerTypeIndex,
    ServerTypeSpec,
)

# ----------------------------------------------------------------------
# Server type names
# ----------------------------------------------------------------------
COMMUNICATION_SERVER = "comm-server"
WORKFLOW_ENGINE = "wf-engine"
APPLICATION_SERVER = "app-server"
WORKFLOW_ENGINE_2 = "wf-engine-2"
APPLICATION_SERVER_2 = "app-server-2"

# Failure rates of the Section 5.2 example (per minute): one failure per
# month / week / day, and a mean time to repair of 10 minutes for all.
FAILURE_RATE_COMM = 1.0 / 43200.0
FAILURE_RATE_ENGINE = 1.0 / 10080.0
FAILURE_RATE_APP = 1.0 / 1440.0
REPAIR_RATE = 1.0 / 10.0

# Mean service times per service request (minutes).  The paper collects
# these from runtime statistics; here they are documented constants chosen
# so that a moderately loaded department-scale workload (a few workflow
# arrivals per minute) drives utilizations into the interesting 0.3-0.9
# band.  Second moments default to the exponential value.
SERVICE_TIME_COMM = 0.02
SERVICE_TIME_ENGINE = 0.05
SERVICE_TIME_APP = 0.15

# Canonical request counts per activity execution, read off the sequence
# diagram of Figure 1: an automated activity induces 3 requests at its
# workflow engine, 2 at the communication server, and 3 at its application
# server; an interactive activity runs on a client and skips the
# application server.
AUTOMATED_REQUESTS = {
    WORKFLOW_ENGINE: 3.0,
    COMMUNICATION_SERVER: 2.0,
    APPLICATION_SERVER: 3.0,
}
INTERACTIVE_REQUESTS = {
    WORKFLOW_ENGINE: 3.0,
    COMMUNICATION_SERVER: 2.0,
}


def standard_server_types() -> ServerTypeIndex:
    """The paper's three-type landscape (Figure 2, Section 5.2 rates)."""
    return ServerTypeIndex(
        [
            ServerTypeSpec(
                name=COMMUNICATION_SERVER,
                mean_service_time=SERVICE_TIME_COMM,
                failure_rate=FAILURE_RATE_COMM,
                repair_rate=REPAIR_RATE,
                role=ServerRole.COMMUNICATION_SERVER,
            ),
            ServerTypeSpec(
                name=WORKFLOW_ENGINE,
                mean_service_time=SERVICE_TIME_ENGINE,
                failure_rate=FAILURE_RATE_ENGINE,
                repair_rate=REPAIR_RATE,
                role=ServerRole.WORKFLOW_ENGINE,
            ),
            ServerTypeSpec(
                name=APPLICATION_SERVER,
                mean_service_time=SERVICE_TIME_APP,
                failure_rate=FAILURE_RATE_APP,
                repair_rate=REPAIR_RATE,
                role=ServerRole.APPLICATION_SERVER,
            ),
        ]
    )


def extended_server_types() -> ServerTypeIndex:
    """A five-type landscape: two engine types and two application types.

    Matches Figure 2's general picture (m workflow engine types, n
    application server types, one communication server type) for
    experiments with richer load-partitioning decisions.
    """
    base = standard_server_types()
    return ServerTypeIndex(
        list(base.specs)
        + [
            ServerTypeSpec(
                name=WORKFLOW_ENGINE_2,
                mean_service_time=SERVICE_TIME_ENGINE,
                failure_rate=FAILURE_RATE_ENGINE,
                repair_rate=REPAIR_RATE,
                role=ServerRole.WORKFLOW_ENGINE,
            ),
            ServerTypeSpec(
                name=APPLICATION_SERVER_2,
                mean_service_time=SERVICE_TIME_APP,
                failure_rate=FAILURE_RATE_APP,
                repair_rate=REPAIR_RATE,
                role=ServerRole.APPLICATION_SERVER,
            ),
        ]
    )


def automated_activity(
    name: str,
    mean_duration: float,
    engine: str = WORKFLOW_ENGINE,
    app_server: str = APPLICATION_SERVER,
) -> ActivitySpec:
    """An automated activity with the Figure-1 request counts (3/2/3)."""
    return ActivitySpec(
        name=name,
        mean_duration=mean_duration,
        loads={
            engine: AUTOMATED_REQUESTS[WORKFLOW_ENGINE],
            COMMUNICATION_SERVER: AUTOMATED_REQUESTS[COMMUNICATION_SERVER],
            app_server: AUTOMATED_REQUESTS[APPLICATION_SERVER],
        },
        interactive=False,
    )


def interactive_activity(
    name: str,
    mean_duration: float,
    engine: str = WORKFLOW_ENGINE,
) -> ActivitySpec:
    """An interactive activity (client-executed; no application server)."""
    return ActivitySpec(
        name=name,
        mean_duration=mean_duration,
        loads={
            engine: INTERACTIVE_REQUESTS[WORKFLOW_ENGINE],
            COMMUNICATION_SERVER: INTERACTIVE_REQUESTS[COMMUNICATION_SERVER],
        },
        interactive=True,
    )
