"""A cross-organization travel-booking workflow.

The paper's abstract motivates WFMSs "geared for the orchestration of
enterprise-wide or even 'virtual-enterprise'-style business processes
across multiple organizations"; this workflow models that setting: three
*parallel* bookings (flight, hotel, rental car) handled by different
organizations, a confirmation step, and a cancellation/compensation
branch that undoes the bookings when the customer rejects the offer —
the widest parallel join in the example library.

Expressed as a declarative :class:`~repro.scenarios.spec.WorkflowSpec`
(:func:`travel_spec`); chart and model lower from it.
"""

from __future__ import annotations

from repro.core.model_types import ActivitySpec
from repro.core.workflow_model import WorkflowDefinition
from repro.scenarios.adapters import (
    region_to_chart,
    spec_to_chart,
    spec_to_definition,
)
from repro.scenarios.spec import (
    ArrivalSpec,
    RegionSpec,
    WorkflowSpec,
    activity,
    arm,
    branch,
    parallel,
    region,
    sequence,
)
from repro.spec.events import Not, Var
from repro.spec.statechart import StateChart
from repro.spec.translator import ActivityRegistry
from repro.workflows.common import (
    automated_activity,
    interactive_activity,
    standard_server_types,
)

#: Probability that the customer accepts the combined offer.
P_ACCEPT = 0.8
#: Probability that a hotel needs a manual room negotiation round.
P_NEGOTIATE = 0.15

DURATION_REQUEST = 15.0
DURATION_FLIGHT_SEARCH = 2.0
DURATION_FLIGHT_BOOK = 1.0
DURATION_HOTEL_SEARCH = 3.0
DURATION_NEGOTIATE = 60.0
DURATION_HOTEL_BOOK = 1.0
DURATION_CAR_BOOK = 2.0
DURATION_CONFIRM = 30.0
DURATION_INVOICE = 2.0
DURATION_CANCEL = 5.0
DURATION_CLOSE = 0.2

#: Default arrival rate in the benchmark mixes (documented choice).
ARRIVAL_RATE = 0.1


def _activity_specs() -> tuple[ActivitySpec, ...]:
    """The travel-booking activities with Figure-1 request counts."""
    return (
        interactive_activity("TravelRequest", DURATION_REQUEST),
        automated_activity("FlightSearch", DURATION_FLIGHT_SEARCH),
        automated_activity("FlightBooking", DURATION_FLIGHT_BOOK),
        automated_activity("HotelSearch", DURATION_HOTEL_SEARCH),
        interactive_activity("RoomNegotiation", DURATION_NEGOTIATE),
        automated_activity("HotelBooking", DURATION_HOTEL_BOOK),
        automated_activity("CarBooking", DURATION_CAR_BOOK),
        interactive_activity("ConfirmOffer", DURATION_CONFIRM),
        automated_activity("SendInvoice", DURATION_INVOICE),
        automated_activity("CancelBookings", DURATION_CANCEL),
        automated_activity("CloseTrip", DURATION_CLOSE),
    )


def travel_activities() -> ActivityRegistry:
    """Activity catalogue of the travel-booking workflow."""
    return ActivityRegistry(
        {spec.name: spec for spec in _activity_specs()}
    )


def _flight_region() -> RegionSpec:
    """Airline organization: search, then book."""
    return region(
        "Flight_SC",
        sequence(activity("FlightSearch"), activity("FlightBooking")),
    )


def _hotel_region() -> RegionSpec:
    """Hotel chain: search, optional negotiation round, booking."""
    return region(
        "Hotel_SC",
        sequence(
            activity("HotelSearch"),
            branch(
                arm(activity("RoomNegotiation"),
                    guard=Var("NeedsNegotiation"),
                    probability=P_NEGOTIATE),
                arm(guard=Not(Var("NeedsNegotiation")),
                    probability=1.0 - P_NEGOTIATE),
            ),
            activity("HotelBooking"),
        ),
    )


def _car_region() -> RegionSpec:
    """Car rental agency: a single automated booking."""
    return region("Car_SC", activity("CarBooking"))


def flight_subchart() -> StateChart:
    """``Flight_SC`` lowered to a standalone state chart."""
    return region_to_chart(_flight_region())


def hotel_subchart() -> StateChart:
    """``Hotel_SC`` lowered to a standalone state chart."""
    return region_to_chart(_hotel_region())


def car_subchart() -> StateChart:
    """``Car_SC`` lowered to a standalone state chart."""
    return region_to_chart(_car_region())


def travel_spec() -> WorkflowSpec:
    """Request -> three parallel bookings -> confirm -> invoice/cancel."""
    return WorkflowSpec(
        name="TravelBooking",
        body=sequence(
            activity("TravelRequest"),
            parallel(
                "Bookings_S",
                _flight_region(),
                _hotel_region(),
                _car_region(),
            ),
            activity("ConfirmOffer"),
            branch(
                arm(activity("SendInvoice"), guard=Var("OfferAccepted"),
                    probability=P_ACCEPT),
                arm(activity("CancelBookings"),
                    guard=Not(Var("OfferAccepted")),
                    probability=1.0 - P_ACCEPT),
            ),
            activity("CloseTrip"),
        ),
        activities=_activity_specs(),
        server_types=standard_server_types(),
        arrival=ArrivalSpec(rate=ARRIVAL_RATE),
    )


def travel_chart() -> StateChart:
    """The travel-booking chart, lowered from the spec."""
    return spec_to_chart(travel_spec())


def travel_workflow() -> WorkflowDefinition:
    """The travel-booking workflow translated into the model layer."""
    return spec_to_definition(travel_spec())
