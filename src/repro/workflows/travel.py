"""A cross-organization travel-booking workflow.

The paper's abstract motivates WFMSs "geared for the orchestration of
enterprise-wide or even 'virtual-enterprise'-style business processes
across multiple organizations"; this workflow models that setting: three
*parallel* bookings (flight, hotel, rental car) handled by different
organizations, a confirmation step, and a cancellation/compensation
branch that undoes the bookings when the customer rejects the offer —
the widest parallel join in the example library.
"""

from __future__ import annotations

from repro.core.workflow_model import WorkflowDefinition
from repro.spec.builder import StateChartBuilder
from repro.spec.events import Not, Var
from repro.spec.statechart import StateChart
from repro.spec.translator import ActivityRegistry, translate_chart
from repro.workflows.common import automated_activity, interactive_activity

#: Probability that the customer accepts the combined offer.
P_ACCEPT = 0.8
#: Probability that a hotel needs a manual room negotiation round.
P_NEGOTIATE = 0.15

DURATION_REQUEST = 15.0
DURATION_FLIGHT_SEARCH = 2.0
DURATION_FLIGHT_BOOK = 1.0
DURATION_HOTEL_SEARCH = 3.0
DURATION_NEGOTIATE = 60.0
DURATION_HOTEL_BOOK = 1.0
DURATION_CAR_BOOK = 2.0
DURATION_CONFIRM = 30.0
DURATION_INVOICE = 2.0
DURATION_CANCEL = 5.0
DURATION_CLOSE = 0.2


def travel_activities() -> ActivityRegistry:
    """Activity catalogue of the travel-booking workflow."""
    activities = [
        interactive_activity("TravelRequest", DURATION_REQUEST),
        automated_activity("FlightSearch", DURATION_FLIGHT_SEARCH),
        automated_activity("FlightBooking", DURATION_FLIGHT_BOOK),
        automated_activity("HotelSearch", DURATION_HOTEL_SEARCH),
        interactive_activity("RoomNegotiation", DURATION_NEGOTIATE),
        automated_activity("HotelBooking", DURATION_HOTEL_BOOK),
        automated_activity("CarBooking", DURATION_CAR_BOOK),
        interactive_activity("ConfirmOffer", DURATION_CONFIRM),
        automated_activity("SendInvoice", DURATION_INVOICE),
        automated_activity("CancelBookings", DURATION_CANCEL),
        automated_activity("CloseTrip", DURATION_CLOSE),
    ]
    return ActivityRegistry({spec.name: spec for spec in activities})


def flight_subchart() -> StateChart:
    """Airline organization: search, then book."""
    return (
        StateChartBuilder("Flight_SC")
        .activity_state("FlightSearch")
        .activity_state("FlightBooking")
        .initial("FlightSearch")
        .transition("FlightSearch", "FlightBooking",
                    event="FlightSearch_DONE")
        .build()
    )


def hotel_subchart() -> StateChart:
    """Hotel chain: search, optional negotiation round, booking."""
    return (
        StateChartBuilder("Hotel_SC")
        .activity_state("HotelSearch")
        .activity_state("RoomNegotiation")
        .activity_state("HotelBooking")
        .initial("HotelSearch")
        .transition("HotelSearch", "RoomNegotiation",
                    event="HotelSearch_DONE", guard=Var("NeedsNegotiation"),
                    probability=P_NEGOTIATE)
        .transition("HotelSearch", "HotelBooking",
                    event="HotelSearch_DONE",
                    guard=Not(Var("NeedsNegotiation")),
                    probability=1.0 - P_NEGOTIATE)
        .transition("RoomNegotiation", "HotelBooking",
                    event="RoomNegotiation_DONE")
        .build()
    )


def car_subchart() -> StateChart:
    """Car rental agency: a single automated booking."""
    return (
        StateChartBuilder("Car_SC")
        .activity_state("CarBooking")
        .initial("CarBooking")
        .build()
    )


def travel_chart() -> StateChart:
    """Request -> three parallel bookings -> confirm -> invoice/cancel."""
    return (
        StateChartBuilder("TravelBooking")
        .activity_state("TravelRequest")
        .nested_state(
            "Bookings_S", flight_subchart(), hotel_subchart(), car_subchart()
        )
        .activity_state("ConfirmOffer")
        .activity_state("SendInvoice")
        .activity_state("CancelBookings")
        .activity_state("CloseTrip")
        .initial("TravelRequest")
        .transition("TravelRequest", "Bookings_S",
                    event="TravelRequest_DONE")
        .transition("Bookings_S", "ConfirmOffer")
        .transition("ConfirmOffer", "SendInvoice",
                    event="ConfirmOffer_DONE", guard=Var("OfferAccepted"),
                    probability=P_ACCEPT)
        .transition("ConfirmOffer", "CancelBookings",
                    event="ConfirmOffer_DONE",
                    guard=Not(Var("OfferAccepted")),
                    probability=1.0 - P_ACCEPT)
        .transition("SendInvoice", "CloseTrip", event="SendInvoice_DONE")
        .transition("CancelBookings", "CloseTrip",
                    event="CancelBookings_DONE")
        .build()
    )


def travel_workflow() -> WorkflowDefinition:
    """The travel-booking workflow translated into the model layer."""
    return translate_chart(travel_chart(), travel_activities())
