"""An insurance claim-handling workflow.

Long-running, document-heavy, with a resubmission loop and a parallel
assessment phase — the "enterprise-wide business process" archetype of
the paper's introduction (the second author's affiliation being a bank is
no accident).  Used in benchmark mixes to stress turnaround-time-driven
load (Little's law keeps many instances concurrently active).
"""

from __future__ import annotations

from repro.core.workflow_model import WorkflowDefinition
from repro.spec.builder import StateChartBuilder
from repro.spec.events import Not, Var
from repro.spec.statechart import StateChart
from repro.spec.translator import ActivityRegistry, translate_chart
from repro.workflows.common import automated_activity, interactive_activity

#: Probability that submitted documents are incomplete (loop back).
P_DOCUMENTS_MISSING = 0.25
#: Probability that the claim is approved after assessment.
P_APPROVE = 0.7

DURATION_REGISTER = 15.0
DURATION_CHECK_COVERAGE = 2.0
DURATION_REQUEST_DOCUMENTS = 240.0
DURATION_DAMAGE_INSPECTION = 90.0
DURATION_WITNESS_REVIEW = 60.0
DURATION_FRAUD_SCORING = 5.0
DURATION_DECIDE = 30.0
DURATION_PAY = 3.0
DURATION_REJECT_LETTER = 10.0
DURATION_CLOSE = 0.5


def insurance_activities() -> ActivityRegistry:
    """Activity catalogue of the claim-handling workflow."""
    activities = [
        interactive_activity("RegisterClaim", DURATION_REGISTER),
        automated_activity("CheckCoverage", DURATION_CHECK_COVERAGE),
        interactive_activity(
            "RequestDocuments", DURATION_REQUEST_DOCUMENTS
        ),
        interactive_activity(
            "DamageInspection", DURATION_DAMAGE_INSPECTION
        ),
        interactive_activity("WitnessReview", DURATION_WITNESS_REVIEW),
        automated_activity("FraudScoring", DURATION_FRAUD_SCORING),
        interactive_activity("DecideClaim", DURATION_DECIDE),
        automated_activity("PayClaim", DURATION_PAY),
        automated_activity("RejectLetter", DURATION_REJECT_LETTER),
        automated_activity("CloseClaim", DURATION_CLOSE),
    ]
    return ActivityRegistry({spec.name: spec for spec in activities})


def inspection_subchart() -> StateChart:
    """Physical assessment: damage inspection, then witness review."""
    return (
        StateChartBuilder("Inspection_SC")
        .activity_state("DamageInspection")
        .activity_state("WitnessReview")
        .initial("DamageInspection")
        .transition("DamageInspection", "WitnessReview",
                    event="DamageInspection_DONE")
        .build()
    )


def fraud_subchart() -> StateChart:
    """Automated fraud scoring, running in parallel to the inspection."""
    return (
        StateChartBuilder("Fraud_SC")
        .activity_state("FraudScoring")
        .initial("FraudScoring")
        .build()
    )


def insurance_chart() -> StateChart:
    """Register -> coverage check (documents loop) -> parallel assessment
    -> decision -> pay or reject -> close."""
    return (
        StateChartBuilder("InsuranceClaim")
        .activity_state("RegisterClaim")
        .activity_state("CheckCoverage")
        .activity_state("RequestDocuments")
        .nested_state("Assessment_S", inspection_subchart(), fraud_subchart())
        .activity_state("DecideClaim")
        .activity_state("PayClaim")
        .activity_state("RejectLetter")
        .activity_state("CloseClaim")
        .initial("RegisterClaim")
        .transition("RegisterClaim", "CheckCoverage",
                    event="RegisterClaim_DONE")
        .transition("CheckCoverage", "RequestDocuments",
                    event="CheckCoverage_DONE",
                    guard=Var("DocumentsMissing"),
                    probability=P_DOCUMENTS_MISSING)
        .transition("CheckCoverage", "Assessment_S",
                    event="CheckCoverage_DONE",
                    guard=Not(Var("DocumentsMissing")),
                    probability=1.0 - P_DOCUMENTS_MISSING)
        .transition("RequestDocuments", "CheckCoverage",
                    event="RequestDocuments_DONE")
        .transition("Assessment_S", "DecideClaim")
        .transition("DecideClaim", "PayClaim",
                    event="DecideClaim_DONE", guard=Var("Approved"),
                    probability=P_APPROVE)
        .transition("DecideClaim", "RejectLetter",
                    event="DecideClaim_DONE", guard=Not(Var("Approved")),
                    probability=1.0 - P_APPROVE)
        .transition("PayClaim", "CloseClaim", event="PayClaim_DONE")
        .transition("RejectLetter", "CloseClaim",
                    event="RejectLetter_DONE")
        .build()
    )


def insurance_workflow() -> WorkflowDefinition:
    """The claim-handling workflow translated into the model layer."""
    return translate_chart(insurance_chart(), insurance_activities())
