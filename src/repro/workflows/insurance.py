"""An insurance claim-handling workflow.

Long-running, document-heavy, with a resubmission loop and a parallel
assessment phase — the "enterprise-wide business process" archetype of
the paper's introduction (the second author's affiliation being a bank is
no accident).  Used in benchmark mixes to stress turnaround-time-driven
load (Little's law keeps many instances concurrently active).

Expressed as a declarative :class:`~repro.scenarios.spec.WorkflowSpec`
(:func:`insurance_spec`); chart and model lower from it.
"""

from __future__ import annotations

from repro.core.model_types import ActivitySpec
from repro.core.workflow_model import WorkflowDefinition
from repro.scenarios.adapters import (
    region_to_chart,
    spec_to_chart,
    spec_to_definition,
)
from repro.scenarios.spec import (
    ArrivalSpec,
    RegionSpec,
    WorkflowSpec,
    activity,
    arm,
    branch,
    loop,
    parallel,
    region,
    sequence,
)
from repro.spec.events import Not, Var
from repro.spec.statechart import StateChart
from repro.spec.translator import ActivityRegistry
from repro.workflows.common import (
    automated_activity,
    interactive_activity,
    standard_server_types,
)

#: Probability that submitted documents are incomplete (loop back).
P_DOCUMENTS_MISSING = 0.25
#: Probability that the claim is approved after assessment.
P_APPROVE = 0.7

DURATION_REGISTER = 15.0
DURATION_CHECK_COVERAGE = 2.0
DURATION_REQUEST_DOCUMENTS = 240.0
DURATION_DAMAGE_INSPECTION = 90.0
DURATION_WITNESS_REVIEW = 60.0
DURATION_FRAUD_SCORING = 5.0
DURATION_DECIDE = 30.0
DURATION_PAY = 3.0
DURATION_REJECT_LETTER = 10.0
DURATION_CLOSE = 0.5

#: Default arrival rate in the benchmark mixes (documented choice).
ARRIVAL_RATE = 0.05


def _activity_specs() -> tuple[ActivitySpec, ...]:
    """The claim-handling activities with Figure-1 request counts."""
    return (
        interactive_activity("RegisterClaim", DURATION_REGISTER),
        automated_activity("CheckCoverage", DURATION_CHECK_COVERAGE),
        interactive_activity(
            "RequestDocuments", DURATION_REQUEST_DOCUMENTS
        ),
        interactive_activity(
            "DamageInspection", DURATION_DAMAGE_INSPECTION
        ),
        interactive_activity("WitnessReview", DURATION_WITNESS_REVIEW),
        automated_activity("FraudScoring", DURATION_FRAUD_SCORING),
        interactive_activity("DecideClaim", DURATION_DECIDE),
        automated_activity("PayClaim", DURATION_PAY),
        automated_activity("RejectLetter", DURATION_REJECT_LETTER),
        automated_activity("CloseClaim", DURATION_CLOSE),
    )


def insurance_activities() -> ActivityRegistry:
    """Activity catalogue of the claim-handling workflow."""
    return ActivityRegistry(
        {spec.name: spec for spec in _activity_specs()}
    )


def _inspection_region() -> RegionSpec:
    """Physical assessment: damage inspection, then witness review."""
    return region(
        "Inspection_SC",
        sequence(
            activity("DamageInspection"),
            activity("WitnessReview"),
        ),
    )


def _fraud_region() -> RegionSpec:
    """Automated fraud scoring, running in parallel to the inspection."""
    return region("Fraud_SC", activity("FraudScoring"))


def inspection_subchart() -> StateChart:
    """``Inspection_SC`` lowered to a standalone state chart."""
    return region_to_chart(_inspection_region())


def fraud_subchart() -> StateChart:
    """``Fraud_SC`` lowered to a standalone state chart."""
    return region_to_chart(_fraud_region())


def insurance_spec() -> WorkflowSpec:
    """Register -> coverage check (documents loop) -> parallel assessment
    -> decision -> pay or reject -> close."""
    return WorkflowSpec(
        name="InsuranceClaim",
        body=sequence(
            activity("RegisterClaim"),
            loop(
                activity("CheckCoverage"),
                arm(activity("RequestDocuments"),
                    guard=Var("DocumentsMissing"),
                    probability=P_DOCUMENTS_MISSING,
                    next="loop"),
                arm(guard=Not(Var("DocumentsMissing")),
                    probability=1.0 - P_DOCUMENTS_MISSING),
            ),
            parallel(
                "Assessment_S", _inspection_region(), _fraud_region()
            ),
            activity("DecideClaim"),
            branch(
                arm(activity("PayClaim"), guard=Var("Approved"),
                    probability=P_APPROVE),
                arm(activity("RejectLetter"), guard=Not(Var("Approved")),
                    probability=1.0 - P_APPROVE),
            ),
            activity("CloseClaim"),
        ),
        activities=_activity_specs(),
        server_types=standard_server_types(),
        arrival=ArrivalSpec(rate=ARRIVAL_RATE),
    )


def insurance_chart() -> StateChart:
    """The claim-handling chart, lowered from the spec."""
    return spec_to_chart(insurance_spec())


def insurance_workflow() -> WorkflowDefinition:
    """The claim-handling workflow translated into the model layer."""
    return spec_to_definition(insurance_spec())
