"""A TPC-C-flavoured order-processing workflow.

The paper's introduction motivates WFMS configurations with high-volume
enterprise workloads; this workflow complements the EP example with a
flat, high-throughput order pipeline (no nesting) featuring a rejection
branch and a payment-retry loop.  It is the second workflow type in the
benchmark mixes, so that the aggregated load of Section 4.3 exercises
multiple workflow types with different arrival rates.
"""

from __future__ import annotations

from repro.core.workflow_model import WorkflowDefinition
from repro.spec.builder import StateChartBuilder
from repro.spec.events import Not, Var
from repro.spec.statechart import StateChart
from repro.spec.translator import ActivityRegistry, translate_chart
from repro.workflows.common import automated_activity, interactive_activity

#: Probability that validation rejects the order outright.
P_REJECT = 0.05
#: Probability that the payment attempt fails and is retried.
P_PAYMENT_RETRY = 0.1

DURATION_RECEIVE = 3.0
DURATION_VALIDATE = 0.5
DURATION_PAYMENT = 2.0
DURATION_PACK = 15.0
DURATION_SHIP_ORDER = 10.0
DURATION_ARCHIVE = 0.2


def order_processing_activities() -> ActivityRegistry:
    """Activity catalogue of the order-processing workflow."""
    activities = [
        interactive_activity("ReceiveOrder", DURATION_RECEIVE),
        automated_activity("ValidateOrder", DURATION_VALIDATE),
        automated_activity("ProcessPayment", DURATION_PAYMENT),
        interactive_activity("PackOrder", DURATION_PACK),
        automated_activity("ShipOrder", DURATION_SHIP_ORDER),
        automated_activity("ArchiveOrder", DURATION_ARCHIVE),
    ]
    return ActivityRegistry({spec.name: spec for spec in activities})


def order_processing_chart() -> StateChart:
    """Receive -> validate -> (reject | pay -> pack -> ship) -> archive."""
    return (
        StateChartBuilder("OrderProcessing")
        .activity_state("ReceiveOrder")
        .activity_state("ValidateOrder")
        .activity_state("ProcessPayment")
        .activity_state("PackOrder")
        .activity_state("ShipOrder")
        .activity_state("ArchiveOrder")
        .initial("ReceiveOrder")
        .transition("ReceiveOrder", "ValidateOrder",
                    event="ReceiveOrder_DONE")
        .transition("ValidateOrder", "ArchiveOrder",
                    event="ValidateOrder_DONE", guard=Var("OrderRejected"),
                    probability=P_REJECT)
        .transition("ValidateOrder", "ProcessPayment",
                    event="ValidateOrder_DONE",
                    guard=Not(Var("OrderRejected")),
                    probability=1.0 - P_REJECT)
        .transition("ProcessPayment", "ProcessPayment",
                    event="ProcessPayment_DONE",
                    guard=Var("PaymentFailed"),
                    probability=P_PAYMENT_RETRY)
        .transition("ProcessPayment", "PackOrder",
                    event="ProcessPayment_DONE",
                    guard=Not(Var("PaymentFailed")),
                    probability=1.0 - P_PAYMENT_RETRY)
        .transition("PackOrder", "ShipOrder", event="PackOrder_DONE")
        .transition("ShipOrder", "ArchiveOrder", event="ShipOrder_DONE")
        .build()
    )


def order_processing_workflow() -> WorkflowDefinition:
    """The order-processing workflow translated into the model layer.

    Note the payment self-loop: the translation keeps it, and the CTMC
    construction folds it into the state's residence time via the
    geometric-sojourn transform (see
    :func:`repro.core.ctmc.remove_self_loops`).
    """
    return translate_chart(
        order_processing_chart(), order_processing_activities()
    )
