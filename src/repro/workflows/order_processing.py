"""A TPC-C-flavoured order-processing workflow.

The paper's introduction motivates WFMS configurations with high-volume
enterprise workloads; this workflow complements the EP example with a
flat, high-throughput order pipeline (no nesting) featuring a rejection
branch and a payment-retry loop.  It is the second workflow type in the
benchmark mixes, so that the aggregated load of Section 4.3 exercises
multiple workflow types with different arrival rates.

Expressed as a declarative :class:`~repro.scenarios.spec.WorkflowSpec`
(:func:`order_processing_spec`); chart and model lower from it.
"""

from __future__ import annotations

from repro.core.model_types import ActivitySpec
from repro.core.workflow_model import WorkflowDefinition
from repro.scenarios.adapters import spec_to_chart, spec_to_definition
from repro.scenarios.spec import (
    ArrivalSpec,
    WorkflowSpec,
    activity,
    arm,
    branch,
    loop,
    sequence,
)
from repro.spec.events import Not, Var
from repro.spec.statechart import StateChart
from repro.spec.translator import ActivityRegistry
from repro.workflows.common import (
    automated_activity,
    interactive_activity,
    standard_server_types,
)

#: Probability that validation rejects the order outright.
P_REJECT = 0.05
#: Probability that the payment attempt fails and is retried.
P_PAYMENT_RETRY = 0.1

DURATION_RECEIVE = 3.0
DURATION_VALIDATE = 0.5
DURATION_PAYMENT = 2.0
DURATION_PACK = 15.0
DURATION_SHIP_ORDER = 10.0
DURATION_ARCHIVE = 0.2

#: Default arrival rate in the benchmark mixes (``init-demo`` uses it).
ARRIVAL_RATE = 0.2


def _activity_specs() -> tuple[ActivitySpec, ...]:
    """The order-processing activities with Figure-1 request counts."""
    return (
        interactive_activity("ReceiveOrder", DURATION_RECEIVE),
        automated_activity("ValidateOrder", DURATION_VALIDATE),
        automated_activity("ProcessPayment", DURATION_PAYMENT),
        interactive_activity("PackOrder", DURATION_PACK),
        automated_activity("ShipOrder", DURATION_SHIP_ORDER),
        automated_activity("ArchiveOrder", DURATION_ARCHIVE),
    )


def order_processing_activities() -> ActivityRegistry:
    """Activity catalogue of the order-processing workflow."""
    return ActivityRegistry(
        {spec.name: spec for spec in _activity_specs()}
    )


def order_processing_spec() -> WorkflowSpec:
    """Receive -> validate -> (reject | pay -> pack -> ship) -> archive.

    The reject arm jumps straight to the final ``ArchiveOrder`` state;
    the payment-retry loop is a *self-loop* (no section block), which the
    CTMC construction folds into the state's residence time via the
    geometric-sojourn transform.
    """
    return WorkflowSpec(
        name="OrderProcessing",
        body=sequence(
            activity("ReceiveOrder"),
            activity("ValidateOrder"),
            branch(
                arm(guard=Var("OrderRejected"), probability=P_REJECT,
                    next="final"),
                arm(guard=Not(Var("OrderRejected")),
                    probability=1.0 - P_REJECT),
            ),
            loop(
                activity("ProcessPayment"),
                arm(guard=Var("PaymentFailed"),
                    probability=P_PAYMENT_RETRY, next="loop"),
                arm(guard=Not(Var("PaymentFailed")),
                    probability=1.0 - P_PAYMENT_RETRY),
            ),
            activity("PackOrder"),
            activity("ShipOrder"),
            activity("ArchiveOrder"),
        ),
        activities=_activity_specs(),
        server_types=standard_server_types(),
        arrival=ArrivalSpec(rate=ARRIVAL_RATE),
    )


def order_processing_chart() -> StateChart:
    """The order-processing chart, lowered from the spec."""
    return spec_to_chart(order_processing_spec())


def order_processing_workflow() -> WorkflowDefinition:
    """The order-processing workflow translated into the model layer.

    Note the payment self-loop: the translation keeps it, and the CTMC
    construction folds it into the state's residence time via the
    geometric-sojourn transform (see
    :func:`repro.core.ctmc.remove_self_loops`).
    """
    return spec_to_definition(order_processing_spec())
