"""repro — performability-driven configuration of distributed WFMSs.

A complete, from-scratch reproduction of *"Performance and Availability
Assessment for the Configuration of Distributed Workflow Management
Systems"* (Gillmann, Weissenfels, Weikum, Kraiss — EDBT 2000):

* :mod:`repro.core` — the analytic models: workflow CTMCs, the
  performance model (turnaround times, loads, sustainable throughput,
  M/G/1 waiting times), the availability model (system-state CTMC), the
  performability model, and the greedy/exhaustive/annealing configuration
  search.
* :mod:`repro.spec` — a Harel-style state-chart workflow specification
  language with ECA rules, nesting, and orthogonal components, plus the
  translation into the model layer.
* :mod:`repro.sim` / :mod:`repro.wfms` — a discrete-event simulated
  distributed WFMS (replicated server pools, routing, failures) used to
  validate the analytic predictions.
* :mod:`repro.monitor` — audit trails and calibration of model parameters
  from monitoring data.
* :mod:`repro.tool` — the configuration tool of Section 7 (mapping,
  calibration, evaluation, recommendation).
* :mod:`repro.queueing` — M/G/1, M/M/1, M/M/c, and Little's-law utilities.
* :mod:`repro.workflows` — ready-made example workflows, including the
  paper's e-commerce workflow (Figures 3 and 4).
"""

from repro.core import (
    ActivitySpec,
    AvailabilityModel,
    DegradedStatePolicy,
    GoalEvaluator,
    PerformabilityGoals,
    PerformabilityModel,
    PerformanceModel,
    RepairPolicy,
    ReplicationConstraints,
    ServerRole,
    ServerTypeIndex,
    ServerTypeSpec,
    SystemConfiguration,
    Workload,
    WorkloadItem,
    WorkflowDefinition,
    WorkflowState,
    analyze_workflow,
    build_workflow_ctmc,
    exhaustive_configuration,
    greedy_configuration,
    simulated_annealing_configuration,
)
from repro.exceptions import (
    ConvergenceError,
    InfeasibleConfigurationError,
    ModelError,
    ReproError,
    SaturationError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "ActivitySpec",
    "AvailabilityModel",
    "ConvergenceError",
    "DegradedStatePolicy",
    "GoalEvaluator",
    "InfeasibleConfigurationError",
    "ModelError",
    "PerformabilityGoals",
    "PerformabilityModel",
    "PerformanceModel",
    "RepairPolicy",
    "ReplicationConstraints",
    "ReproError",
    "SaturationError",
    "ServerRole",
    "ServerTypeIndex",
    "ServerTypeSpec",
    "SystemConfiguration",
    "ValidationError",
    "Workload",
    "WorkloadItem",
    "WorkflowDefinition",
    "WorkflowState",
    "__version__",
    "analyze_workflow",
    "build_workflow_ctmc",
    "exhaustive_configuration",
    "greedy_configuration",
    "simulated_annealing_configuration",
]
