"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single base class.  Subclasses distinguish input
validation problems, numerical convergence failures, structural model
problems, and infeasible configuration searches.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """An input (matrix, specification, parameter) failed validation.

    Also derives from :class:`ValueError` so that generic callers that
    expect standard exceptions for bad arguments keep working.
    """


class ModelError(ReproError):
    """A model is structurally unsuitable for the requested analysis.

    Examples: asking for absorption analysis on a chain without absorbing
    states, or for a steady state of a reducible chain.
    """


class ConvergenceError(ReproError, ArithmeticError):
    """An iterative numerical method failed to converge."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class SaturationError(ModelError):
    """A queueing station is saturated (utilization >= 1).

    Raised only when the caller requested strict behaviour; by default the
    performance model reports infinite waiting times instead.
    """


class InfeasibleConfigurationError(ReproError):
    """No configuration within the search bounds satisfies the goals."""

    def __init__(self, message: str, best_found=None) -> None:
        super().__init__(message)
        self.best_found = best_found


class SearchCancelledError(ReproError):
    """A configuration search was cancelled before it finished.

    Raised by :class:`~repro.core.search.SearchEngine` when its
    ``stop_check`` reports true — the always-on recommendation service
    uses this to abandon an in-flight re-search the moment newer
    confirmed drift supersedes the calibration it was searching against.
    """
