"""Shared domain types of the architectural model (Section 2).

A distributed WFMS is composed of abstract *server types* — workflow
engines, application servers, and the communication server — each of which
may be replicated.  Workflow *activities* induce a certain number of
service requests on each server type.  These dataclasses carry the
parameters every model in the package consumes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import ValidationError


class ServerRole(enum.Enum):
    """Role of a server type in the architectural model (Figure 2)."""

    WORKFLOW_ENGINE = "workflow_engine"
    APPLICATION_SERVER = "application_server"
    COMMUNICATION_SERVER = "communication_server"
    OTHER = "other"


@dataclass(frozen=True)
class ServerTypeSpec:
    """Parameters of one abstract server type.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"wf-engine-1"``.
    mean_service_time:
        First moment ``b_x`` of the service time of one service request.
    second_moment_service_time:
        Second moment ``b_x^(2)``; defaults to the exponential value
        ``2 * b_x**2`` when omitted.
    failure_rate:
        ``lambda_x`` — reciprocal of the mean time to failure (includes
        planned downtimes, Section 2).
    repair_rate:
        ``mu_x`` — reciprocal of the mean time to repair/restart.
    cost:
        Relative cost of one replica of this type (Section 7.1 allows
        per-type refinement of the default "count the servers" cost).
    role:
        Architectural role, for reporting only.
    """

    name: str
    mean_service_time: float
    second_moment_service_time: float | None = None
    failure_rate: float = 0.0
    repair_rate: float = math.inf
    cost: float = 1.0
    role: ServerRole = ServerRole.OTHER

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("server type name must be non-empty")
        if self.mean_service_time <= 0.0:
            raise ValidationError(
                f"{self.name}: mean service time must be positive"
            )
        if self.second_moment_service_time is None:
            object.__setattr__(
                self,
                "second_moment_service_time",
                2.0 * self.mean_service_time**2,
            )
        if self.second_moment_service_time < self.mean_service_time**2:
            raise ValidationError(
                f"{self.name}: second moment must be at least the squared "
                "mean (variance cannot be negative)"
            )
        if self.failure_rate < 0.0:
            raise ValidationError(f"{self.name}: failure rate must be >= 0")
        if self.repair_rate <= 0.0:
            raise ValidationError(f"{self.name}: repair rate must be > 0")
        if self.cost <= 0.0:
            raise ValidationError(f"{self.name}: cost must be positive")

    @property
    def mean_time_to_failure(self) -> float:
        """``1 / lambda_x`` (infinite for a failure-free type)."""
        if self.failure_rate == 0.0:
            return math.inf
        return 1.0 / self.failure_rate

    @property
    def mean_time_to_repair(self) -> float:
        """``1 / mu_x``."""
        if math.isinf(self.repair_rate):
            return 0.0
        return 1.0 / self.repair_rate

    @property
    def single_server_availability(self) -> float:
        """Steady-state availability ``mu / (lambda + mu)`` of one replica."""
        if self.failure_rate == 0.0 or math.isinf(self.repair_rate):
            return 1.0
        return self.repair_rate / (self.failure_rate + self.repair_rate)

    @property
    def service_time_variance(self) -> float:
        """Variance of the service time distribution."""
        assert self.second_moment_service_time is not None
        return self.second_moment_service_time - self.mean_service_time**2


@dataclass(frozen=True)
class ActivitySpec:
    """One workflow activity type and the load it induces (Figure 1).

    ``loads`` maps server type names to the expected number of service
    requests one execution of this activity sends to that type — e.g. the
    automated activity of Figure 1 induces 3 requests at its workflow
    engine, 2 at the communication server, and 3 at its application server.
    """

    name: str
    mean_duration: float
    loads: Mapping[str, float] = field(default_factory=dict)
    interactive: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("activity name must be non-empty")
        if self.mean_duration <= 0.0:
            raise ValidationError(
                f"{self.name}: mean duration must be positive"
            )
        loads = dict(self.loads)
        for server_type, requests in loads.items():
            if requests < 0.0:
                raise ValidationError(
                    f"{self.name}: load on {server_type} must be >= 0"
                )
        object.__setattr__(self, "loads", loads)

    def load_on(self, server_type: str) -> float:
        """Service requests this activity sends to ``server_type``."""
        return float(self.loads.get(server_type, 0.0))


class ServerTypeIndex:
    """Immutable ordered index of server types.

    Fixes the order in which server types appear in every vector and matrix
    of the performance, availability, and performability models, so that
    results from different models can be combined safely.
    """

    def __init__(self, server_types: Iterable[ServerTypeSpec]) -> None:
        specs = tuple(server_types)
        if not specs:
            raise ValidationError("at least one server type is required")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate server type names in {names}")
        self._specs = specs
        self._positions = {spec.name: i for i, spec in enumerate(specs)}

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return iter(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._positions

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServerTypeIndex):
            return NotImplemented
        return self._specs == other._specs

    def __hash__(self) -> int:
        return hash(self._specs)

    @property
    def names(self) -> tuple[str, ...]:
        """Server type names in index order."""
        return tuple(spec.name for spec in self._specs)

    @property
    def specs(self) -> tuple[ServerTypeSpec, ...]:
        """Server type specs in index order."""
        return self._specs

    def position(self, name: str) -> int:
        """Index of the server type called ``name``."""
        try:
            return self._positions[name]
        except KeyError:
            raise ValidationError(
                f"unknown server type {name!r}; known: {self.names}"
            ) from None

    def spec(self, name: str) -> ServerTypeSpec:
        """Spec of the server type called ``name``."""
        return self._specs[self.position(name)]
