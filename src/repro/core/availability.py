"""Availability model of the replicated WFMS (Section 5).

The system state of a WFMS with ``k`` server types and configuration
``Y = (Y_1, ..., Y_k)`` is the vector ``X = (X_1, ..., X_k)`` of currently
available replicas per type.  The states form an ergodic CTMC: a running
replica of type ``x`` fails with rate ``lambda_x`` (so a state with ``X_x``
running replicas fails with total rate ``X_x * lambda_x``), and failed
replicas are repaired with rate ``mu_x`` each (independent repairs — the
convention that reproduces the paper's 71 h / 10 s / <1 min example; a
single-repair-crew variant is available as an option).

The steady-state analysis yields the probability of every system state;
the system is *unavailable* in the states where at least one server type
has zero running replicas.  Because the per-type processes are mutually
independent, the same answers can be obtained from per-type birth-death
chains and multiplied — this module implements both the paper-faithful
joint CTMC (with the paper's integer state encoding) and the fast
product-form route, and the test suite checks they agree.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Iterator, Literal

import numpy as np

from repro import obs
from repro.core.ctmc import ErgodicCTMC
from repro.core.linalg import SolveMethod
from repro.core.model_types import ServerTypeIndex, ServerTypeSpec
from repro.core.performance import SystemConfiguration
from repro.exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.core.evaluation_cache import EvaluationCache

#: Hours per year used to express downtime (365 days).
HOURS_PER_YEAR = 365.0 * 24.0

#: Minutes per year.
MINUTES_PER_YEAR = HOURS_PER_YEAR * 60.0

#: Seconds per year.
SECONDS_PER_YEAR = MINUTES_PER_YEAR * 60.0


class RepairPolicy(enum.Enum):
    """How failed replicas of one server type are repaired.

    ``INDEPENDENT`` repairs every failed replica concurrently (rate
    ``(Y_x - X_x) * mu_x``); ``SINGLE_CREW`` repairs one at a time (rate
    ``mu_x`` whenever at least one replica is down).
    """

    INDEPENDENT = "independent"
    SINGLE_CREW = "single_crew"


@dataclass(frozen=True)
class ServerPoolAvailability:
    """Birth-death availability chain of one replicated server type.

    States ``0 .. count`` give the number of running replicas.  The
    steady-state distribution has the standard birth-death product form,
    evaluated in closed form.
    """

    spec: ServerTypeSpec
    count: int
    policy: RepairPolicy = RepairPolicy.INDEPENDENT

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValidationError(
                f"{self.spec.name}: a pool needs at least one replica"
            )

    @cached_property
    def state_probabilities(self) -> np.ndarray:
        """Steady-state probabilities over 0..count running replicas."""
        if self.spec.failure_rate == 0.0 or math.isinf(self.spec.repair_rate):
            probabilities = np.zeros(self.count + 1)
            probabilities[self.count] = 1.0
            return probabilities
        # Birth-death balance: pi_{j} * death(j) = pi_{j-1} * birth(j-1)
        # where "birth" is a repair (j-1 -> j) and "death" a failure
        # (j -> j-1).  Build unnormalized weights from state `count` down.
        weights = np.zeros(self.count + 1)
        weights[self.count] = 1.0
        for j in range(self.count - 1, -1, -1):
            failure_rate = (j + 1) * self.spec.failure_rate
            repair_rate = self._repair_rate(available=j)
            weights[j] = weights[j + 1] * failure_rate / repair_rate
        return weights / weights.sum()

    def _repair_rate(self, available: int) -> float:
        """Total repair rate in the state with ``available`` replicas up."""
        failed = self.count - available
        if failed <= 0:
            return 0.0
        if self.policy is RepairPolicy.INDEPENDENT:
            return failed * self.spec.repair_rate
        return self.spec.repair_rate

    @property
    def unavailability(self) -> float:
        """Probability that all replicas of this type are down."""
        return float(self.state_probabilities[0])

    @property
    def availability(self) -> float:
        """Probability that at least one replica is running."""
        return 1.0 - self.unavailability

    @property
    def expected_available(self) -> float:
        """Expected number of running replicas."""
        return float(
            self.state_probabilities @ np.arange(self.count + 1)
        )

    def unavailability_closed_form(self) -> float:
        """Independent-repair closed form ``(lambda/(lambda+mu))**Y``.

        Only valid for :attr:`RepairPolicy.INDEPENDENT`, where the replicas
        are independent two-state chains; used as a test oracle.
        """
        if self.policy is not RepairPolicy.INDEPENDENT:
            raise ValidationError(
                "closed form only exists for independent repairs"
            )
        down = 1.0 - self.spec.single_server_availability
        return down**self.count


class AvailabilityModel:
    """Joint availability CTMC of the whole WFMS (Section 5).

    Exposes both the paper-faithful joint analysis (explicit generator
    matrix over all system states, with the paper's integer encoding) and
    the product-form shortcut exploiting per-type independence.
    """

    def __init__(
        self,
        server_types: ServerTypeIndex,
        configuration: SystemConfiguration,
        policy: RepairPolicy = RepairPolicy.INDEPENDENT,
        cache: "EvaluationCache | None" = None,
    ) -> None:
        self.server_types = server_types
        self.configuration = configuration
        self.policy = policy
        self._cache = cache
        self._counts = configuration.as_vector(server_types)
        if np.any(self._counts < 1):
            raise ValidationError(
                "every server type needs at least one configured replica; "
                f"got {configuration}"
            )
        self._num_states = int(np.prod(self._counts + 1))

    # ------------------------------------------------------------------
    # State space and the paper's encoding
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Size of the system state space ``prod_x (Y_x + 1)``."""
        return self._num_states

    def encode(self, state: tuple[int, ...]) -> int:
        """Paper's integer encoding: ``sum_j X_j * prod_{l<j} (Y_l + 1)``."""
        if len(state) != len(self._counts):
            raise ValidationError(
                f"state must have {len(self._counts)} entries"
            )
        code = 0
        stride = 1
        for j, value in enumerate(state):
            if not 0 <= value <= self._counts[j]:
                raise ValidationError(
                    f"entry {j} of state {state} out of range "
                    f"[0, {self._counts[j]}]"
                )
            code += value * stride
            stride *= self._counts[j] + 1
        return code

    def decode(self, code: int) -> tuple[int, ...]:
        """Inverse of :meth:`encode`."""
        if not 0 <= code < self._num_states:
            raise ValidationError(
                f"code {code} out of range [0, {self._num_states})"
            )
        state = []
        for count in self._counts:
            state.append(code % (count + 1))
            code //= count + 1
        return tuple(state)

    def states(self) -> Iterator[tuple[int, ...]]:
        """All system states, in encoding order."""
        for code in range(self._num_states):
            yield self.decode(code)

    def is_system_available(self, state: tuple[int, ...]) -> bool:
        """The WFMS is up iff every server type has a running replica."""
        return all(value >= 1 for value in state)

    # ------------------------------------------------------------------
    # Joint CTMC (paper-faithful)
    # ------------------------------------------------------------------
    def generator_matrix(self) -> np.ndarray:
        """Infinitesimal generator ``Q`` of the system-state CTMC.

        Densified from :meth:`generator_triplets`, which is the single
        source of truth for the transition structure; this method only
        scatters the rates and completes the diagonal.
        """
        rows, columns, rates = self.generator_triplets()
        q = np.zeros((self._num_states, self._num_states))
        np.add.at(q, (rows, columns), rates)
        np.fill_diagonal(q, -q.sum(axis=1))
        return q

    def generator_triplets(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Off-diagonal transitions as ``(rows, columns, rates)`` arrays.

        The joint CTMC has ``prod(Y_x + 1)`` states but at most ``2k``
        transitions per state, so the triplet form stays linear in the
        state-space size where the dense generator is quadratic.
        """
        rows: list[int] = []
        columns: list[int] = []
        rates: list[float] = []
        for code in range(self._num_states):
            state = self.decode(code)
            for j, spec in enumerate(self.server_types.specs):
                available = state[j]
                if available >= 1 and spec.failure_rate > 0.0:
                    failed_state = list(state)
                    failed_state[j] -= 1
                    rows.append(code)
                    columns.append(self.encode(tuple(failed_state)))
                    rates.append(available * spec.failure_rate)
                failed = self._counts[j] - available
                if failed >= 1 and not math.isinf(spec.repair_rate):
                    repaired_state = list(state)
                    repaired_state[j] += 1
                    rows.append(code)
                    columns.append(self.encode(tuple(repaired_state)))
                    if self.policy is RepairPolicy.INDEPENDENT:
                        rates.append(failed * spec.repair_rate)
                    else:
                        rates.append(spec.repair_rate)
        return (
            np.asarray(rows, dtype=np.int64),
            np.asarray(columns, dtype=np.int64),
            np.asarray(rates, dtype=float),
        )

    def chain(self) -> ErgodicCTMC:
        """The system-state CTMC with human-readable state names."""
        names = tuple(str(state) for state in self.states())
        return ErgodicCTMC(self.generator_matrix(), state_names=names)

    #: State-space size above which :meth:`steady_state` picks the
    #: sparse solver automatically.
    SPARSE_THRESHOLD = 512

    def steady_state(
        self, method: SolveMethod | Literal["sparse", "auto"] = "auto"
    ) -> np.ndarray:
        """Steady-state probabilities ``pi_i`` over encoded states.

        ``auto`` (default) solves densely for small state spaces and
        switches to scipy's sparse LU beyond :attr:`SPARSE_THRESHOLD`
        states; ``direct``/``gauss_seidel``/``sparse`` force a solver.
        """
        if method == "auto":
            method = (
                "sparse" if self._num_states > self.SPARSE_THRESHOLD
                else "direct"
            )
        obs.count("availability.steady_state_solves")
        obs.set_max("availability.state_space.max", self._num_states)
        with obs.span(
            "availability.steady_state",
            states=self._num_states,
            method=method,
        ):
            if method == "sparse":
                from repro.core.linalg import (
                    steady_state_distribution_sparse,
                )

                rows, columns, rates = self.generator_triplets()
                return steady_state_distribution_sparse(
                    rows, columns, rates, self._num_states
                )
            return self.chain().steady_state(method=method)

    def state_probabilities(
        self, method: SolveMethod | Literal["sparse", "auto"] = "auto"
    ) -> dict[tuple[int, ...], float]:
        """Steady-state probability of every system state vector."""
        pi = self.steady_state(method=method)
        return {self.decode(code): float(pi[code])
                for code in range(self._num_states)}

    # ------------------------------------------------------------------
    # Availability metrics
    # ------------------------------------------------------------------
    def pools(self) -> dict[str, ServerPoolAvailability]:
        """Per-type birth-death availability chains.

        With an evaluation cache attached, the chain (and its lazily
        computed steady-state marginal) for each ``(spec, count,
        policy)`` is shared across every model that asks for it — in a
        configuration search this means one birth-death solve per
        distinct pool size instead of one per candidate.
        """
        if self._cache is not None:
            return {
                spec.name: self._cache.pool(
                    spec, int(self._counts[i]), self.policy
                )
                for i, spec in enumerate(self.server_types.specs)
            }
        return {
            spec.name: ServerPoolAvailability(
                spec=spec,
                count=int(self._counts[i]),
                policy=self.policy,
            )
            for i, spec in enumerate(self.server_types.specs)
        }

    def unavailability(
        self,
        method: Literal["product", "joint"] = "product",
        solve_method: SolveMethod | Literal["sparse", "auto"] = "auto",
    ) -> float:
        """Probability that the WFMS is down (some type fully failed).

        ``product`` exploits per-type independence (fast, exact);
        ``joint`` sums the steady-state probabilities of the joint CTMC
        over all states with a zero entry (the paper's formulation).
        """
        if method == "product":
            availability = 1.0
            for pool in self.pools().values():
                availability *= pool.availability
            return 1.0 - availability
        if method == "joint":
            pi = self.steady_state(method=solve_method)
            down = sum(
                float(pi[code])
                for code in range(self._num_states)
                if not self.is_system_available(self.decode(code))
            )
            return min(max(down, 0.0), 1.0)
        raise ValidationError(f"unknown method {method!r}")

    def availability(
        self, method: Literal["product", "joint"] = "product"
    ) -> float:
        """Probability that the WFMS is up."""
        return 1.0 - self.unavailability(method=method)

    def downtime_per_year(
        self,
        unit: Literal["hours", "minutes", "seconds"] = "hours",
        method: Literal["product", "joint"] = "product",
    ) -> float:
        """Expected downtime per year, in the requested unit.

        The model's rates are unit-agnostic; the per-year figure only
        rescales the dimensionless unavailability (fraction of time down).
        """
        scale = {
            "hours": HOURS_PER_YEAR,
            "minutes": MINUTES_PER_YEAR,
            "seconds": SECONDS_PER_YEAR,
        }.get(unit)
        if scale is None:
            raise ValidationError(f"unknown unit {unit!r}")
        return self.unavailability(method=method) * scale

    def per_type_unavailability(self) -> dict[str, float]:
        """Probability that each type is completely down, by name."""
        return {
            name: pool.unavailability
            for name, pool in self.pools().items()
        }

    def replication_sensitivity(self) -> dict[str, float]:
        """Unavailability reduction from adding one replica per type.

        ``result[x]`` is the decrease of the *system* unavailability if
        server type ``x`` gained one replica (all else equal) — the exact
        quantity the greedy heuristic's "most critical server type"
        choice approximates.  Computed from the product form, so it costs
        one birth-death solve per type.
        """
        pools = self.pools()
        base_availability = {
            name: pool.availability for name, pool in pools.items()
        }
        system_availability = 1.0
        for availability_value in base_availability.values():
            system_availability *= availability_value
        sensitivity: dict[str, float] = {}
        for i, spec in enumerate(self.server_types.specs):
            if self._cache is not None:
                grown = self._cache.pool(
                    spec, int(self._counts[i]) + 1, self.policy
                )
            else:
                grown = ServerPoolAvailability(
                    spec=spec,
                    count=int(self._counts[i]) + 1,
                    policy=self.policy,
                )
            others = (
                system_availability / base_availability[spec.name]
                if base_availability[spec.name] > 0.0
                else 0.0
            )
            improved_system = others * grown.availability
            sensitivity[spec.name] = float(
                improved_system - system_availability
            )
        return sensitivity

    # ------------------------------------------------------------------
    # Transient analysis (extension)
    # ------------------------------------------------------------------
    def transient_unavailability(
        self,
        time: float,
        initial_state: tuple[int, ...] | None = None,
    ) -> float:
        """Probability that the system is down at time ``t``.

        Starts (by default) from the fully-up state — the situation right
        after deployment or a maintenance restart — and converges to the
        steady-state unavailability as ``t`` grows.
        """
        chain = self.chain()
        pi0 = np.zeros(self.num_states)
        start = (
            initial_state
            if initial_state is not None
            else tuple(int(count) for count in self._counts)
        )
        pi0[self.encode(start)] = 1.0
        pi_t = chain.transient_state_probabilities(pi0, time)
        return float(
            sum(
                pi_t[code]
                for code in range(self.num_states)
                if not self.is_system_available(self.decode(code))
            )
        )

    def expected_downtime(
        self,
        horizon: float,
        initial_state: tuple[int, ...] | None = None,
        grid_points: int = 64,
    ) -> float:
        """Expected downtime accumulated over ``[0, horizon]``.

        Integrates the transient unavailability on a uniform grid
        (trapezoidal rule); for horizons much longer than the repair
        times this approaches ``steady_state_unavailability * horizon``.
        """
        if horizon <= 0.0:
            raise ValidationError("horizon must be positive")
        if grid_points < 2:
            raise ValidationError("need at least two grid points")
        times = np.linspace(0.0, horizon, grid_points)
        values = np.array(
            [
                self.transient_unavailability(t, initial_state)
                for t in times
            ]
        )
        return float(np.trapezoid(values, times))


def minimum_replicas_for_availability(
    spec: ServerTypeSpec,
    max_unavailability: float,
    policy: RepairPolicy = RepairPolicy.INDEPENDENT,
    max_replicas: int = 64,
) -> int:
    """Smallest replica count keeping one type's unavailability in bound.

    Used by the configuration search to seed availability-driven lower
    bounds per server type.
    """
    if not 0.0 < max_unavailability < 1.0:
        raise ValidationError(
            "max_unavailability must lie strictly in (0, 1)"
        )
    for count in range(1, max_replicas + 1):
        pool = ServerPoolAvailability(spec=spec, count=count, policy=policy)
        if pool.unavailability <= max_unavailability:
            return count
    raise ValidationError(
        f"{spec.name}: even {max_replicas} replicas cannot reach "
        f"unavailability {max_unavailability}"
    )
