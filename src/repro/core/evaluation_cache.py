"""Shared evaluation caches for the configuration-search hot path.

The configuration search (Section 7.2) evaluates hundreds to thousands
of candidate configurations, and every evaluation re-runs the same three
building blocks: per-type birth-death availability marginals (Section
5), per-type M/G/1 waiting times (Section 4.4), and the goal assessment
that combines them (Section 7.1).  Two structural facts make aggressive
cross-candidate reuse sound:

* the waiting time ``w_x(n)`` of server type ``x`` with ``n`` running
  replicas depends only on ``n``, the type's service-time moments, and
  the fixed workload — *not* on the replica counts of the other types —
  so one waiting-time *curve* per type serves every candidate of a
  search (and every search over the same workload);
* the per-type availability marginal depends only on ``(spec, count,
  repair policy)``, so the birth-death solve for "3 app servers" is the
  same in every candidate that has 3 app servers.

:class:`EvaluationCache` holds these shared results plus a bounded LRU
cache of full :class:`~repro.core.goals.GoalAssessment` objects keyed by
the *values* of the configuration and the goals (never by object
identity — see the ``id(goals)`` aliasing bug this module replaced).
All keys are explicit and canonical; a cache is bound to one performance
model via :func:`model_fingerprint`, and binding a different model
raises instead of silently serving stale curves.

Complexity: without the cache, one marginal performability evaluation
costs ``O(sum_x Y_x)`` M/G/1 evaluations *per candidate*; with the
cache, the whole search computes each of the ``sum_x max(Y_x)`` distinct
curve points exactly once, so ``C`` candidates drop from ``O(C *
sum_x Y_x)`` to ``O(sum_x Y_x + C)`` waiting-time evaluations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable, Hashable

import numpy as np

from repro import obs
from repro.core.availability import RepairPolicy, ServerPoolAvailability
from repro.core.model_types import ServerTypeSpec
from repro.exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.performance import PerformanceModel

#: Default bound on cached goal assessments (the largest objects).
DEFAULT_MAX_ASSESSMENTS = 4096

#: Default bound on cached per-pool birth-death marginals.
DEFAULT_MAX_POOL_MARGINALS = 1024


def model_fingerprint(performance: "PerformanceModel") -> tuple:
    """Canonical identity of a performance model's fixed inputs.

    Two models with identical server-type parameters and identical
    per-type total request rates produce identical waiting-time curves,
    so their evaluators may safely share one :class:`EvaluationCache`.
    """
    totals = performance.total_request_rates()
    return (
        tuple(performance.server_types.specs),
        tuple(float(value) for value in totals),
    )


class BoundedCache:
    """A small LRU mapping with hit/miss/eviction observability.

    Keys must be hashable and canonical (built from values, never from
    ``id()``).  Local ``hits``/``misses``/``evictions`` counters are
    always maintained; the process-wide obs counters mirror them under
    ``evaluation_cache.<name>.*`` when observability is enabled.
    """

    def __init__(self, name: str, maxsize: int) -> None:
        if maxsize < 1:
            raise ValidationError("cache maxsize must be >= 1")
        self.name = name
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Any | None:
        """Cached value for ``key`` (LRU-touching), or ``None`` on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            obs.count(f"evaluation_cache.{self.name}.misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        obs.count(f"evaluation_cache.{self.name}.hits")
        return entry

    def peek(self, key: Hashable) -> Any | None:
        """Lookup without touching the LRU order or hit/miss counters.

        Used by snapshot merging, which must not perturb the counter
        sequence a serial run would produce.
        """
        return self._entries.get(key)

    def items(self) -> list[tuple[Hashable, Any]]:
        """Entries in LRU order (oldest first), for snapshot export."""
        return list(self._entries.items())

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key -> value``, evicting oldest entries when full."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            obs.count("evaluation_cache.evictions")

    def clear(self) -> None:
        """Drop every cached entry."""
        self._entries.clear()


class EvaluationCache:
    """Caches shared across all candidates of a configuration search.

    One instance is created per :class:`~repro.core.goals.GoalEvaluator`
    by default; passing the same instance to several evaluators (e.g.
    one per search algorithm in a benchmark, or a warm cache kept across
    CLI invocations of a long-running service) extends the reuse across
    searches.  The cache is bound to the first performance model it sees
    (via :func:`model_fingerprint`); using it with a model that has a
    different workload or server landscape raises
    :class:`~repro.exceptions.ValidationError` — stale reuse is a
    correctness bug, so invalidation is explicit (:meth:`clear`).

    ``enabled=False`` turns every lookup into a miss and every store
    into a no-op, giving the uncached reference path that the cache
    tests and ``benchmarks/bench_search.py`` compare against.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_assessments: int = DEFAULT_MAX_ASSESSMENTS,
        max_pool_marginals: int = DEFAULT_MAX_POOL_MARGINALS,
    ) -> None:
        self.enabled = enabled
        self._fingerprint: tuple | None = None
        self._assessments = BoundedCache("assessments", max_assessments)
        self._pools = BoundedCache("pool_marginals", max_pool_marginals)
        #: Per-type waiting-time curves, name -> list of w_x(n) for
        #: n = 0..len-1; grown monotonically, never evicted (a curve
        #: holds one float per admissible replica count).
        self._curves: dict[str, list[float]] = {}
        self.curve_hits = 0
        self.curve_misses = 0
        self.curve_points_computed = 0
        self.invalidations = 0
        self.rebinds = 0

    # ------------------------------------------------------------------
    # Binding and invalidation
    # ------------------------------------------------------------------
    def bind(self, fingerprint: tuple) -> None:
        """Tie the cache to one performance model's fixed inputs.

        Binding the same fingerprint again is a no-op; binding a
        different one raises (the caller should use a separate cache or
        :meth:`clear` this one explicitly).
        """
        if self._fingerprint is None:
            self._fingerprint = fingerprint
            return
        if self._fingerprint != fingerprint:
            raise ValidationError(
                "evaluation cache is bound to a different performance "
                "model (workload or server types differ); use a fresh "
                "EvaluationCache or clear() this one first"
            )

    @property
    def fingerprint(self) -> tuple | None:
        """The bound model fingerprint (``None`` when unbound)."""
        return self._fingerprint

    def clear(self) -> None:
        """Drop every cached result and the model binding."""
        self._fingerprint = None
        self._assessments.clear()
        self._pools.clear()
        self._curves.clear()

    def invalidate(self, reason: str = "") -> None:
        """Drop everything — including the model fingerprint — on drift.

        The continuous-monitoring loop calls this when a drift detector
        confirms that the calibrated parameters behind the bound model
        no longer describe the running system: every cached curve,
        marginal, and assessment was computed from stale inputs, so the
        next search must re-evaluate against freshly calibrated models.
        Unlike :meth:`clear`, the invalidation is counted (locally and
        under ``evaluation_cache.invalidations``) and traced.
        """
        self.clear()
        self.invalidations += 1
        obs.count("evaluation_cache.invalidations")
        obs.event("evaluation_cache.invalidated", reason=reason)

    def rebind(self, fingerprint: tuple, reason: str = "") -> dict[str, int]:
        """Re-bind the cache to a drifted model, keeping still-valid entries.

        The continuous loop's incremental alternative to
        :meth:`invalidate`: when calibration drift changes *some* server
        types' service moments or request totals, entries derived only
        from unchanged inputs are still bitwise-correct and are kept:

        * a waiting-time curve survives iff its type's service moments
          and total request rate are unchanged — ``w_x(n)`` is a pure
          function of exactly those inputs;
        * a pool marginal survives iff its type's failure and repair
          rates are unchanged (the birth-death chain never reads the
          service moments); it is re-keyed under the new spec so future
          lookups hit, with its already-solved steady-state vector
          carried over;
        * goal assessments are always dropped: each combines waiting
          times and marginals across *all* types, and clearing them also
          keeps a search's ``evaluations`` accounting identical to a
          cold run against the re-calibrated model.

        Rebinding an unbound cache degenerates to :meth:`bind`;
        rebinding the identical fingerprint keeps everything.  Returns
        kept/dropped entry counts for observability and tests.
        """
        if self._fingerprint is None or self._fingerprint == fingerprint:
            self._fingerprint = fingerprint
            return {
                "curves_kept": len(self._curves),
                "curves_dropped": 0,
                "pools_kept": len(self._pools),
                "pools_dropped": 0,
                "assessments_dropped": 0,
            }
        old_specs, old_totals = self._fingerprint
        new_specs, new_totals = fingerprint
        old_by_name = {
            spec.name: (spec, total)
            for spec, total in zip(old_specs, old_totals)
        }
        new_by_name = {
            spec.name: (spec, total)
            for spec, total in zip(new_specs, new_totals)
        }

        curves_kept = 0
        surviving_curves: dict[str, list[float]] = {}
        for name, curve in self._curves.items():
            old = old_by_name.get(name)
            new = new_by_name.get(name)
            if old is None or new is None:
                continue
            (old_spec, old_total), (new_spec, new_total) = old, new
            if (
                old_spec.mean_service_time == new_spec.mean_service_time
                and old_spec.second_moment_service_time
                == new_spec.second_moment_service_time
                and old_total == new_total
            ):
                surviving_curves[name] = curve
                curves_kept += 1
        curves_dropped = len(self._curves) - curves_kept
        self._curves = surviving_curves

        pools_kept = 0
        pools_dropped = 0
        old_pool_entries = self._pools.items()
        self._pools.clear()
        for (old_spec, count, policy_value), pool in old_pool_entries:
            new = new_by_name.get(old_spec.name)
            if new is None:
                pools_dropped += 1
                continue
            new_spec = new[0]
            if (
                old_spec.failure_rate != new_spec.failure_rate
                or old_spec.repair_rate != new_spec.repair_rate
            ):
                pools_dropped += 1
                continue
            rekeyed = ServerPoolAvailability(
                spec=new_spec, count=count, policy=RepairPolicy(policy_value)
            )
            if "state_probabilities" in pool.__dict__:
                # Carry the already-solved marginal over; the chain
                # depends only on (failure rate, repair rate, count,
                # policy), all unchanged here.
                rekeyed.__dict__["state_probabilities"] = pool.__dict__[
                    "state_probabilities"
                ]
            self._pools.put((new_spec, count, policy_value), rekeyed)
            pools_kept += 1

        assessments_dropped = len(self._assessments)
        self._assessments.clear()

        self._fingerprint = fingerprint
        self.rebinds += 1
        obs.count("evaluation_cache.rebinds")
        obs.event(
            "evaluation_cache.rebound",
            reason=reason,
            curves_kept=curves_kept,
            curves_dropped=curves_dropped,
            pools_kept=pools_kept,
            pools_dropped=pools_dropped,
        )
        return {
            "curves_kept": curves_kept,
            "curves_dropped": curves_dropped,
            "pools_kept": pools_kept,
            "pools_dropped": pools_dropped,
            "assessments_dropped": assessments_dropped,
        }

    def clear_assessments(self) -> int:
        """Drop cached goal assessments, keeping curves and marginals.

        The recommendation pipeline calls this before every published
        search so its ``evaluations`` accounting matches a cold run
        exactly — warm curves and pool marginals are pure value caches
        that leave the document unchanged, but a warm assessment would
        skip an ``evaluation_count`` increment.  Returns the number of
        dropped assessments.
        """
        dropped = len(self._assessments)
        self._assessments.clear()
        return dropped

    # ------------------------------------------------------------------
    # Goal assessments
    # ------------------------------------------------------------------
    def assessment(self, key: Hashable) -> Any | None:
        """Cached goal assessment for ``key`` (``None`` on miss/disabled)."""
        if not self.enabled:
            return None
        return self._assessments.get(key)

    def store_assessment(self, key: Hashable, value: Any) -> None:
        """Cache a goal assessment under ``key`` (no-op when disabled)."""
        if self.enabled:
            self._assessments.put(key, value)

    # ------------------------------------------------------------------
    # Per-pool birth-death marginals
    # ------------------------------------------------------------------
    def pool(
        self,
        spec: ServerTypeSpec,
        count: int,
        policy: RepairPolicy,
    ) -> ServerPoolAvailability:
        """The birth-death chain of one replicated pool, shared.

        The returned :class:`ServerPoolAvailability` lazily computes its
        steady-state marginal once; every candidate configuration with
        the same ``(spec, count, policy)`` then reuses it.
        """
        if not self.enabled:
            return ServerPoolAvailability(
                spec=spec, count=count, policy=policy
            )
        key = (spec, count, policy.value)
        pool = self._pools.get(key)
        if pool is None:
            pool = ServerPoolAvailability(
                spec=spec, count=count, policy=policy
            )
            self._pools.put(key, pool)
        return pool

    # ------------------------------------------------------------------
    # Per-type waiting-time curves
    # ------------------------------------------------------------------
    def waiting_curve(
        self,
        server_type: str,
        up_to: int,
        compute: Callable[[int], float],
    ) -> np.ndarray:
        """The curve ``w_x(n)`` for ``n = 0..up_to`` of one type.

        Missing points are computed with ``compute(n)`` and appended;
        points computed for a smaller candidate are prefixes of larger
        ones, so curves only ever grow.  Returns a fresh array (callers
        may not mutate cached state).
        """
        if not self.enabled:
            return np.array(
                [compute(n) for n in range(up_to + 1)], dtype=float
            )
        curve = self._curves.setdefault(server_type, [])
        if len(curve) > up_to:
            self.curve_hits += 1
            obs.count("evaluation_cache.waiting_curve.hits")
        else:
            missing = up_to + 1 - len(curve)
            self.curve_misses += 1
            self.curve_points_computed += missing
            obs.count("evaluation_cache.waiting_curve.misses")
            for n in range(len(curve), up_to + 1):
                curve.append(float(compute(n)))
        return np.array(curve[: up_to + 1], dtype=float)

    # ------------------------------------------------------------------
    # Snapshots (parallel search merge-back)
    # ------------------------------------------------------------------
    def export_snapshot(self) -> dict:
        """Picklable snapshot of the *shareable* caches.

        Contains the waiting-time curves and the pool marginals (as
        plain floats), plus the model fingerprint for binding checks.
        Goal assessments are deliberately excluded: merging them into
        another evaluator's cache would change that evaluator's
        assessment-lookup outcomes and with it the ``evaluations``
        accounting of a search — the curves and marginals are pure
        value caches with no such protocol attached.
        """
        return {
            "fingerprint": self._fingerprint,
            "curves": {
                name: list(curve) for name, curve in self._curves.items()
            },
            "pools": [
                (spec, count, policy_value,
                 pool.state_probabilities.tolist())
                for (spec, count, policy_value), pool in self._pools.items()
            ],
        }

    def merge_snapshot(self, snapshot: dict) -> dict[str, int]:
        """Fold a snapshot's warmed entries into this cache.

        Curves are extended where the snapshot knows more points (the
        values for shared prefixes are bitwise identical by
        construction, so existing points are never overwritten); pool
        marginals are added where missing, reconstructed with their
        already-solved steady-state vector so no birth-death solve is
        repeated.  A snapshot from a differently-fingerprinted model
        raises; merging into a disabled cache is a no-op.  Returns the
        number of newly merged curve points and pools.
        """
        if not self.enabled:
            return {"curve_points": 0, "pools": 0}
        fingerprint = snapshot.get("fingerprint")
        if fingerprint is not None:
            self.bind(fingerprint)
        merged_points = 0
        for name, curve in snapshot.get("curves", {}).items():
            mine = self._curves.setdefault(name, [])
            if len(curve) > len(mine):
                merged_points += len(curve) - len(mine)
                mine.extend(float(value) for value in curve[len(mine):])
        merged_pools = 0
        for spec, count, policy_value, probabilities in snapshot.get(
            "pools", ()
        ):
            key = (spec, count, policy_value)
            if self._pools.peek(key) is not None:
                continue
            pool = ServerPoolAvailability(
                spec=spec, count=count, policy=RepairPolicy(policy_value)
            )
            # Seed the lazily computed marginal with the solved vector.
            pool.__dict__["state_probabilities"] = np.asarray(
                probabilities, dtype=float
            )
            self._pools.put(key, pool)
            merged_pools += 1
        obs.count("evaluation_cache.merges")
        return {"curve_points": merged_points, "pools": merged_pools}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Counter snapshot for reports and tests."""
        return {
            "assessments.size": len(self._assessments),
            "assessments.hits": self._assessments.hits,
            "assessments.misses": self._assessments.misses,
            "pool_marginals.size": len(self._pools),
            "pool_marginals.hits": self._pools.hits,
            "pool_marginals.misses": self._pools.misses,
            "waiting_curve.types": len(self._curves),
            "waiting_curve.hits": self.curve_hits,
            "waiting_curve.misses": self.curve_misses,
            "waiting_curve.points_computed": self.curve_points_computed,
            "evictions": self._assessments.evictions + self._pools.evictions,
            "rebinds": self.rebinds,
        }
