"""Performability goals and their evaluation (Section 7.1).

System administrators specify two kinds of goals: a tolerance threshold
for the mean waiting time of service requests (optionally refined per
server type) and a tolerance threshold for the unavailability of the
entire WFMS.  :class:`GoalEvaluator` checks a candidate configuration
against these goals using the availability model (Section 5) and the
performability model (Section 6); it is the inner loop of the
configuration search (Section 7.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro import obs
from repro.core.availability import AvailabilityModel, RepairPolicy
from repro.core.evaluation_cache import EvaluationCache, model_fingerprint
from repro.core.model_types import ServerTypeIndex
from repro.core.performance import PerformanceModel, SystemConfiguration
from repro.core.performability import (
    DegradedStatePolicy,
    PerformabilityModel,
    PerformabilityReport,
)
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class PerformabilityGoals:
    """Goal thresholds for a WFMS configuration.

    Parameters
    ----------
    max_waiting_time:
        Tolerance threshold on the expected (performability) waiting time,
        applied to every server type unless overridden per type.
    max_waiting_times_per_type:
        Optional per-type refinements; keys are server type names.
    max_unavailability:
        Tolerance threshold on the system unavailability (1 minus the
        required minimum availability level).
    max_unavailability_per_type:
        Optional per-server-type availability refinements (Section 7.1:
        goals "can be refined into workflow-type-specific goals, by
        requiring, for example, different ... availability levels for
        specific server types"): the probability that *all* replicas of
        the named type are down must stay below the threshold.
    """

    max_waiting_time: float | None = None
    max_waiting_times_per_type: Mapping[str, float] = field(
        default_factory=dict
    )
    max_unavailability: float | None = None
    max_unavailability_per_type: Mapping[str, float] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        per_type = dict(self.max_waiting_times_per_type)
        object.__setattr__(self, "max_waiting_times_per_type", per_type)
        per_type_availability = dict(self.max_unavailability_per_type)
        object.__setattr__(
            self, "max_unavailability_per_type", per_type_availability
        )
        if (self.max_waiting_time is None and not per_type
                and self.max_unavailability is None
                and not per_type_availability):
            raise ValidationError("at least one goal must be specified")
        if self.max_waiting_time is not None and self.max_waiting_time <= 0.0:
            raise ValidationError("max_waiting_time must be positive")
        for name, threshold in per_type.items():
            if threshold <= 0.0:
                raise ValidationError(
                    f"waiting-time threshold of {name} must be positive"
                )
        for name, threshold in per_type_availability.items():
            if not 0.0 < threshold < 1.0:
                raise ValidationError(
                    f"unavailability threshold of {name} must lie strictly "
                    "in (0, 1)"
                )
        if self.max_unavailability is not None:
            if not 0.0 < self.max_unavailability < 1.0:
                raise ValidationError(
                    "max_unavailability must lie strictly in (0, 1)"
                )

    @property
    def has_performance_goal(self) -> bool:
        """Whether any waiting-time bound (global or per-type) is set."""
        return (self.max_waiting_time is not None
                or bool(self.max_waiting_times_per_type))

    @property
    def has_availability_goal(self) -> bool:
        """Whether any unavailability bound (global or per-type) is set."""
        return (self.max_unavailability is not None
                or bool(self.max_unavailability_per_type))

    def waiting_time_threshold(self, server_type: str) -> float:
        """Effective threshold for one server type (inf if unconstrained)."""
        if server_type in self.max_waiting_times_per_type:
            return float(self.max_waiting_times_per_type[server_type])
        if self.max_waiting_time is not None:
            return float(self.max_waiting_time)
        return math.inf

    def type_unavailability_threshold(self, server_type: str) -> float:
        """Per-type unavailability threshold (inf if unconstrained)."""
        if server_type in self.max_unavailability_per_type:
            return float(self.max_unavailability_per_type[server_type])
        return math.inf

    def cache_key(self) -> tuple:
        """Canonical value-based key of these goals.

        Two goals objects with equal thresholds produce equal keys, and
        unequal thresholds produce unequal keys — unlike ``id(goals)``,
        which CPython recycles after garbage collection, so a dropped
        goals object could alias a new one and serve stale assessments.
        """
        return (
            self.max_waiting_time,
            tuple(sorted(self.max_waiting_times_per_type.items())),
            self.max_unavailability,
            tuple(sorted(self.max_unavailability_per_type.items())),
        )

    def requiring_all_metrics(self) -> "PerformabilityGoals":
        """Equal-bounds goals whose assessments expose every metric.

        :meth:`GoalEvaluator.assess` skips the (expensive)
        performability model when no waiting-time goal is set.  The
        multi-objective frontier search, however, needs *all* of
        ``(cost, waiting time, unavailability, performability waiting
        time)`` for every candidate even when an axis is unbounded.
        This returns goals with the identical feasible region — an
        unbounded waiting axis becomes an explicit ``inf`` threshold,
        which can never be violated (``inf > inf`` is false, so even a
        saturated type stays within an unbounded goal) — but whose
        assessments always carry the performability report.
        """
        if self.has_performance_goal:
            return self
        return PerformabilityGoals(
            max_waiting_time=math.inf,
            max_waiting_times_per_type=self.max_waiting_times_per_type,
            max_unavailability=self.max_unavailability,
            max_unavailability_per_type=self.max_unavailability_per_type,
        )


@dataclass(frozen=True)
class GoalViolation:
    """One violated goal in an assessment."""

    kind: str  # "waiting_time", "unavailability", or "type_unavailability"
    server_type: str | None
    actual: float
    threshold: float

    def __str__(self) -> str:
        if self.kind == "waiting_time":
            subject = f"waiting time of {self.server_type}"
        elif self.kind == "type_unavailability":
            subject = f"unavailability of {self.server_type}"
        else:
            subject = "system unavailability"
        return f"{subject}: {self.actual:.6g} exceeds {self.threshold:.6g}"


@dataclass(frozen=True)
class GoalAssessment:
    """Outcome of checking one configuration against the goals."""

    configuration: SystemConfiguration
    goals: PerformabilityGoals
    violations: tuple[GoalViolation, ...]
    performability: PerformabilityReport | None
    unavailability: float | None
    per_type_unavailability: dict[str, float]
    utilizations: dict[str, float]

    @property
    def satisfied(self) -> bool:
        """Whether the configuration meets every specified goal."""
        return not self.violations

    @property
    def availability_satisfied(self) -> bool:
        """Whether no (un)availability goal is violated."""
        return not any(
            violation.kind in ("unavailability", "type_unavailability")
            for violation in self.violations
        )

    @property
    def performance_satisfied(self) -> bool:
        """Whether no waiting-time goal is violated."""
        return not any(
            violation.kind == "waiting_time" for violation in self.violations
        )

    @property
    def saturated_types(self) -> tuple[str, ...]:
        """Server types that are truly saturated (utilization >= 1).

        Distinguishes "the pool cannot sustain its load at all" from "a
        waiting-time goal is merely violated": a saturated type's
        waiting time is ``inf`` for structural reasons (the M/G/1
        station has no steady state), while a violated-but-finite
        waiting time only means the threshold is too tight.  The
        frontier search reports this per point so operators can tell
        undersized configurations from tightly-bounded ones.  Types
        with zero replicas but positive load have infinite utilization
        and are included.
        """
        return tuple(
            name
            for name, utilization in sorted(self.utilizations.items())
            if utilization >= 1.0
        )


class GoalEvaluator:
    """Evaluates configurations against performability goals.

    Wires together the performance model (built once per workload), the
    availability model (built per candidate configuration), and the
    performability model.  Evaluation results are cached in an
    :class:`~repro.core.evaluation_cache.EvaluationCache` keyed by the
    *values* of the configuration and the goals, which the iterating
    search of Section 7.2 relies on; passing a shared cache lets several
    evaluators (e.g. one per search algorithm) reuse per-type waiting
    curves, pool marginals, and whole assessments across searches.
    """

    def __init__(
        self,
        performance: PerformanceModel,
        repair_policy: RepairPolicy = RepairPolicy.INDEPENDENT,
        degraded_policy: DegradedStatePolicy = DegradedStatePolicy.CONDITIONAL,
        penalty_waiting_time: float | None = None,
        cache: EvaluationCache | None = None,
    ) -> None:
        self.performance = performance
        self.repair_policy = repair_policy
        self.degraded_policy = degraded_policy
        self.penalty_waiting_time = penalty_waiting_time
        self.cache = cache if cache is not None else EvaluationCache()
        self.cache.bind(model_fingerprint(performance))
        self.evaluation_count = 0

    @property
    def server_types(self) -> ServerTypeIndex:
        """Server-type index shared by the underlying models."""
        return self.performance.server_types

    def _cache_key(
        self, configuration: SystemConfiguration
    ) -> tuple[tuple[str, int], ...]:
        return tuple(sorted(configuration.replicas.items()))

    def _policy_key(self) -> tuple:
        """Evaluator parameters an assessment's numbers depend on."""
        return (
            self.repair_policy.value,
            self.degraded_policy.value,
            self.penalty_waiting_time,
        )

    def _assessment_key(
        self,
        configuration: SystemConfiguration,
        goals: PerformabilityGoals,
    ) -> tuple:
        """Canonical cache key of one (configuration, goals) assessment."""
        return (
            self._cache_key(configuration),
            goals.cache_key(),
            self._policy_key(),
        )

    def assess(
        self,
        configuration: SystemConfiguration,
        goals: PerformabilityGoals,
    ) -> GoalAssessment:
        """Check one configuration against the goals (cached).

        The cache key combines the canonical configuration tuple, the
        goals' *values* (never object identity), and the evaluator's
        policy parameters, so equal-valued goals objects share an entry
        and dropped-and-recreated objects can never alias a stale one.
        """
        key = self._assessment_key(configuration, goals)
        cached = self.cache.assessment(key)
        if cached is not None:
            return cached

        self.evaluation_count += 1
        obs.count("configuration.candidates_evaluated")
        availability_model = AvailabilityModel(
            self.server_types, configuration, policy=self.repair_policy,
            cache=self.cache,
        )
        violations: list[GoalViolation] = []

        unavailability = availability_model.unavailability()
        per_type = availability_model.per_type_unavailability()
        if goals.max_unavailability is not None:
            if unavailability > goals.max_unavailability:
                violations.append(
                    GoalViolation(
                        kind="unavailability",
                        server_type=None,
                        actual=unavailability,
                        threshold=goals.max_unavailability,
                    )
                )
        for name, value in per_type.items():
            threshold = goals.type_unavailability_threshold(name)
            if value > threshold:
                violations.append(
                    GoalViolation(
                        kind="type_unavailability",
                        server_type=name,
                        actual=value,
                        threshold=threshold,
                    )
                )

        performability_report: PerformabilityReport | None = None
        if goals.has_performance_goal:
            performability = PerformabilityModel(
                self.performance,
                availability_model,
                policy=self.degraded_policy,
                penalty_waiting_time=self.penalty_waiting_time,
                cache=self.cache,
            )
            performability_report = performability.expected_waiting_times()
            for name, value in (
                performability_report.expected_waiting_times.items()
            ):
                threshold = goals.waiting_time_threshold(name)
                if value > threshold:
                    violations.append(
                        GoalViolation(
                            kind="waiting_time",
                            server_type=name,
                            actual=value,
                            threshold=threshold,
                        )
                    )

        if violations:
            obs.count("configuration.goal_violations", len(violations))
        utilizations = self.performance.utilizations(configuration)
        assessment = GoalAssessment(
            configuration=configuration,
            goals=goals,
            violations=tuple(violations),
            performability=performability_report,
            unavailability=unavailability,
            per_type_unavailability=per_type,
            utilizations={
                name: float(utilizations[i])
                for i, name in enumerate(self.server_types.names)
            },
        )
        self.cache.store_assessment(key, assessment)
        return assessment

    def assess_many(
        self,
        configurations: list[SystemConfiguration],
        goals: PerformabilityGoals,
    ) -> list[GoalAssessment]:
        """Assess a batch of configurations, in order.

        The batch entry point the search executors call: worker
        processes evaluate whole candidate chunks through it, and the
        cache makes repeated members cheap.  Results are positionally
        aligned with ``configurations``.
        """
        return [
            self.assess(configuration, goals)
            for configuration in configurations
        ]

    def adopt_assessment(self, assessment: GoalAssessment) -> GoalAssessment:
        """Commit an externally computed assessment as if assessed here.

        Replays the exact :meth:`assess` bookkeeping — cache lookup,
        evaluation count, obs counters, cache store — without rerunning
        the models, so a parent process consuming worker-computed
        assessments in order ends up in a state bit-identical to having
        evaluated serially.  When the cache already holds an entry for
        the key, the cached assessment wins and the external one is
        discarded (again matching what :meth:`assess` would return).
        """
        key = self._assessment_key(assessment.configuration, assessment.goals)
        cached = self.cache.assessment(key)
        if cached is not None:
            return cached
        self.evaluation_count += 1
        obs.count("configuration.candidates_evaluated")
        if assessment.violations:
            obs.count(
                "configuration.goal_violations", len(assessment.violations)
            )
        self.cache.store_assessment(key, assessment)
        return assessment
