"""Configuration search towards a minimum-cost configuration (Section 7.2).

The most far-reaching use of the configuration tool is to ask for the
minimum-cost configuration that meets the specified performability and
availability goals.  The paper's first version uses a *greedy heuristic*:
iterate over candidate configurations by adding a replica of the most
critical server type, interleaving the availability and the performability
criterion so that each added server is justified by a re-evaluation (this
avoids "oversizing").  The paper remarks that full-fledged optimization
such as branch-and-bound or simulated annealing may eventually be used;
an exhaustive (exact) search and a simulated-annealing search are
therefore also provided, doubling as ablation baselines for the greedy
heuristic's near-minimality claim.

This module is the stable public API; the machinery lives in
:mod:`repro.core.search`, where one :class:`~repro.core.search.SearchEngine`
runs each algorithm as a candidate-proposal strategy against a pluggable
evaluation executor.  Every search below accepts an ``executor`` — pass a
:class:`~repro.core.search.ProcessPoolEvaluator` to evaluate candidate
batches on worker processes (bit-identical results, multi-core speed for
the batching searches); the default is in-process serial evaluation.
"""

from __future__ import annotations

from typing import Callable

from repro.core.goals import GoalEvaluator, PerformabilityGoals
from repro.core.performance import SystemConfiguration
from repro.core.search.engine import SearchEngine
from repro.core.search.executors import CandidateEvaluator
from repro.core.search.strategies import (
    BranchAndBoundStrategy,
    ExhaustiveStrategy,
    GreedyStrategy,
    SimulatedAnnealingStrategy,
)
from repro.core.search.types import (
    ConfigurationRecommendation,
    ReplicationConstraints,
    SearchStep,
)

__all__ = [
    "ConfigurationRecommendation",
    "ReplicationConstraints",
    "SearchStep",
    "branch_and_bound_configuration",
    "exhaustive_configuration",
    "greedy_configuration",
    "simulated_annealing_configuration",
]


def greedy_configuration(
    evaluator: GoalEvaluator,
    goals: PerformabilityGoals,
    constraints: ReplicationConstraints | None = None,
    initial: SystemConfiguration | None = None,
    executor: CandidateEvaluator | None = None,
    stop_check: Callable[[], bool] | None = None,
) -> ConfigurationRecommendation:
    """The paper's greedy heuristic (Section 7.2).

    Starting from the minimal admissible configuration, each step
    evaluates both criteria and adds one replica of the most critical
    server type for whichever goal is still violated — first the
    availability criterion, then (after re-evaluating) the
    performability criterion — until both goals hold.  Raises
    :class:`~repro.exceptions.InfeasibleConfigurationError` when the
    constraint bounds are exhausted first (the best configuration found
    is attached).
    """
    constraints = constraints or ReplicationConstraints()
    strategy = GreedyStrategy(evaluator, goals, constraints, initial)
    return SearchEngine(
        evaluator, goals, executor, stop_check=stop_check
    ).run(strategy)


def exhaustive_configuration(
    evaluator: GoalEvaluator,
    goals: PerformabilityGoals,
    constraints: ReplicationConstraints | None = None,
    executor: CandidateEvaluator | None = None,
    stop_check: Callable[[], bool] | None = None,
) -> ConfigurationRecommendation:
    """Exact minimum-cost configuration by enumeration in cost order.

    Exponential in the number of server types, but exact — the oracle
    against which the greedy heuristic's near-minimality is measured.
    """
    constraints = constraints or ReplicationConstraints(max_total_servers=16)
    strategy = ExhaustiveStrategy(evaluator, goals, constraints)
    return SearchEngine(
        evaluator, goals, executor, stop_check=stop_check
    ).run(strategy)


def branch_and_bound_configuration(
    evaluator: GoalEvaluator,
    goals: PerformabilityGoals,
    constraints: ReplicationConstraints | None = None,
    executor: CandidateEvaluator | None = None,
    stop_check: Callable[[], bool] | None = None,
) -> ConfigurationRecommendation:
    """Exact minimum-cost search with monotonicity-based pruning.

    Analytic per-type lower bounds prune the infeasible corner without
    model evaluations; best-first expansion in cost order makes the
    first feasible configuration a provably minimum-cost one.  Exact
    like :func:`exhaustive_configuration`, typically at a small
    fraction of its model evaluations.
    """
    constraints = constraints or ReplicationConstraints(max_total_servers=32)
    strategy = BranchAndBoundStrategy(evaluator, goals, constraints)
    return SearchEngine(
        evaluator, goals, executor, stop_check=stop_check
    ).run(strategy)


def simulated_annealing_configuration(
    evaluator: GoalEvaluator,
    goals: PerformabilityGoals,
    constraints: ReplicationConstraints | None = None,
    iterations: int = 400,
    initial_temperature: float = 4.0,
    cooling: float = 0.98,
    violation_penalty: float = 100.0,
    seed: int = 0,
    executor: CandidateEvaluator | None = None,
    stop_check: Callable[[], bool] | None = None,
) -> ConfigurationRecommendation:
    """Simulated-annealing search over the configuration space.

    The objective is ``cost + violation_penalty * (#violated goals)``;
    neighbour moves add or remove one replica of a random type within the
    constraint bounds.  Deterministic for a fixed ``seed``.
    """
    constraints = constraints or ReplicationConstraints(max_total_servers=32)
    strategy = SimulatedAnnealingStrategy(
        evaluator,
        goals,
        constraints,
        iterations=iterations,
        initial_temperature=initial_temperature,
        cooling=cooling,
        violation_penalty=violation_penalty,
        seed=seed,
    )
    return SearchEngine(
        evaluator, goals, executor, stop_check=stop_check
    ).run(strategy)
