"""Configuration search towards a minimum-cost configuration (Section 7.2).

The most far-reaching use of the configuration tool is to ask for the
minimum-cost configuration that meets the specified performability and
availability goals.  The paper's first version uses a *greedy heuristic*:
iterate over candidate configurations by adding a replica of the most
critical server type, interleaving the availability and the performability
criterion so that each added server is justified by a re-evaluation (this
avoids "oversizing").  The paper remarks that full-fledged optimization
such as branch-and-bound or simulated annealing may eventually be used;
this module therefore also provides an exhaustive (exact) search and a
simulated-annealing search, which double as ablation baselines for the
greedy heuristic's near-minimality claim.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro import obs
from repro.core.goals import GoalAssessment, GoalEvaluator, PerformabilityGoals
from repro.core.performance import SystemConfiguration
from repro.exceptions import InfeasibleConfigurationError, ValidationError


@dataclass(frozen=True)
class ReplicationConstraints:
    """Bounds on the replication degree per server type (Section 7.1).

    Recommendations "can take into account specific constraints such as
    limiting or fixing the degree of replication of particular server
    types (e.g., for cost reasons)".  ``fixed`` pins a type to an exact
    count; ``minimum``/``maximum`` bound the search per type;
    ``max_total_servers`` bounds the whole system.
    """

    minimum: Mapping[str, int] = field(default_factory=dict)
    maximum: Mapping[str, int] = field(default_factory=dict)
    fixed: Mapping[str, int] = field(default_factory=dict)
    max_total_servers: int = 64

    def __post_init__(self) -> None:
        for mapping_name in ("minimum", "maximum", "fixed"):
            mapping = dict(getattr(self, mapping_name))
            for name, value in mapping.items():
                # A zero maximum would make upper_bound < lower_bound and
                # surface only as a confusing downstream search failure.
                if int(value) != value or value < 1:
                    raise ValidationError(
                        f"{mapping_name}[{name}] must be a positive integer"
                    )
                mapping[name] = int(value)
            object.__setattr__(self, mapping_name, mapping)
        if self.max_total_servers < 1:
            raise ValidationError("max_total_servers must be >= 1")
        for name, value in self.fixed.items():
            low = self.minimum.get(name)
            high = self.maximum.get(name)
            if low is not None and value < low:
                raise ValidationError(
                    f"fixed[{name}]={value} conflicts with minimum {low}"
                )
            if high is not None and value > high:
                raise ValidationError(
                    f"fixed[{name}]={value} conflicts with maximum {high}"
                )

    def lower_bound(self, server_type: str) -> int:
        """Smallest admissible replica count for one type."""
        if server_type in self.fixed:
            return self.fixed[server_type]
        return self.minimum.get(server_type, 1)

    def upper_bound(self, server_type: str) -> int:
        """Largest admissible replica count for one type."""
        if server_type in self.fixed:
            return self.fixed[server_type]
        return self.maximum.get(server_type, self.max_total_servers)

    def admits(self, configuration: SystemConfiguration) -> bool:
        """Whether a configuration satisfies all bounds."""
        if configuration.total_servers > self.max_total_servers:
            return False
        return all(
            self.lower_bound(name) <= count <= self.upper_bound(name)
            for name, count in configuration.replicas.items()
        )

    def can_add(self, configuration: SystemConfiguration, server_type: str) -> bool:
        """Whether one more replica of ``server_type`` stays admissible."""
        if configuration.total_servers + 1 > self.max_total_servers:
            return False
        return (configuration.count(server_type) + 1
                <= self.upper_bound(server_type))


@dataclass(frozen=True)
class SearchStep:
    """One iteration of a configuration search, for traceability."""

    configuration: SystemConfiguration
    cost: float
    satisfied: bool
    added_server_type: str | None
    criterion: str | None


@dataclass(frozen=True)
class ConfigurationRecommendation:
    """Result of a configuration search."""

    configuration: SystemConfiguration
    cost: float
    assessment: GoalAssessment
    evaluations: int
    trace: tuple[SearchStep, ...] = ()
    algorithm: str = "greedy"

    def format_text(self) -> str:
        lines = [
            f"Recommended configuration ({self.algorithm}): "
            f"{self.configuration}",
            f"  cost: {self.cost:g} ({self.configuration.total_servers} servers)",
            f"  model evaluations: {self.evaluations}",
            f"  goals satisfied: {self.assessment.satisfied}",
        ]
        if self.assessment.unavailability is not None:
            lines.append(
                f"  system unavailability: "
                f"{self.assessment.unavailability:.3e}"
            )
        if self.assessment.performability is not None:
            worst = self.assessment.performability.max_expected_waiting_time
            lines.append(f"  worst expected waiting time: {worst:.6f}")
        return "\n".join(lines)


def _initial_configuration(
    evaluator: GoalEvaluator, constraints: ReplicationConstraints
) -> SystemConfiguration:
    return SystemConfiguration(
        {
            name: constraints.lower_bound(name)
            for name in evaluator.server_types.names
        }
    )


def _most_critical_for_availability(
    assessment: GoalAssessment,
    configuration: SystemConfiguration,
    constraints: ReplicationConstraints,
) -> str | None:
    """Type whose complete failure contributes most to unavailability.

    Types violating their own per-type availability goal take precedence
    (ordered by relative excess); among the rest, the largest absolute
    per-type unavailability wins.
    """
    candidates = []
    for name, unavailability in assessment.per_type_unavailability.items():
        if not constraints.can_add(configuration, name):
            continue
        threshold = assessment.goals.type_unavailability_threshold(name)
        excess = (
            unavailability / threshold if math.isfinite(threshold) else 0.0
        )
        candidates.append(((excess > 1.0, excess, unavailability), name))
    if not candidates:
        return None
    candidates.sort(reverse=True)
    return candidates[0][1]


def _most_critical_for_performance(
    assessment: GoalAssessment,
    configuration: SystemConfiguration,
    constraints: ReplicationConstraints,
    goals: PerformabilityGoals,
) -> str | None:
    """Type with the largest relative waiting-time excess.

    Infinite waiting times (down or saturated types) dominate; ties are
    broken by utilization, so the most loaded type is relieved first.
    """
    report = assessment.performability
    if report is None:
        return None
    best_key: tuple[float, float] | None = None
    best_name: str | None = None
    for name, value in report.expected_waiting_times.items():
        if not constraints.can_add(configuration, name):
            continue
        threshold = goals.waiting_time_threshold(name)
        if math.isinf(value):
            excess = math.inf
        elif math.isinf(threshold):
            excess = 0.0
        else:
            excess = value / threshold
        key = (excess, assessment.utilizations.get(name, 0.0))
        if best_key is None or key > best_key:
            best_key = key
            best_name = name
    return best_name


def greedy_configuration(
    evaluator: GoalEvaluator,
    goals: PerformabilityGoals,
    constraints: ReplicationConstraints | None = None,
    initial: SystemConfiguration | None = None,
) -> ConfigurationRecommendation:
    """The paper's greedy heuristic (Section 7.2).

    Starting from the minimal admissible configuration, each loop
    iteration evaluates both criteria and adds one replica of the most
    critical server type for whichever goal is still violated — first the
    availability criterion, then (after re-evaluating) the performability
    criterion — until both goals hold.  Raises
    :class:`InfeasibleConfigurationError` when the constraint bounds are
    exhausted first (the best configuration found is attached).
    """
    constraints = constraints or ReplicationConstraints()
    configuration = initial or _initial_configuration(evaluator, constraints)
    if not constraints.admits(configuration):
        raise ValidationError(
            f"initial configuration {configuration} violates the constraints"
        )
    trace: list[SearchStep] = []
    evaluations_before = evaluator.evaluation_count
    added_type: str | None = None
    criterion: str | None = None

    with obs.span("configuration.search", algorithm="greedy") as span:
        return _greedy_loop(
            evaluator, goals, constraints, configuration,
            trace, evaluations_before, added_type, criterion, span,
        )


def _greedy_loop(
    evaluator: GoalEvaluator,
    goals: PerformabilityGoals,
    constraints: ReplicationConstraints,
    configuration: SystemConfiguration,
    trace: list[SearchStep],
    evaluations_before: int,
    added_type: str | None,
    criterion: str | None,
    span,
) -> ConfigurationRecommendation:
    while True:
        obs.count("configuration.search.iterations")
        assessment = evaluator.assess(configuration, goals)
        trace.append(
            SearchStep(
                configuration=configuration,
                cost=configuration.cost(evaluator.server_types),
                satisfied=assessment.satisfied,
                added_server_type=added_type,
                criterion=criterion,
            )
        )
        if assessment.satisfied:
            span.set("iterations", len(trace))
            span.set(
                "evaluations",
                evaluator.evaluation_count - evaluations_before,
            )
            return ConfigurationRecommendation(
                configuration=configuration,
                cost=configuration.cost(evaluator.server_types),
                assessment=assessment,
                evaluations=evaluator.evaluation_count - evaluations_before,
                trace=tuple(trace),
                algorithm="greedy",
            )
        # Interleave the two criteria: fix availability first, then
        # re-evaluate before touching performance (Section 7.2).
        if not assessment.availability_satisfied:
            criterion = "availability"
            added_type = _most_critical_for_availability(
                assessment, configuration, constraints
            )
        else:
            criterion = "performability"
            added_type = _most_critical_for_performance(
                assessment, configuration, constraints, goals
            )
        if added_type is None:
            raise InfeasibleConfigurationError(
                f"constraints exhausted at {configuration} with goals "
                "still violated: "
                + "; ".join(str(v) for v in assessment.violations),
                best_found=ConfigurationRecommendation(
                    configuration=configuration,
                    cost=configuration.cost(evaluator.server_types),
                    assessment=assessment,
                    evaluations=(evaluator.evaluation_count
                                 - evaluations_before),
                    trace=tuple(trace),
                    algorithm="greedy",
                ),
            )
        configuration = configuration.with_added_replica(added_type)


def _configurations_by_cost(
    evaluator: GoalEvaluator, constraints: ReplicationConstraints
) -> Iterator[SystemConfiguration]:
    """All admissible configurations in non-decreasing cost order."""
    names = evaluator.server_types.names
    ranges = [
        range(constraints.lower_bound(name),
              constraints.upper_bound(name) + 1)
        for name in names
    ]
    candidates = [
        SystemConfiguration(dict(zip(names, counts)))
        for counts in itertools.product(*ranges)
        if sum(counts) <= constraints.max_total_servers
    ]
    candidates.sort(
        key=lambda configuration: (
            configuration.cost(evaluator.server_types),
            configuration.total_servers,
            str(configuration),
        )
    )
    yield from candidates


def exhaustive_configuration(
    evaluator: GoalEvaluator,
    goals: PerformabilityGoals,
    constraints: ReplicationConstraints | None = None,
) -> ConfigurationRecommendation:
    """Exact minimum-cost configuration by enumeration in cost order.

    Exponential in the number of server types, but exact — the oracle
    against which the greedy heuristic's near-minimality is measured.
    """
    constraints = constraints or ReplicationConstraints(max_total_servers=16)
    evaluations_before = evaluator.evaluation_count
    best: GoalAssessment | None = None
    with obs.span("configuration.search", algorithm="exhaustive") as span:
        for configuration in _configurations_by_cost(evaluator, constraints):
            obs.count("configuration.search.iterations")
            assessment = evaluator.assess(configuration, goals)
            if assessment.satisfied:
                best = assessment
                break
        span.set(
            "evaluations", evaluator.evaluation_count - evaluations_before
        )
    if best is None:
        raise InfeasibleConfigurationError(
            "no admissible configuration satisfies the goals"
        )
    return ConfigurationRecommendation(
        configuration=best.configuration,
        cost=best.configuration.cost(evaluator.server_types),
        assessment=best,
        evaluations=evaluator.evaluation_count - evaluations_before,
        algorithm="exhaustive",
    )


def _per_type_lower_bounds(
    evaluator: GoalEvaluator,
    goals: PerformabilityGoals,
    constraints: ReplicationConstraints,
) -> dict[str, int]:
    """Per-type replica lower bounds implied by the goals.

    Both metrics are monotone in the replication degree, so a
    configuration can only be feasible if every type alone satisfies the
    *necessary* conditions: (i) the type's own unavailability must not
    already exceed the system goal (the system is down whenever the type
    is fully down), and (ii) the failure-free waiting time — a lower
    bound on the performability waiting time — must meet the threshold,
    which in particular requires an unsaturated replica pool.  These
    bounds let branch-and-bound skip the infeasible corner of the
    search space without evaluating it.
    """
    from repro.core.availability import (
        ServerPoolAvailability,
        minimum_replicas_for_availability,
    )
    from repro.queueing import mg1_mean_waiting_time

    totals = evaluator.performance.total_request_rates()
    bounds: dict[str, int] = {}
    for i, spec in enumerate(evaluator.server_types.specs):
        bound = constraints.lower_bound(spec.name)
        upper = constraints.upper_bound(spec.name)

        availability_target = min(
            goals.max_unavailability
            if goals.max_unavailability is not None else math.inf,
            goals.type_unavailability_threshold(spec.name),
        )
        if math.isfinite(availability_target) and spec.failure_rate > 0.0:
            single = ServerPoolAvailability(spec, 1, evaluator.repair_policy)
            if single.unavailability > availability_target:
                try:
                    bound = max(
                        bound,
                        minimum_replicas_for_availability(
                            spec, availability_target,
                            policy=evaluator.repair_policy,
                            max_replicas=upper,
                        ),
                    )
                except ValidationError:
                    bound = upper + 1  # provably infeasible within bounds

        waiting_target = goals.waiting_time_threshold(spec.name)
        if math.isfinite(waiting_target) and totals[i] > 0.0:
            count = bound
            while count <= upper:
                waiting = mg1_mean_waiting_time(
                    totals[i] / count,
                    spec.mean_service_time,
                    spec.second_moment_service_time,
                )
                if waiting <= waiting_target:
                    break
                count += 1
            bound = count
        bounds[spec.name] = bound
    return bounds


def branch_and_bound_configuration(
    evaluator: GoalEvaluator,
    goals: PerformabilityGoals,
    constraints: ReplicationConstraints | None = None,
) -> ConfigurationRecommendation:
    """Exact minimum-cost search with monotonicity-based pruning.

    The paper notes the search "may eventually entail full-fledged
    algorithms for mathematical optimization such as branch-and-bound".
    Both goal metrics improve monotonically when replicas are added, so:

    1. per-type *lower bounds* are derived analytically (availability and
       failure-free waiting time are necessary conditions), pruning the
       infeasible corner without any model evaluation;
    2. candidates are expanded best-first in cost order from the
       lower-bound corner, so the first feasible configuration found is
       a provably minimum-cost one.

    Exact like :func:`exhaustive_configuration`, typically at a small
    fraction of its model evaluations.
    """
    import heapq

    constraints = constraints or ReplicationConstraints(max_total_servers=32)
    evaluations_before = evaluator.evaluation_count
    names = evaluator.server_types.names
    lower = _per_type_lower_bounds(evaluator, goals, constraints)
    if any(lower[name] > constraints.upper_bound(name) for name in names):
        raise InfeasibleConfigurationError(
            "analytic lower bounds already exceed the constraints; no "
            "admissible configuration can satisfy the goals"
        )

    start = SystemConfiguration({name: lower[name] for name in names})
    if not constraints.admits(start):
        raise InfeasibleConfigurationError(
            f"lower-bound configuration {start} violates the total-server "
            "constraint"
        )

    def cost_of(configuration: SystemConfiguration) -> float:
        return configuration.cost(evaluator.server_types)

    counter = 0
    frontier: list[tuple[float, int, SystemConfiguration]] = []
    heapq.heappush(frontier, (cost_of(start), counter, start))
    seen = {tuple(sorted(start.replicas.items()))}
    with obs.span(
        "configuration.search", algorithm="branch_and_bound"
    ) as span:
        while frontier:
            _, _, configuration = heapq.heappop(frontier)
            obs.count("configuration.search.iterations")
            assessment = evaluator.assess(configuration, goals)
            if assessment.satisfied:
                span.set(
                    "evaluations",
                    evaluator.evaluation_count - evaluations_before,
                )
                return ConfigurationRecommendation(
                    configuration=configuration,
                    cost=cost_of(configuration),
                    assessment=assessment,
                    evaluations=(evaluator.evaluation_count
                                 - evaluations_before),
                    algorithm="branch_and_bound",
                )
            for name in names:
                if not constraints.can_add(configuration, name):
                    continue
                child = configuration.with_added_replica(name)
                key = tuple(sorted(child.replicas.items()))
                if key in seen:
                    continue
                seen.add(key)
                counter += 1
                heapq.heappush(frontier, (cost_of(child), counter, child))
    raise InfeasibleConfigurationError(
        "no admissible configuration satisfies the goals"
    )


def simulated_annealing_configuration(
    evaluator: GoalEvaluator,
    goals: PerformabilityGoals,
    constraints: ReplicationConstraints | None = None,
    iterations: int = 400,
    initial_temperature: float = 4.0,
    cooling: float = 0.98,
    violation_penalty: float = 100.0,
    seed: int = 0,
) -> ConfigurationRecommendation:
    """Simulated-annealing search over the configuration space.

    The objective is ``cost + violation_penalty * (#violated goals)``;
    neighbour moves add or remove one replica of a random type within the
    constraint bounds.  Deterministic for a fixed ``seed``.
    """
    constraints = constraints or ReplicationConstraints(max_total_servers=32)
    rng = random.Random(seed)
    names = list(evaluator.server_types.names)
    evaluations_before = evaluator.evaluation_count

    def objective(assessment: GoalAssessment) -> float:
        return (assessment.configuration.cost(evaluator.server_types)
                + violation_penalty * len(assessment.violations))

    current = _initial_configuration(evaluator, constraints)
    current_assessment = evaluator.assess(current, goals)
    best_assessment = current_assessment
    temperature = initial_temperature
    with obs.span(
        "configuration.search",
        algorithm="simulated_annealing",
        iterations=iterations,
    ) as span:
        for _ in range(iterations):
            obs.count("configuration.search.iterations")
            name = rng.choice(names)
            delta = rng.choice((-1, 1))
            count = current.count(name) + delta
            if not (constraints.lower_bound(name) <= count
                    <= constraints.upper_bound(name)):
                continue
            replicas = dict(current.replicas)
            replicas[name] = count
            neighbour = SystemConfiguration(replicas)
            if neighbour.total_servers > constraints.max_total_servers:
                continue
            neighbour_assessment = evaluator.assess(neighbour, goals)
            # Track the best feasible configuration on *evaluation*, not
            # on acceptance: a satisfied, cheaper neighbour whose
            # Metropolis move is rejected must still be remembered.
            if (neighbour_assessment.satisfied
                    and (not best_assessment.satisfied
                         or objective(neighbour_assessment)
                         < objective(best_assessment))):
                best_assessment = neighbour_assessment
            difference = objective(neighbour_assessment) - objective(
                current_assessment
            )
            if difference <= 0.0 or rng.random() < math.exp(
                -difference / max(temperature, 1e-9)
            ):
                current = neighbour
                current_assessment = neighbour_assessment
            temperature *= cooling
        span.set(
            "evaluations", evaluator.evaluation_count - evaluations_before
        )

    if not best_assessment.satisfied:
        raise InfeasibleConfigurationError(
            "simulated annealing found no configuration satisfying the "
            "goals; increase iterations or relax constraints"
        )
    return ConfigurationRecommendation(
        configuration=best_assessment.configuration,
        cost=best_assessment.configuration.cost(evaluator.server_types),
        assessment=best_assessment,
        evaluations=evaluator.evaluation_count - evaluations_before,
        algorithm="simulated_annealing",
    )
