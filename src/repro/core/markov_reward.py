"""Markov reward models (MRM).

The paper uses two reward structures:

* **Reward until absorption** (Section 4.2): on the workflow CTMC, each
  visit to an execution state earns the per-visit service requests that the
  corresponding activity induces on each server type; the accumulated
  reward until absorption is the expected load of one workflow instance.
* **Steady-state reward** (Section 6): on the availability CTMC, each
  system state carries the waiting-time vector the performance model
  predicts for that degraded configuration; the steady-state expectation is
  the performability metric ``W^Y``.

Both per-visit and per-time-unit rewards are supported for the absorbing
case; the steady-state case supports scalar- and vector-valued rewards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.ctmc import AbsorbingCTMC, ErgodicCTMC, VisitMethod
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class AbsorptionRewardModel:
    """Markov reward model over an absorbing CTMC.

    Parameters
    ----------
    chain:
        The workflow CTMC.
    per_visit_rewards:
        Matrix (``k x n``) or vector (``n``) of rewards earned on *each
        visit* to a state — e.g. the load matrix ``L^t`` with one row per
        server type.
    per_time_rewards:
        Optional rewards earned *per time unit of residence* in a state.
    """

    chain: AbsorbingCTMC
    per_visit_rewards: np.ndarray | None = None
    per_time_rewards: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.per_visit_rewards is None and self.per_time_rewards is None:
            raise ValidationError(
                "at least one of per_visit_rewards / per_time_rewards is "
                "required"
            )
        for attribute in ("per_visit_rewards", "per_time_rewards"):
            value = getattr(self, attribute)
            if value is None:
                continue
            array = np.asarray(value, dtype=float)
            if array.ndim not in (1, 2):
                raise ValidationError(f"{attribute} must be a vector or matrix")
            if array.shape[-1] != self.chain.num_states:
                raise ValidationError(
                    f"{attribute} must have {self.chain.num_states} columns"
                )
            object.__setattr__(self, attribute, array)

    def expected_reward(
        self,
        method: VisitMethod = "fundamental",
        confidence: float = 0.99,
    ) -> np.ndarray | float:
        """Total expected reward accumulated until absorption.

        Per-visit rewards are weighted by expected visits; per-time rewards
        by the expected total residence time per state.  If both are given,
        their contributions are summed (shapes must agree).
        """
        with obs.span(
            "mrm.absorption_reward",
            size=self.chain.num_states,
            method=method,
        ):
            total: np.ndarray | float | None = None
            if self.per_visit_rewards is not None:
                visits = self.chain.expected_visits(
                    method=method, confidence=confidence
                )
                total = _apply(self.per_visit_rewards, visits)
            if self.per_time_rewards is not None:
                times = self.chain.expected_time_in_states()
                time_part = _apply(self.per_time_rewards, times)
                total = (
                    time_part if total is None else _add(total, time_part)
                )
        assert total is not None  # guaranteed by __post_init__
        return total


@dataclass(frozen=True)
class SteadyStateRewardModel:
    """Markov reward model over an ergodic CTMC (Section 6 structure).

    ``state_rewards`` has one column per CTMC state; a 1-D array is treated
    as scalar rewards.  Rows may be, for instance, the per-server-type
    waiting times of each system state.
    """

    chain: ErgodicCTMC
    state_rewards: np.ndarray

    def __post_init__(self) -> None:
        rewards = np.asarray(self.state_rewards, dtype=float)
        if rewards.ndim not in (1, 2):
            raise ValidationError("state_rewards must be a vector or matrix")
        if rewards.shape[-1] != self.chain.num_states:
            raise ValidationError(
                f"state_rewards must have {self.chain.num_states} columns"
            )
        object.__setattr__(self, "state_rewards", rewards)

    def expected_reward(self) -> float | np.ndarray:
        """Steady-state expected reward ``sum_i pi_i r_i``."""
        with obs.span(
            "mrm.steady_state_reward", size=self.chain.num_states
        ):
            return self.chain.expected_steady_state_reward(
                self.state_rewards
            )

    def conditional_expected_reward(
        self, condition: np.ndarray
    ) -> float | np.ndarray:
        """Expected reward conditioned on a subset of states.

        ``condition`` is a boolean mask over states; the steady-state
        probabilities are renormalized over the selected states.  Used by
        the performability model's ``CONDITIONAL`` policy, which conditions
        on the system being operational.
        """
        mask = np.asarray(condition, dtype=bool)
        if mask.shape != (self.chain.num_states,):
            raise ValidationError(
                f"condition must be a boolean vector of length "
                f"{self.chain.num_states}"
            )
        pi = self.chain.steady_state()
        mass = float(pi[mask].sum())
        if mass <= 0.0:
            raise ValidationError(
                "conditioning event has zero steady-state probability"
            )
        weights = np.where(mask, pi, 0.0) / mass
        rewards = self.state_rewards
        if rewards.ndim == 1:
            return float(rewards @ weights)
        return rewards @ weights


def _apply(rewards: np.ndarray, weights: np.ndarray) -> np.ndarray | float:
    if rewards.ndim == 1:
        return float(rewards @ weights)
    return rewards @ weights


def _add(
    left: np.ndarray | float, right: np.ndarray | float
) -> np.ndarray | float:
    result = np.asarray(left) + np.asarray(right)
    if result.ndim == 0:
        return float(result)
    return result
