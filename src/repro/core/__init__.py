"""Core analytic models of the paper (Sections 3-7).

Layering: the CTMC/DTMC/Markov-reward kernel at the bottom; the workflow
translation (Section 3) on top of it; then the performance (Section 4),
availability (Section 5), and performability (Section 6) models; and the
goal evaluation plus configuration search (Section 7) at the top.
"""

from repro.core.availability import (
    AvailabilityModel,
    RepairPolicy,
    ServerPoolAvailability,
    minimum_replicas_for_availability,
)
from repro.core.configuration import (
    ConfigurationRecommendation,
    ReplicationConstraints,
    SearchStep,
    branch_and_bound_configuration,
    exhaustive_configuration,
    greedy_configuration,
    simulated_annealing_configuration,
)
from repro.core.ctmc import (
    AbsorbingCTMC,
    ErgodicCTMC,
    Uniformization,
    remove_self_loops,
)
from repro.core.dtmc import AbsorbingDTMC, ErgodicDTMC
from repro.core.evaluation_cache import EvaluationCache, model_fingerprint
from repro.core.goals import (
    GoalAssessment,
    GoalEvaluator,
    GoalViolation,
    PerformabilityGoals,
)
from repro.core.markov_reward import (
    AbsorptionRewardModel,
    SteadyStateRewardModel,
)
from repro.core.model_types import (
    ActivitySpec,
    ServerRole,
    ServerTypeIndex,
    ServerTypeSpec,
)
from repro.core.performance import (
    Computer,
    PerformanceModel,
    PerformanceReport,
    SystemConfiguration,
    ThroughputReport,
    Workload,
    WorkloadItem,
)
from repro.core.performability import (
    DegradedStatePolicy,
    PerformabilityModel,
    PerformabilityReport,
)
from repro.core.search import (
    CandidateEvaluator,
    ProcessPoolEvaluator,
    SearchEngine,
    SerialEvaluator,
)
from repro.core.phase_type import (
    PhaseTypeDistribution,
    PhaseTypeRepairPool,
    erlang_phase,
    exponential_phase,
    hyperexponential_phase,
)
from repro.core.transient import (
    first_passage_cdf,
    first_passage_quantile,
    poisson_weights,
    transient_distribution,
)
from repro.core.workflow_model import (
    WorkflowAnalysis,
    WorkflowCTMC,
    WorkflowDefinition,
    WorkflowState,
    analyze_workflow,
    build_workflow_ctmc,
    workflow_from_matrices,
)

__all__ = [
    "AbsorbingCTMC",
    "AbsorbingDTMC",
    "AbsorptionRewardModel",
    "ActivitySpec",
    "AvailabilityModel",
    "CandidateEvaluator",
    "Computer",
    "ConfigurationRecommendation",
    "DegradedStatePolicy",
    "ErgodicCTMC",
    "ErgodicDTMC",
    "EvaluationCache",
    "GoalAssessment",
    "GoalEvaluator",
    "GoalViolation",
    "PerformabilityGoals",
    "PerformabilityModel",
    "PerformabilityReport",
    "PerformanceModel",
    "PerformanceReport",
    "PhaseTypeDistribution",
    "PhaseTypeRepairPool",
    "ProcessPoolEvaluator",
    "RepairPolicy",
    "ReplicationConstraints",
    "SearchEngine",
    "SearchStep",
    "SerialEvaluator",
    "ServerPoolAvailability",
    "ServerRole",
    "ServerTypeIndex",
    "ServerTypeSpec",
    "SteadyStateRewardModel",
    "SystemConfiguration",
    "ThroughputReport",
    "Uniformization",
    "Workload",
    "WorkloadItem",
    "WorkflowAnalysis",
    "WorkflowCTMC",
    "WorkflowDefinition",
    "WorkflowState",
    "analyze_workflow",
    "branch_and_bound_configuration",
    "build_workflow_ctmc",
    "erlang_phase",
    "exhaustive_configuration",
    "exponential_phase",
    "first_passage_cdf",
    "first_passage_quantile",
    "greedy_configuration",
    "hyperexponential_phase",
    "minimum_replicas_for_availability",
    "model_fingerprint",
    "poisson_weights",
    "remove_self_loops",
    "simulated_annealing_configuration",
    "transient_distribution",
    "workflow_from_matrices",
]
