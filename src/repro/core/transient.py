"""Transient (time-dependent) CTMC analysis via uniformization.

The paper's §4 uses the *expected* turnaround time and §5 the
*steady-state* availability.  Both models also support time-dependent
questions once the transient distribution ``pi(t) = pi(0) e^{Qt}`` is
available:

* the **turnaround-time distribution** of a workflow type — the
  first-passage CDF ``P(T <= t)`` is the probability mass in the
  absorbing state at time ``t`` — from which percentile goals
  ("95% of orders complete within 2 hours") can be evaluated;
* **time-dependent availability** — how the system state distribution
  evolves after deployment or after a repair, and the expected downtime
  over a finite horizon.

The implementation uses the standard uniformization/randomization
scheme: with ``Lambda >= max_i |q_ii|`` and
``P = I + Q / Lambda``,

    pi(t) = sum_k  PoissonPMF(Lambda t; k) * pi(0) P^k,

truncating the Poisson sum to cover ``1 - tolerance`` of its mass.  The
weights are built outward from the mode so that large ``Lambda t``
values neither underflow nor need log-space arithmetic.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import linalg
from repro.exceptions import ValidationError

#: Default truncation tolerance of the Poisson sum.
DEFAULT_TOLERANCE = 1e-12

#: Hard cap on Poisson terms, guarding against absurd time horizons.
MAX_POISSON_TERMS = 2_000_000


def poisson_weights(
    mean: float, tolerance: float = DEFAULT_TOLERANCE
) -> tuple[int, np.ndarray]:
    """Truncated Poisson(mean) PMF covering ``1 - tolerance`` mass.

    Returns ``(k_min, weights)`` with ``weights[i]`` the (renormalized)
    probability of ``k_min + i`` events.  Built outward from the mode so
    that even ``mean`` in the tens of thousands stays in ordinary
    floating point.
    """
    if mean < 0.0:
        raise ValidationError("Poisson mean must be >= 0")
    if not 0.0 < tolerance < 1.0:
        raise ValidationError("tolerance must lie strictly in (0, 1)")
    if mean == 0.0:
        return 0, np.array([1.0])

    mode = int(mean)
    # Unnormalized weights, anchored at the mode with weight 1.
    left_weights: list[float] = []
    right_weights: list[float] = [1.0]
    # Expand to the right.
    weight = 1.0
    k = mode
    while weight > tolerance * 1e-3 and k - mode < MAX_POISSON_TERMS:
        k += 1
        weight *= mean / k
        right_weights.append(weight)
    # Expand to the left.
    weight = 1.0
    k = mode
    while k > 0:
        weight *= k / mean
        if weight <= tolerance * 1e-3:
            break
        left_weights.append(weight)
        k -= 1
    k_min = mode - len(left_weights)
    weights = np.array(left_weights[::-1] + right_weights)
    total = weights.sum()
    if total <= 0.0:  # pragma: no cover - defensive
        raise ValidationError("Poisson weight computation degenerated")
    return k_min, weights / total


def transient_distribution(
    generator: np.ndarray,
    initial_distribution: np.ndarray,
    time: float,
    tolerance: float = DEFAULT_TOLERANCE,
) -> np.ndarray:
    """State distribution ``pi(t)`` of a CTMC by uniformization.

    ``generator`` is a (possibly absorbing) infinitesimal generator Q;
    ``initial_distribution`` the row vector ``pi(0)``.
    """
    q = linalg._as_square_matrix(
        np.asarray(generator, dtype=float), "generator"
    )
    pi0 = np.asarray(initial_distribution, dtype=float)
    n = q.shape[0]
    if pi0.shape != (n,):
        raise ValidationError(
            f"initial distribution must have length {n}"
        )
    if np.any(pi0 < -1e-12) or abs(pi0.sum() - 1.0) > 1e-9:
        raise ValidationError(
            "initial distribution must be a probability vector"
        )
    if time < 0.0:
        raise ValidationError("time must be >= 0")
    if time == 0.0:
        return pi0.copy()

    rate = float(np.max(-np.diag(q)))
    if rate <= 0.0:
        return pi0.copy()  # no transitions at all
    # Mild over-uniformization improves conditioning.
    rate *= 1.02
    p_uniform = np.eye(n) + q / rate

    k_min, weights = poisson_weights(rate * time, tolerance)
    result = np.zeros(n)
    vector = pi0.copy()
    # Walk the power sequence once; accumulate from k = 0 upward.
    for k in range(k_min + len(weights)):
        index = k - k_min
        if index >= 0:
            result += weights[index] * vector
        vector = vector @ p_uniform
    # Round-off guard.
    result = np.clip(result, 0.0, None)
    total = result.sum()
    if total > 0.0:
        result /= total
    return result


def first_passage_cdf(
    generator: np.ndarray,
    initial_state: int,
    absorbing_state: int,
    times: np.ndarray,
    tolerance: float = DEFAULT_TOLERANCE,
) -> np.ndarray:
    """``P(T <= t)`` for absorption at each of the given times."""
    times = np.asarray(times, dtype=float)
    if np.any(times < 0.0):
        raise ValidationError("times must be >= 0")
    n = np.asarray(generator).shape[0]
    pi0 = np.zeros(n)
    pi0[initial_state] = 1.0
    return np.array(
        [
            transient_distribution(generator, pi0, t, tolerance)[
                absorbing_state
            ]
            for t in times
        ]
    )


def first_passage_quantile(
    generator: np.ndarray,
    initial_state: int,
    absorbing_state: int,
    probability: float,
    upper_bound_hint: float,
    tolerance: float = 1e-6,
) -> float:
    """Smallest ``t`` with ``P(T <= t) >= probability`` (bisection).

    ``upper_bound_hint`` seeds the bracketing (e.g. the mean turnaround
    time); the bracket is grown geometrically until it covers the
    quantile.
    """
    if not 0.0 < probability < 1.0:
        raise ValidationError("probability must lie strictly in (0, 1)")
    if upper_bound_hint <= 0.0:
        raise ValidationError("upper_bound_hint must be positive")

    def cdf(t: float) -> float:
        return float(
            first_passage_cdf(
                generator, initial_state, absorbing_state,
                np.array([t]),
            )[0]
        )

    high = upper_bound_hint
    for _ in range(80):
        if cdf(high) >= probability:
            break
        high *= 2.0
    else:  # pragma: no cover - defensive
        raise ValidationError(
            "could not bracket the requested quantile; is absorption "
            "certain?"
        )
    low = 0.0
    while high - low > tolerance * max(high, 1.0):
        middle = 0.5 * (low + high)
        if cdf(middle) >= probability:
            high = middle
        else:
            low = middle
    return high
