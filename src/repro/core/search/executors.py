"""Pluggable candidate-evaluation backends for the search engine.

The engine hands an executor one batch of candidates and gets back one
*assessment slot* per candidate, in order.  A slot is a zero-argument
callable; invoking it yields the :class:`GoalAssessment` **committed to
the parent evaluator** (cache bookkeeping and evaluation counting
included).  The engine invokes slots lazily, in proposal order, and
stops at the first terminal one — so whatever an executor computed for
the remaining slots is speculative and simply never committed.

Two backends:

* :class:`SerialEvaluator` — today's path: each slot runs
  ``GoalEvaluator.assess`` in-process when invoked.  Nothing is
  evaluated ahead of time; this is the reference semantics.
* :class:`ProcessPoolEvaluator` — spawn-safe worker processes, each
  holding a :class:`~repro.core.goals.GoalEvaluator` rebuilt from the
  parent model's fingerprint.  Batches are evaluated eagerly in
  parallel; the parent then *adopts* consumed assessments one by one
  (replaying the exact serial bookkeeping) and merges the workers'
  warmed waiting-time curves and pool marginals back into its own
  evaluation cache.  Because the models are rebuilt from identical
  floats and the adoption replays the serial cache protocol on the
  consumed prefix only, results are bit-identical to the serial path.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from repro import obs
from repro.core.availability import RepairPolicy
from repro.core.evaluation_cache import EvaluationCache, model_fingerprint
from repro.core.goals import (
    GoalAssessment,
    GoalEvaluator,
    PerformabilityGoals,
)
from repro.core.model_types import ServerTypeIndex
from repro.core.performability import DegradedStatePolicy
from repro.core.performance import PerformanceModel, SystemConfiguration
from repro.core.search.strategies import Candidate
from repro.exceptions import ValidationError

#: A deferred, committed-on-call candidate assessment.
AssessmentSlot = Callable[[], GoalAssessment]

#: Metric families the parent replays itself when adopting worker
#: assessments (:meth:`GoalEvaluator.adopt_assessment` re-counts the
#: candidate, its goal violations, and the assessment-cache protocol),
#: so a worker exporting them would double-count.
_REPLAYED_PREFIXES = (
    "configuration.",
    "evaluation_cache.assessments.",
)


class CandidateEvaluator:
    """Executor interface: turn a candidate batch into assessment slots."""

    name: str = "abstract"
    #: Largest useful batch; the engine never proposes more per round.
    batch_limit: int = 1
    #: Whether slots are computed ahead of consumption (speculatively).
    eager: bool = False

    def evaluate_batch(
        self,
        evaluator: GoalEvaluator,
        goals: PerformabilityGoals,
        candidates: Sequence[Candidate],
    ) -> list[AssessmentSlot]:
        """One lazy assessment slot per candidate, in candidate order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (worker processes); idempotent."""

    def __enter__(self) -> "CandidateEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialEvaluator(CandidateEvaluator):
    """In-process, one-at-a-time evaluation (the default path)."""

    name = "serial"
    batch_limit = 1
    eager = False

    def evaluate_batch(
        self,
        evaluator: GoalEvaluator,
        goals: PerformabilityGoals,
        candidates: Sequence[Candidate],
    ) -> list[AssessmentSlot]:
        """Wrap each candidate in a lazy in-process assessment slot."""
        return [
            lambda candidate=candidate: evaluator.assess(
                candidate.configuration, goals
            )
            for candidate in candidates
        ]


# ----------------------------------------------------------------------
# Worker-process side of the process pool
# ----------------------------------------------------------------------
#: Per-worker evaluator, rebuilt from the parent model's fingerprint by
#: the pool initializer (spawn start method: nothing is inherited).
_WORKER: GoalEvaluator | None = None


def _initialize_worker(
    fingerprint: tuple,
    repair_policy_value: str,
    degraded_policy_value: str,
    penalty_waiting_time: float | None,
    snapshot: dict,
    observe: bool,
) -> None:
    global _WORKER
    if observe:
        obs.enable()
    specs, totals = fingerprint
    performance = PerformanceModel.from_request_totals(
        ServerTypeIndex(specs), totals
    )
    _WORKER = GoalEvaluator(
        performance,
        repair_policy=RepairPolicy(repair_policy_value),
        degraded_policy=DegradedStatePolicy(degraded_policy_value),
        penalty_waiting_time=penalty_waiting_time,
        cache=EvaluationCache(),
    )
    _WORKER.cache.merge_snapshot(snapshot)


def _evaluate_chunk(
    goals: PerformabilityGoals,
    replicas_list: list[dict[str, int]],
) -> tuple[list[GoalAssessment], dict, dict | None]:
    assert _WORKER is not None, "worker initializer did not run"
    if obs.is_enabled():
        # Workers are reused across chunks: reset so the exported
        # snapshot is this chunk's delta, not the worker's lifetime.
        obs.reset()
    configurations = [
        SystemConfiguration(replicas) for replicas in replicas_list
    ]
    assessments = _WORKER.assess_many(configurations, goals)
    obs_snapshot = (
        obs.export_snapshot(exclude_prefixes=_REPLAYED_PREFIXES)
        if obs.is_enabled()
        else None
    )
    return assessments, _WORKER.cache.export_snapshot(), obs_snapshot


def _worker_ready(delay: float) -> int:
    time.sleep(delay)
    return os.getpid()


class ProcessPoolEvaluator(CandidateEvaluator):
    """Parallel batch evaluation on spawn-started worker processes.

    Workers are started lazily on the first multi-candidate batch and
    initialized from the parent evaluator's model fingerprint plus a
    snapshot of its evaluation cache, so they never pickle the full
    performance model (the per-workflow CTMCs stay in the parent).  One
    pool serves any number of searches as long as the evaluator's model
    and policies stay the same; a different evaluator transparently
    restarts the pool.

    Determinism: candidates are assessed from bitwise-identical model
    inputs in the workers, consumed in proposal order by the parent via
    :meth:`GoalEvaluator.adopt_assessment` (which replays the serial
    cache lookup/count/store protocol), and assessments past the
    terminal candidate are discarded — so recommendations, traces, and
    evaluation counts are bit-identical to :class:`SerialEvaluator`.

    Observability: when the parent's switch is on, workers record their
    own model work (``linalg.*``, ``ctmc.*``, ``performance.*``,
    ``availability.*``, per-type cache counters) and each chunk ships a
    delta snapshot home, merged by the parent in chunk-submission
    order.  Counter families the parent replays itself via
    ``adopt_assessment`` are excluded from worker exports so they are
    never double-counted; worker model-work counters may *exceed* the
    serial run's because speculative evaluations past a terminal
    candidate still did real solver work.
    """

    name = "process_pool"
    eager = True

    def __init__(self, workers: int = 2, chunk_size: int = 4) -> None:
        if workers < 1:
            raise ValidationError("workers must be >= 1")
        if chunk_size < 1:
            raise ValidationError("chunk_size must be >= 1")
        self.workers = workers
        self.chunk_size = chunk_size
        self.batch_limit = workers * chunk_size
        self._pool: ProcessPoolExecutor | None = None
        self._pool_key: tuple | None = None

    def _evaluator_key(self, evaluator: GoalEvaluator) -> tuple:
        return (
            model_fingerprint(evaluator.performance),
            evaluator.repair_policy.value,
            evaluator.degraded_policy.value,
            evaluator.penalty_waiting_time,
        )

    def _ensure_pool(self, evaluator: GoalEvaluator) -> ProcessPoolExecutor:
        # The observability switch is part of the pool key: toggling it
        # between searches restarts the workers with the right flag.
        key = (self._evaluator_key(evaluator), obs.is_enabled())
        if self._pool is not None and self._pool_key != key:
            self.close()
        if self._pool is None:
            (fingerprint, repair, degraded, penalty), observe = key
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_initialize_worker,
                initargs=(
                    fingerprint, repair, degraded, penalty,
                    evaluator.cache.export_snapshot(), observe,
                ),
            )
            self._pool_key = key
            obs.set_gauge("configuration.search.workers", self.workers)
        return self._pool

    def warm_up(self, evaluator: GoalEvaluator, timeout: float = 60.0) -> int:
        """Start the worker processes ahead of the first batch.

        Spawn-started workers pay a one-time interpreter and import cost
        before their first chunk; this blocks until every worker has run
        its initializer (or ``timeout`` seconds elapsed), so a
        latency-sensitive search — or a benchmark — measures evaluation
        work rather than process startup.  Worker evaluation caches are
        untouched.  Returns the number of distinct workers confirmed.
        """
        pool = self._ensure_pool(evaluator)
        deadline = time.monotonic() + timeout
        ready: set[int] = set()
        while len(ready) < self.workers and time.monotonic() < deadline:
            futures = [
                pool.submit(_worker_ready, 0.05)
                for _ in range(self.workers)
            ]
            ready.update(future.result() for future in futures)
        return len(ready)

    def evaluate_batch(
        self,
        evaluator: GoalEvaluator,
        goals: PerformabilityGoals,
        candidates: Sequence[Candidate],
    ) -> list[AssessmentSlot]:
        """Fan candidate chunks out to workers; merge cache snapshots."""
        if len(candidates) == 1:
            # A sequential strategy step: dispatching one candidate to a
            # worker costs IPC and wins nothing; assess in-process.
            candidate = candidates[0]
            return [
                lambda: evaluator.assess(candidate.configuration, goals)
            ]
        pool = self._ensure_pool(evaluator)
        chunks: list[Sequence[Candidate]] = [
            candidates[start:start + self.chunk_size]
            for start in range(0, len(candidates), self.chunk_size)
        ]
        futures = [
            pool.submit(
                _evaluate_chunk,
                goals,
                [dict(c.configuration.replicas) for c in chunk],
            )
            for chunk in chunks
        ]
        assessments: list[GoalAssessment] = []
        for future in futures:
            chunk_assessments, snapshot, obs_snapshot = future.result()
            evaluator.cache.merge_snapshot(snapshot)
            obs.merge_snapshot(obs_snapshot)
            assessments.extend(chunk_assessments)
        return [
            lambda assessment=assessment: evaluator.adopt_assessment(
                assessment
            )
            for assessment in assessments
        ]

    def close(self) -> None:
        """Shut the worker pool down; idempotent."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_key = None
