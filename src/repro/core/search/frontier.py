"""Pareto-frontier multi-objective configuration search.

The paper's Section 7 tool recommends one near-minimum-cost
configuration for fixed goals.  Real operators trade cost against
waiting time, unavailability, and performability instead, so this
module generalizes the search to a maintained **non-dominated set**
over the four canonical axes::

    (cost, max_waiting_time, unavailability, performability_waiting_time)

all minimized, with a configurable subset acting as objective axes and
the user's :class:`~repro.core.goals.PerformabilityGoals` acting as
hard bounds (only goal-satisfying configurations enter the frontier —
the "bounded metric" mode of the shotgun/hillclimb scheme).

Three pieces:

* :class:`ParetoFrontier` — the non-dominated set: insertion rejects
  dominated newcomers and evicts members the newcomer dominates, with
  deterministic first-wins tie-breaking on objective-equal points;
* :class:`FrontierStrategy` — a batch-invariant
  :class:`~repro.core.search.strategies.SearchStrategy` that seeds the
  frontier from the cost-ordered candidate enumeration (up to and
  including the first goal-satisfying candidate, so the frontier always
  contains the single-objective minimum-cost recommendation), shotguns
  seeded-random samples across the constraint box, then hillclimbs the
  frontier's neighbourhood closure with seeded random restarts;
* :func:`frontier_search` — the public entry point: drives the strategy
  through the existing :class:`~repro.core.search.SearchEngine`, so
  :class:`~repro.core.search.SerialEvaluator` and
  :class:`~repro.core.search.ProcessPoolEvaluator` work unchanged and
  all evaluations hit the shared
  :class:`~repro.core.evaluation_cache.EvaluationCache`.

Determinism: every proposal round is fixed before any of its
assessments are consumed, rounds never depend on the engine's batch
``limit``, and the only randomness flows from one seeded
``random.Random`` consumed at round boundaries — so the frontier (and
its JSON document) is byte-identical across repeated runs and across
serial/parallel executors for any worker count.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro import obs
from repro.core.goals import GoalAssessment, GoalEvaluator, PerformabilityGoals
from repro.core.model_types import ServerTypeIndex
from repro.core.performance import SystemConfiguration
from repro.core.search.candidates import configurations_by_cost
from repro.core.search.engine import SearchEngine
from repro.core.search.executors import CandidateEvaluator
from repro.core.search.strategies import (
    Candidate,
    SearchExhausted,
    SearchStrategy,
)
from repro.core.search.types import (
    ConfigurationRecommendation,
    ReplicationConstraints,
)
from repro.exceptions import ValidationError

#: The four frontier axes, in canonical order.  ``cost`` is the
#: Section 7.1 weighted configuration cost; ``max_waiting_time`` the
#: worst per-type failure-free M/G/1 waiting time (Section 4.4);
#: ``unavailability`` the steady-state system unavailability
#: (Section 5); ``performability_waiting_time`` the worst per-type
#: expected waiting time with failures accounted for (Section 6).
OBJECTIVES = (
    "cost",
    "max_waiting_time",
    "unavailability",
    "performability_waiting_time",
)


def _configuration_key(
    configuration: SystemConfiguration,
) -> tuple[tuple[str, int], ...]:
    return tuple(sorted(configuration.replicas.items()))


def _finite(value: float | None) -> float | None:
    if value is None or not math.isfinite(value):
        return None
    return float(value)


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated configuration with its four metric values."""

    configuration: SystemConfiguration
    cost: float
    metrics: dict[str, float]
    assessment: GoalAssessment

    @property
    def key(self) -> tuple[tuple[str, int], ...]:
        """Canonical identity of the underlying configuration."""
        return _configuration_key(self.configuration)

    @classmethod
    def from_assessment(
        cls, assessment: GoalAssessment, server_types: ServerTypeIndex
    ) -> "FrontierPoint":
        """Extract the four frontier metrics from one assessment.

        Requires a full assessment (performability report present);
        evaluate through goals from
        :meth:`~repro.core.goals.PerformabilityGoals.requiring_all_metrics`
        to guarantee that even when the waiting axis is unbounded.
        """
        report = assessment.performability
        if report is None:
            raise ValidationError(
                "frontier points need a full assessment; evaluate with "
                "goals.requiring_all_metrics()"
            )
        configuration = assessment.configuration
        cost = configuration.cost(server_types)
        return cls(
            configuration=configuration,
            cost=cost,
            metrics={
                "cost": cost,
                "max_waiting_time": max(
                    report.failure_free_waiting_times.values()
                ),
                "unavailability": float(assessment.unavailability),
                "performability_waiting_time": (
                    report.max_expected_waiting_time
                ),
            },
            assessment=assessment,
        )

    def to_document(self) -> dict[str, Any]:
        """Plain-JSON form (``inf`` rendered as ``null``)."""
        return {
            "configuration": dict(sorted(self.configuration.replicas.items())),
            "cost": self.cost,
            "total_servers": self.configuration.total_servers,
            "max_waiting_time": _finite(self.metrics["max_waiting_time"]),
            "unavailability": self.metrics["unavailability"],
            "performability_waiting_time": _finite(
                self.metrics["performability_waiting_time"]
            ),
            "saturated_types": list(self.assessment.saturated_types),
            "satisfied": self.assessment.satisfied,
        }


class ParetoFrontier:
    """A maintained non-dominated set over configurable objective axes.

    All axes are minimized.  A point *dominates* another when it is no
    worse on every objective axis and strictly better on at least one;
    points equal on every objective axis are treated as mutually
    dominated and the incumbent wins (first-wins tie-breaking keeps
    insertion deterministic).  Membership is maintained incrementally:
    inserting a dominated point is a rejection, inserting a dominating
    point evicts every member it dominates.
    """

    def __init__(self, objectives: Sequence[str] = OBJECTIVES) -> None:
        chosen = tuple(objectives)
        if not chosen:
            raise ValidationError("at least one objective axis is required")
        unknown = [axis for axis in chosen if axis not in OBJECTIVES]
        if unknown:
            raise ValidationError(
                f"unknown objective axes {unknown}; choose from "
                f"{list(OBJECTIVES)}"
            )
        if len(set(chosen)) != len(chosen):
            raise ValidationError("objective axes must be distinct")
        self.objectives = chosen
        self._points: list[FrontierPoint] = []
        self.inserted = 0
        self.rejected = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[FrontierPoint]:
        return iter(self.points)

    def _values(self, point: FrontierPoint) -> tuple[float, ...]:
        return tuple(point.metrics[axis] for axis in self.objectives)

    def dominates(self, first: FrontierPoint, second: FrontierPoint) -> bool:
        """Whether ``first`` dominates ``second`` on the objective axes."""
        a, b = self._values(first), self._values(second)
        return all(x <= y for x, y in zip(a, b)) and any(
            x < y for x, y in zip(a, b)
        )

    def insert(self, point: FrontierPoint) -> bool:
        """Insert one point; returns whether it joined the frontier.

        Rejected when any member dominates it or equals it on every
        objective axis; otherwise members it dominates are evicted.
        """
        values = self._values(point)
        for member in self._points:
            member_values = self._values(member)
            if all(
                x <= y for x, y in zip(member_values, values)
            ):
                # Dominated by (or objective-equal to) an incumbent.
                self.rejected += 1
                return False
        survivors = [
            member
            for member in self._points
            if not self.dominates(point, member)
        ]
        self.evicted += len(self._points) - len(survivors)
        survivors.append(point)
        self._points = survivors
        self.inserted += 1
        return True

    @property
    def points(self) -> tuple[FrontierPoint, ...]:
        """Members in deterministic cost order (ties by configuration)."""
        return tuple(
            sorted(self._points, key=lambda p: (p.cost, p.key))
        )


class FrontierStrategy(SearchStrategy):
    """Shotgun + hillclimb proposal strategy maintaining the frontier.

    Three phases, each organized in *rounds* whose content is fixed
    before any of the round's assessments is consumed (batch
    invariance — the engine may slice a round into any batch sizes
    without changing the consumed sequence):

    1. **prefix** — rounds of the lazy cost-ordered candidate
       enumeration (the heap behind the exhaustive search) until the
       round containing the first goal-satisfying candidate completes.
       This pins the single-objective minimum-cost recommendation into
       the frontier and anchors the cheap end of the trade-off curve.
    2. **shotgun** — one round of seeded-random samples across the
       constraint box (budget-aware, so every sample is admissible),
       scattering probes over the expensive regions the prefix never
       reaches.
    3. **climb** — repeated rounds of every not-yet-evaluated ±1-replica
       neighbour of the current frontier (and of past restart points);
       when the neighbourhood closure is exhausted, a seeded random
       restart opens a new basin, up to ``restarts`` times.

    Emits the ``search.frontier.*`` counters (evaluated, dominated,
    inserted, restarts).
    """

    name = "frontier"
    record_trace = False

    def __init__(
        self,
        evaluator: GoalEvaluator,
        goals: PerformabilityGoals,
        constraints: ReplicationConstraints,
        objectives: Sequence[str] = OBJECTIVES,
        shotgun: int = 24,
        restarts: int = 4,
        seed: int = 0,
        prefix: int | None = None,
        prefix_round: int = 16,
        max_rounds: int = 1000,
    ) -> None:
        if shotgun < 0:
            raise ValidationError("shotgun must be >= 0")
        if restarts < 0:
            raise ValidationError("restarts must be >= 0")
        if prefix is not None and prefix < 1:
            raise ValidationError("prefix must be >= 1 when given")
        if prefix_round < 1:
            raise ValidationError("prefix_round must be >= 1")
        self.frontier = ParetoFrontier(objectives)
        self._server_types = evaluator.server_types
        self._names = list(evaluator.server_types.names)
        self._goals = goals
        self._constraints = constraints
        self._shotgun = shotgun
        self._restarts = restarts
        self._prefix = prefix
        self._prefix_round = prefix_round
        self._max_rounds = max_rounds
        self._rng = random.Random(seed)
        self._enumeration = configurations_by_cost(
            evaluator.server_types, constraints
        )
        self._phase = "prefix"
        self._pending: list[Candidate] = []
        self._seen: set[tuple[tuple[str, int], ...]] = set()
        self._rounds = 0
        self._prefix_emitted = 0
        self._satisfied_seen = False
        self.restarts_used = 0
        self._restart_points: list[SystemConfiguration] = []
        self._best_infeasible: (
            tuple[int, float, tuple, GoalAssessment] | None
        ) = None

    # -- round construction -------------------------------------------
    def _mark_seen(self, configuration: SystemConfiguration) -> bool:
        key = _configuration_key(configuration)
        if key in self._seen:
            return False
        self._seen.add(key)
        return True

    def _ordered(
        self, configurations: list[SystemConfiguration]
    ) -> list[Candidate]:
        configurations.sort(
            key=lambda c: (
                c.cost(self._server_types), c.total_servers, str(c)
            )
        )
        return [Candidate(c, criterion="frontier") for c in configurations]

    def _prefix_round_candidates(self) -> list[Candidate]:
        batch: list[Candidate] = []
        for configuration in self._enumeration:
            if self._mark_seen(configuration):
                batch.append(Candidate(configuration, criterion="prefix"))
                self._prefix_emitted += 1
            if len(batch) >= self._prefix_round:
                break
            if (self._prefix is not None
                    and self._prefix_emitted >= self._prefix):
                break
        return batch

    def _sample(self) -> SystemConfiguration | None:
        """One unseen admissible configuration from the seeded RNG.

        Samples type by type against the remaining total-server budget,
        so every draw is admissible by construction; gives up (returns
        ``None``) after a bounded number of duplicate draws.
        """
        lows = {
            name: self._constraints.lower_bound(name)
            for name in self._names
        }
        budget_base = self._constraints.max_total_servers - sum(
            lows.values()
        )
        if budget_base < 0:
            return None
        for _ in range(32):
            budget = budget_base
            replicas: dict[str, int] = {}
            for name in self._names:
                low = lows[name]
                cap = min(self._constraints.upper_bound(name), low + budget)
                count = self._rng.randint(low, cap) if cap > low else low
                budget -= count - low
                replicas[name] = count
            configuration = SystemConfiguration(replicas)
            if self._mark_seen(configuration):
                return configuration
        return None

    def _shotgun_round_candidates(self) -> list[Candidate]:
        samples: list[SystemConfiguration] = []
        for _ in range(self._shotgun):
            configuration = self._sample()
            if configuration is None:
                break
            samples.append(configuration)
        return self._ordered(samples)

    def _neighbours(
        self, configuration: SystemConfiguration
    ) -> list[SystemConfiguration]:
        out: list[SystemConfiguration] = []
        for name in self._names:
            if self._constraints.can_add(configuration, name):
                out.append(configuration.with_added_replica(name))
            reduced = configuration.count(name) - 1
            if reduced >= self._constraints.lower_bound(name):
                replicas = dict(configuration.replicas)
                replicas[name] = reduced
                out.append(SystemConfiguration(replicas))
        return out

    def _climb_round_candidates(self) -> list[Candidate]:
        anchors = [point.configuration for point in self.frontier.points]
        anchors.extend(self._restart_points)
        fresh: list[SystemConfiguration] = []
        for anchor in anchors:
            for neighbour in self._neighbours(anchor):
                if self._mark_seen(neighbour):
                    fresh.append(neighbour)
        return self._ordered(fresh)

    def _advance(self) -> None:
        """Fill ``_pending`` with the next round, advancing phases."""
        while not self._pending:
            self._rounds += 1
            if self._rounds > self._max_rounds:
                return
            if self._phase == "prefix":
                done = (
                    self._satisfied_seen
                    if self._prefix is None
                    else self._prefix_emitted >= self._prefix
                )
                if not done:
                    self._pending = self._prefix_round_candidates()
                    if self._pending:
                        return
                self._phase = "shotgun"
            elif self._phase == "shotgun":
                self._pending = self._shotgun_round_candidates()
                self._phase = "climb"
                if self._pending:
                    return
            elif self._phase == "climb":
                self._pending = self._climb_round_candidates()
                if self._pending:
                    return
                if self.restarts_used < self._restarts:
                    restart = self._sample()
                    if restart is not None:
                        self.restarts_used += 1
                        obs.count("search.frontier.restarts")
                        self._restart_points.append(restart)
                        self._pending = [
                            Candidate(restart, criterion="restart")
                        ]
                        return
                return
            else:  # pragma: no cover - defensive
                return

    # -- SearchStrategy interface -------------------------------------
    def propose(self, limit: int) -> list[Candidate]:
        """Serve the current round in engine-sized slices."""
        if not self._pending:
            self._advance()
        batch = self._pending[:limit]
        del self._pending[:limit]
        return batch

    def observe(
        self, candidate: Candidate, assessment: GoalAssessment
    ) -> GoalAssessment | None:
        """Fold one assessment into the frontier; never terminal."""
        obs.count("search.frontier.evaluated")
        if assessment.satisfied:
            self._satisfied_seen = True
            before = len(self.frontier)
            point = FrontierPoint.from_assessment(
                assessment, self._server_types
            )
            if self.frontier.insert(point):
                obs.count("search.frontier.inserted")
                evicted = before + 1 - len(self.frontier)
                if evicted:
                    obs.count("search.frontier.dominated", evicted)
            else:
                obs.count("search.frontier.dominated")
        else:
            rank = (
                len(assessment.violations),
                candidate.configuration.cost(self._server_types),
                _configuration_key(candidate.configuration),
            )
            if self._best_infeasible is None or rank < self._best_infeasible[:3]:
                self._best_infeasible = (*rank, assessment)
        return None

    def exhausted(self) -> GoalAssessment:
        """Terminal assessment: the cheapest frontier member.

        The prefix phase consumed the cost-ordered enumeration from the
        cheapest admissible configuration up to the first satisfying
        one, so this is exactly the single-objective minimum-cost
        recommendation.  With an empty frontier the search is
        infeasible; the best (fewest-violations, then cheapest)
        assessment seen is attached for reporting.
        """
        points = self.frontier.points
        if points:
            return points[0].assessment
        raise SearchExhausted(
            "no admissible configuration satisfies the goal bounds; "
            "the frontier is empty",
            best_assessment=(
                self._best_infeasible[3]
                if self._best_infeasible is not None else None
            ),
        )


@dataclass(frozen=True)
class FrontierResult:
    """Outcome of a frontier search: the trade-off set plus the anchor.

    ``recommendation`` is the cheapest frontier member — identical to
    what the single-objective exhaustive search recommends for the same
    goals — so existing single-answer consumers keep working while
    ``points`` carries the full ranked trade-off curve.
    """

    points: tuple[FrontierPoint, ...]
    objectives: tuple[str, ...]
    recommendation: ConfigurationRecommendation
    seed: int
    restarts_used: int

    @property
    def evaluations(self) -> int:
        """Model evaluations consumed by the whole sweep."""
        return self.recommendation.evaluations

    def to_document(self) -> dict[str, Any]:
        """Machine-readable form (plain JSON types, deterministic)."""
        return {
            "schema": "repro.search.frontier/v1",
            "algorithm": "frontier",
            "objectives": list(self.objectives),
            "seed": self.seed,
            "evaluations": self.evaluations,
            "restarts": self.restarts_used,
            "points": [
                {"rank": rank, **point.to_document()}
                for rank, point in enumerate(self.points, start=1)
            ],
            "recommended": self.recommendation.to_document(),
        }

    def format_text(self) -> str:
        """Ranked trade-off table, cheapest configuration first."""

        def cell(value: float) -> str:
            return f"{value:12.6f}" if math.isfinite(value) else "         inf"

        lines = [
            f"Pareto frontier over {', '.join(self.objectives)} "
            f"({len(self.points)} points, {self.evaluations} evaluations, "
            f"{self.restarts_used} restarts, seed {self.seed}):",
            "  rank      cost  servers  max waiting   unavailability  "
            "perf waiting  configuration",
        ]
        for rank, point in enumerate(self.points, start=1):
            metrics = point.metrics
            lines.append(
                f"  {rank:4d}  {point.cost:8g}  {point.configuration.total_servers:7d}"
                f"  {cell(metrics['max_waiting_time'])} "
                f"{metrics['unavailability']:16.3e} "
                f"{cell(metrics['performability_waiting_time'])}"
                f"  {point.configuration}"
            )
        lines.append(
            "Recommended (cheapest satisfying): "
            f"{self.recommendation.configuration} at cost "
            f"{self.recommendation.cost:g}"
        )
        return "\n".join(lines)


def frontier_search(
    evaluator: GoalEvaluator,
    goals: PerformabilityGoals,
    constraints: ReplicationConstraints | None = None,
    objectives: Sequence[str] = OBJECTIVES,
    shotgun: int = 24,
    restarts: int = 4,
    seed: int = 0,
    prefix: int | None = None,
    executor: CandidateEvaluator | None = None,
    stop_check: Callable[[], bool] | None = None,
) -> FrontierResult:
    """Multi-objective configuration search over the goal bounds.

    Runs :class:`FrontierStrategy` through the shared
    :class:`~repro.core.search.SearchEngine` — pass a
    :class:`~repro.core.search.ProcessPoolEvaluator` as ``executor``
    for parallel candidate evaluation with byte-identical results.
    ``goals`` act as hard bounds (axes without a bound are free
    objectives; assessments still expose all four metrics via
    :meth:`~repro.core.goals.PerformabilityGoals.requiring_all_metrics`).
    ``prefix`` overrides the cost-ordered seeding length (by default
    the enumeration runs until the first goal-satisfying candidate);
    setting it at least as large as the admissible space turns the
    sweep into an exact frontier computation.  Raises
    :class:`~repro.exceptions.InfeasibleConfigurationError` when no
    admissible configuration satisfies the bounds.
    """
    constraints = constraints or ReplicationConstraints(max_total_servers=16)
    assess_goals = goals.requiring_all_metrics()
    strategy = FrontierStrategy(
        evaluator,
        assess_goals,
        constraints,
        objectives=objectives,
        shotgun=shotgun,
        restarts=restarts,
        seed=seed,
        prefix=prefix,
    )
    recommendation = SearchEngine(
        evaluator, assess_goals, executor, stop_check=stop_check
    ).run(strategy)
    return FrontierResult(
        points=strategy.frontier.points,
        objectives=strategy.frontier.objectives,
        recommendation=recommendation,
        seed=seed,
        restarts_used=strategy.restarts_used,
    )
