"""The unified configuration-search loop (Section 7.2).

:class:`SearchEngine` owns everything the four search algorithms used
to duplicate: proposing candidate batches from a strategy, evaluating
them through a pluggable executor, consuming assessments in proposal
order, recording the :class:`SearchStep` trace, counting evaluations,
and emitting the ``configuration.search`` span and counters.  The
strategies (:mod:`repro.core.search.strategies`) contain only search
logic; the executors (:mod:`repro.core.search.executors`) contain only
evaluation placement.  One loop, four algorithms, two backends.
"""

from __future__ import annotations

from typing import Callable

from repro import obs
from repro.core.goals import GoalAssessment, GoalEvaluator, PerformabilityGoals
from repro.core.search.executors import CandidateEvaluator, SerialEvaluator
from repro.core.search.strategies import SearchExhausted, SearchStrategy
from repro.core.search.types import (
    ConfigurationRecommendation,
    SearchStep,
)
from repro.exceptions import InfeasibleConfigurationError, SearchCancelledError


class SearchEngine:
    """Runs one candidate-proposal strategy to a recommendation.

    The engine consumes assessments strictly in proposal order and
    stops at the strategy's terminal assessment, so the outcome is
    independent of the executor: a parallel backend may evaluate ahead
    speculatively, but only the consumed prefix is ever committed.
    """

    def __init__(
        self,
        evaluator: GoalEvaluator,
        goals: PerformabilityGoals,
        executor: CandidateEvaluator | None = None,
        stop_check: Callable[[], bool] | None = None,
    ) -> None:
        self.evaluator = evaluator
        self.goals = goals
        self.executor = executor if executor is not None else SerialEvaluator()
        #: Cooperative cancellation probe, polled at every batch
        #: boundary; returning true raises
        #: :class:`~repro.exceptions.SearchCancelledError`.  ``None``
        #: (the default) never cancels, so existing callers see the
        #: exact proposal/evaluation sequence they always did.
        self.stop_check = stop_check

    def run(self, strategy: SearchStrategy) -> ConfigurationRecommendation:
        """Drive ``strategy`` to exhaustion or acceptance; recommend."""
        evaluator = self.evaluator
        evaluations_before = evaluator.evaluation_count
        trace: list[SearchStep] = []
        record_trace = getattr(strategy, "record_trace", False)

        def recommendation(
            assessment: GoalAssessment,
        ) -> ConfigurationRecommendation:
            configuration = assessment.configuration
            return ConfigurationRecommendation(
                configuration=configuration,
                cost=configuration.cost(evaluator.server_types),
                assessment=assessment,
                evaluations=evaluator.evaluation_count - evaluations_before,
                trace=tuple(trace) if record_trace else (),
                algorithm=strategy.name,
            )

        with obs.span(
            "configuration.search",
            algorithm=strategy.name,
            executor=self.executor.name,
        ) as span:
            try:
                final = self._loop(strategy, trace)
            except SearchExhausted as exc:
                best = (
                    recommendation(exc.best_assessment)
                    if exc.best_assessment is not None else None
                )
                raise InfeasibleConfigurationError(
                    exc.message, best_found=best
                ) from None
            span.set(
                "evaluations",
                evaluator.evaluation_count - evaluations_before,
            )
            if record_trace:
                span.set("iterations", len(trace))
            return recommendation(final)

    def _loop(
        self, strategy: SearchStrategy, trace: list[SearchStep]
    ) -> GoalAssessment:
        evaluator, goals, executor = self.evaluator, self.goals, self.executor
        stop_check = self.stop_check
        limit = max(1, executor.batch_limit)
        while True:
            if stop_check is not None and stop_check():
                obs.count("configuration.search.cancelled")
                raise SearchCancelledError(
                    f"search {strategy.name!r} cancelled by stop_check"
                )
            batch = strategy.propose(limit)
            if not batch:
                return strategy.exhausted()
            obs.count("configuration.search.batches")
            slots = executor.evaluate_batch(evaluator, goals, batch)
            for index, (candidate, slot) in enumerate(zip(batch, slots)):
                obs.count("configuration.search.iterations")
                assessment = slot()
                trace.append(
                    SearchStep(
                        configuration=candidate.configuration,
                        cost=candidate.configuration.cost(
                            evaluator.server_types
                        ),
                        satisfied=assessment.satisfied,
                        added_server_type=candidate.added_server_type,
                        criterion=candidate.criterion,
                    )
                )
                final = strategy.observe(candidate, assessment)
                if final is not None:
                    discarded = len(batch) - index - 1
                    if discarded and executor.eager:
                        obs.count(
                            "configuration.search.speculative_evaluations",
                            discarded,
                        )
                    return final
