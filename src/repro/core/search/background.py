"""Background re-search execution for the always-on service.

The paper's §7 loop re-runs the configuration search whenever the
calibrated models drift or a goal is violated.  In the long-running
recommendation service those re-searches must not block event
ingestion, and a search that is still running when *newer* drift is
confirmed is searching against stale calibration — its result would be
wrong to publish.  :class:`BackgroundSearchExecutor` owns both
concerns: searches run on daemon worker threads, and each logical key
(one tenant, in the service) carries a generation counter so that
submitting a new search supersedes the previous one — the stale
search's cancellation event is set (the engine's ``stop_check`` polls
it and raises :class:`~repro.exceptions.SearchCancelledError` at the
next batch boundary) and its result, if it finishes anyway, is dropped
instead of delivered.

The executor is deliberately independent of the search functions it
runs: a task is any callable taking a zero-argument ``stop_check``
probe, so point searches (:func:`repro.core.configuration.greedy_configuration`
etc.) and frontier sweeps (:func:`repro.core.search.frontier_search`)
submit the same way.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import obs
from repro.exceptions import SearchCancelledError, ValidationError

__all__ = ["BackgroundSearchExecutor", "SearchOutcome"]


@dataclass(frozen=True)
class SearchOutcome:
    """Terminal state of one background search task.

    Exactly one of ``result`` / ``error`` is set for a search that ran
    to completion or failed; a superseded or cancelled search carries
    neither.  ``current`` tells the delivery callback whether this
    generation was still the newest for its key when it finished —
    stale outcomes are reported (for observability) but must not be
    published.
    """

    key: str
    generation: int
    result: Any = None
    error: BaseException | None = None
    cancelled: bool = False
    current: bool = True

    @property
    def delivered(self) -> bool:
        """Whether the outcome carries a publishable result."""
        return self.current and self.error is None and not self.cancelled


@dataclass
class _KeyState:
    generation: int = 0
    cancel: threading.Event = field(default_factory=threading.Event)


class BackgroundSearchExecutor:
    """Run searches on worker threads; newer submissions supersede older.

    ``on_outcome`` (set at construction or per ``submit``) receives a
    :class:`SearchOutcome` on the worker thread when a task terminates —
    including superseded and failed tasks, so callers can count them.
    :meth:`join` waits for every in-flight task, and :meth:`shutdown`
    cancels them all first; both make tests and graceful service
    shutdown deterministic.
    """

    def __init__(
        self,
        on_outcome: Callable[[SearchOutcome], None] | None = None,
    ) -> None:
        self._on_outcome = on_outcome
        self._lock = threading.Lock()
        self._keys: dict[str, _KeyState] = {}
        self._threads: dict[tuple[str, int], threading.Thread] = {}
        self._shutdown = False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        key: str,
        task: Callable[[Callable[[], bool]], Any],
        on_outcome: Callable[[SearchOutcome], None] | None = None,
    ) -> int:
        """Start ``task`` for ``key``, superseding any running search.

        ``task`` is called on a worker thread with one argument — a
        zero-argument ``stop_check`` probe to pass into the search — and
        its return value becomes the outcome's ``result``.  Returns the
        new generation number.  Raises after :meth:`shutdown`.
        """
        if not key:
            raise ValidationError("background search key must be non-empty")
        with self._lock:
            if self._shutdown:
                raise ValidationError(
                    "BackgroundSearchExecutor is shut down"
                )
            state = self._keys.get(key)
            if state is None:
                state = _KeyState()
                self._keys[key] = state
            elif not state.cancel.is_set():
                # A search is (possibly) still running for this key —
                # tell it to stop at its next batch boundary.
                state.cancel.set()
                obs.count("search.background.superseded")
            state.generation += 1
            state.cancel = threading.Event()
            generation = state.generation
            cancel = state.cancel
            callback = on_outcome if on_outcome is not None else (
                self._on_outcome
            )
            thread = threading.Thread(
                target=self._run,
                args=(key, generation, task, cancel, callback),
                name=f"repro-search-{key}-{generation}",
                daemon=True,
            )
            self._threads[(key, generation)] = thread
        obs.count("search.background.submitted")
        thread.start()
        return generation

    def _run(
        self,
        key: str,
        generation: int,
        task: Callable[[Callable[[], bool]], Any],
        cancel: threading.Event,
        callback: Callable[[SearchOutcome], None] | None,
    ) -> None:
        result: Any = None
        error: BaseException | None = None
        cancelled = False
        try:
            result = task(cancel.is_set)
        except SearchCancelledError:
            cancelled = True
        except BaseException as exc:  # delivered, never swallowed silently
            error = exc
        with self._lock:
            state = self._keys.get(key)
            current = state is not None and state.generation == generation
            self._threads.pop((key, generation), None)
        if cancelled:
            obs.count("search.background.cancelled")
        elif error is not None:
            obs.count("search.background.errors")
        elif current:
            obs.count("search.background.completed")
        else:
            obs.count("search.background.stale_results")
        if callback is not None:
            callback(
                SearchOutcome(
                    key=key,
                    generation=generation,
                    result=None if cancelled else result,
                    error=error,
                    cancelled=cancelled,
                    current=current,
                )
            )

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def generation(self, key: str) -> int:
        """Latest generation submitted for ``key`` (0 when none)."""
        with self._lock:
            state = self._keys.get(key)
            return state.generation if state is not None else 0

    def active_count(self) -> int:
        """Number of tasks whose worker threads have not terminated."""
        with self._lock:
            return len(self._threads)

    def cancel_all(self) -> None:
        """Set every key's cancellation event (tasks stop cooperatively)."""
        with self._lock:
            for state in self._keys.values():
                state.cancel.set()

    def join(self, timeout: float | None = None) -> bool:
        """Wait for all in-flight tasks; true when none remain.

        With a ``timeout`` the wait is split evenly across the threads
        still alive; a false return means some task was still running
        when time ran out (it keeps running — workers are daemons).
        """
        with self._lock:
            threads = list(self._threads.values())
        if not threads:
            return True
        per_thread = (
            None if timeout is None else max(timeout / len(threads), 0.05)
        )
        for thread in threads:
            thread.join(per_thread)
        return self.active_count() == 0

    def shutdown(self, timeout: float | None = 10.0) -> bool:
        """Cancel everything, wait, and refuse further submissions."""
        with self._lock:
            self._shutdown = True
        self.cancel_all()
        return self.join(timeout)
