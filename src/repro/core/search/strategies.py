"""Candidate-proposal strategies of the configuration search engine.

Each of the paper's search algorithms (Section 7.2) is expressed as a
:class:`SearchStrategy`: a stateful proposer that hands the engine
batches of candidate configurations and consumes their goal assessments
*in proposal order*.  The engine owns evaluation (via a pluggable
executor), trace recording, and observability; the strategy owns the
search logic — what to propose next and when the search is finished.

Strategies must be **batch-invariant**: the sequence of consumed
(candidate, assessment) pairs up to termination may not depend on how
many candidates the engine requested per round.  Greedy and simulated
annealing are inherently sequential and propose one candidate at a
time; exhaustive proposes any prefix of the cost-ordered enumeration;
branch-and-bound limits each batch to frontier nodes that provably
precede every still-unexpanded child in cost order.  This is what makes
parallel evaluation bit-identical to serial.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from dataclasses import dataclass

from repro.core.goals import GoalAssessment, GoalEvaluator, PerformabilityGoals
from repro.core.performance import SystemConfiguration
from repro.core.search.candidates import (
    configurations_by_cost,
    initial_configuration,
    per_type_lower_bounds,
)
from repro.core.search.types import ReplicationConstraints
from repro.exceptions import InfeasibleConfigurationError, ValidationError


@dataclass(frozen=True)
class Candidate:
    """One proposed configuration plus the step metadata for the trace."""

    configuration: SystemConfiguration
    added_server_type: str | None = None
    criterion: str | None = None


class SearchExhausted(Exception):
    """Internal signal: the strategy ran out of admissible candidates.

    The engine translates it into
    :class:`~repro.exceptions.InfeasibleConfigurationError`, attaching a
    ``best_found`` recommendation when the strategy supplies the best
    assessment it saw (the greedy heuristic does).
    """

    def __init__(
        self, message: str, best_assessment: GoalAssessment | None = None
    ) -> None:
        super().__init__(message)
        self.message = message
        self.best_assessment = best_assessment


class SearchStrategy:
    """Base class: propose candidates, observe assessments in order."""

    name: str = "abstract"
    #: Whether consumed steps appear in the recommendation's trace
    #: (the greedy heuristic's step-by-step justification; the other
    #: algorithms historically return an empty trace).
    record_trace: bool = False

    def propose(self, limit: int) -> list[Candidate]:
        """Up to ``limit`` candidates to evaluate next (may be fewer).

        An empty list means no candidate is currently proposable; the
        engine then calls :meth:`exhausted`.
        """
        raise NotImplementedError

    def observe(
        self, candidate: Candidate, assessment: GoalAssessment
    ) -> GoalAssessment | None:
        """Consume one assessment; non-``None`` ends the search with it.

        Called in proposal order.  Once a final assessment is returned
        the engine discards any unconsumed candidates of the batch.
        """
        raise NotImplementedError

    def exhausted(self) -> GoalAssessment:
        """Outcome when :meth:`propose` has nothing left to offer.

        Either returns the final assessment (simulated annealing ends
        this way) or raises :class:`SearchExhausted`.
        """
        raise SearchExhausted(
            "no admissible configuration satisfies the goals"
        )


def _most_critical_for_availability(
    assessment: GoalAssessment,
    configuration: SystemConfiguration,
    constraints: ReplicationConstraints,
) -> str | None:
    """Type whose complete failure contributes most to unavailability.

    Types violating their own per-type availability goal take precedence
    (ordered by relative excess); among the rest, the largest absolute
    per-type unavailability wins.
    """
    candidates = []
    for name, unavailability in assessment.per_type_unavailability.items():
        if not constraints.can_add(configuration, name):
            continue
        threshold = assessment.goals.type_unavailability_threshold(name)
        excess = (
            unavailability / threshold if math.isfinite(threshold) else 0.0
        )
        candidates.append(((excess > 1.0, excess, unavailability), name))
    if not candidates:
        return None
    candidates.sort(reverse=True)
    return candidates[0][1]


def _most_critical_for_performance(
    assessment: GoalAssessment,
    configuration: SystemConfiguration,
    constraints: ReplicationConstraints,
    goals: PerformabilityGoals,
) -> str | None:
    """Type with the largest relative waiting-time excess.

    Infinite waiting times (down or saturated types) dominate; ties are
    broken by utilization, so the most loaded type is relieved first.
    """
    report = assessment.performability
    if report is None:
        return None
    best_key: tuple[float, float] | None = None
    best_name: str | None = None
    for name, value in report.expected_waiting_times.items():
        if not constraints.can_add(configuration, name):
            continue
        threshold = goals.waiting_time_threshold(name)
        if math.isinf(value):
            excess = math.inf
        elif math.isinf(threshold):
            excess = 0.0
        else:
            excess = value / threshold
        key = (excess, assessment.utilizations.get(name, 0.0))
        if best_key is None or key > best_key:
            best_key = key
            best_name = name
    return best_name


class GreedyStrategy(SearchStrategy):
    """The paper's greedy heuristic (Section 7.2).

    Starting from the minimal admissible configuration, each step
    evaluates the current candidate and adds one replica of the most
    critical server type for whichever goal is still violated — first
    the availability criterion, then (after re-evaluating) the
    performability criterion — until both goals hold.  Strictly
    sequential: every proposal depends on the previous assessment, so
    batches are always of size one.
    """

    name = "greedy"
    record_trace = True

    def __init__(
        self,
        evaluator: GoalEvaluator,
        goals: PerformabilityGoals,
        constraints: ReplicationConstraints,
        initial: SystemConfiguration | None = None,
    ) -> None:
        self._goals = goals
        self._constraints = constraints
        configuration = initial or initial_configuration(
            evaluator.server_types, constraints
        )
        if not constraints.admits(configuration):
            raise ValidationError(
                f"initial configuration {configuration} violates the "
                "constraints"
            )
        self._next: Candidate | None = Candidate(configuration)

    def propose(self, limit: int) -> list[Candidate]:
        """The single pending configuration, if any."""
        return [self._next] if self._next is not None else []

    def observe(
        self, candidate: Candidate, assessment: GoalAssessment
    ) -> GoalAssessment | None:
        """Accept a satisfying assessment or derive the next repair step."""
        self._next = None
        if assessment.satisfied:
            return assessment
        # Interleave the two criteria: fix availability first, then
        # re-evaluate before touching performance (Section 7.2).
        configuration = candidate.configuration
        if not assessment.availability_satisfied:
            criterion = "availability"
            added_type = _most_critical_for_availability(
                assessment, configuration, self._constraints
            )
        else:
            criterion = "performability"
            added_type = _most_critical_for_performance(
                assessment, configuration, self._constraints, self._goals
            )
        if added_type is None:
            raise SearchExhausted(
                f"constraints exhausted at {configuration} with goals "
                "still violated: "
                + "; ".join(str(v) for v in assessment.violations),
                best_assessment=assessment,
            )
        self._next = Candidate(
            configuration.with_added_replica(added_type),
            added_server_type=added_type,
            criterion=criterion,
        )
        return None


class ExhaustiveStrategy(SearchStrategy):
    """Exact minimum-cost search by enumeration in cost order.

    Exponential in the number of server types, but exact — the oracle
    against which the greedy heuristic's near-minimality is measured.
    Any prefix of the cost-ordered enumeration may be evaluated ahead
    of time, so this strategy parallelizes freely: the first satisfied
    candidate *in enumeration order* is the minimum-cost answer no
    matter how many candidates were evaluated speculatively.
    """

    name = "exhaustive"

    def __init__(
        self,
        evaluator: GoalEvaluator,
        goals: PerformabilityGoals,
        constraints: ReplicationConstraints,
    ) -> None:
        self._candidates = configurations_by_cost(
            evaluator.server_types, constraints
        )
        self._best: tuple[int, GoalAssessment] | None = None

    def propose(self, limit: int) -> list[Candidate]:
        """Next ``limit`` configurations in increasing-cost order."""
        return [
            Candidate(configuration)
            for configuration in itertools.islice(self._candidates, limit)
        ]

    def observe(
        self, candidate: Candidate, assessment: GoalAssessment
    ) -> GoalAssessment | None:
        """Accept the assessment iff it satisfies the goals."""
        if assessment.satisfied:
            return assessment
        # Track the closest miss (fewest violations; candidates arrive
        # in cost order, so the first such is also the cheapest) for
        # infeasible-space reporting.
        rank = len(assessment.violations)
        if self._best is None or rank < self._best[0]:
            self._best = (rank, assessment)
        return None

    def exhausted(self) -> GoalAssessment:
        """Report infeasibility with the closest-miss assessment."""
        raise SearchExhausted(
            "the admissible space is exhausted with the goals still "
            "violated",
            best_assessment=(
                self._best[1] if self._best is not None else None
            ),
        )


class BranchAndBoundStrategy(SearchStrategy):
    """Exact minimum-cost search with monotonicity-based pruning.

    The paper notes the search "may eventually entail full-fledged
    algorithms for mathematical optimization such as branch-and-bound".
    Both goal metrics improve monotonically when replicas are added, so:

    1. per-type *lower bounds* are derived analytically (availability and
       failure-free waiting time are necessary conditions), pruning the
       infeasible corner without any model evaluation;
    2. candidates are expanded best-first in cost order from the
       lower-bound corner, so the first feasible configuration found is
       a provably minimum-cost one.

    Exact like :class:`ExhaustiveStrategy`, typically at a small
    fraction of its model evaluations.  Batches are *cost-safe*: a
    frontier node joins a batch only while its cost does not exceed the
    first node's cost plus the cheapest possible replica addition, so
    no yet-unexpanded child could precede any batch member in the
    serial (cost, insertion) order — parallel evaluation therefore
    consumes candidates in exactly the serial sequence.
    """

    name = "branch_and_bound"

    def __init__(
        self,
        evaluator: GoalEvaluator,
        goals: PerformabilityGoals,
        constraints: ReplicationConstraints,
    ) -> None:
        self._constraints = constraints
        self._server_types = evaluator.server_types
        names = evaluator.server_types.names
        lower = per_type_lower_bounds(evaluator, goals, constraints)
        if any(lower[name] > constraints.upper_bound(name) for name in names):
            raise InfeasibleConfigurationError(
                "analytic lower bounds already exceed the constraints; no "
                "admissible configuration can satisfy the goals"
            )
        start = SystemConfiguration({name: lower[name] for name in names})
        if not constraints.admits(start):
            raise InfeasibleConfigurationError(
                f"lower-bound configuration {start} violates the "
                "total-server constraint"
            )
        self._counter = 0
        self._frontier: list[tuple[float, int, SystemConfiguration]] = []
        heapq.heappush(
            self._frontier, (self._cost(start), self._counter, start)
        )
        self._seen = {tuple(sorted(start.replicas.items()))}
        self._min_add_cost = min(
            spec.cost for spec in evaluator.server_types.specs
        )

    def _cost(self, configuration: SystemConfiguration) -> float:
        return configuration.cost(self._server_types)

    def propose(self, limit: int) -> list[Candidate]:
        """Pop a cost-safe batch off the best-first frontier."""
        if not self._frontier:
            return []
        first_cost, _, first = heapq.heappop(self._frontier)
        batch = [Candidate(first)]
        # Cost-safe batching: any child pushed while consuming this batch
        # costs at least first_cost + min_add_cost, and insertion-order
        # tie-breaking favours already-queued nodes, so every frontier
        # node within that bound is consumed before any new child would
        # be under serial best-first order.
        while (self._frontier and len(batch) < limit
               and self._frontier[0][0] <= first_cost + self._min_add_cost):
            _, _, configuration = heapq.heappop(self._frontier)
            batch.append(Candidate(configuration))
        return batch

    def observe(
        self, candidate: Candidate, assessment: GoalAssessment
    ) -> GoalAssessment | None:
        """Accept a satisfying node, otherwise expand its children."""
        if assessment.satisfied:
            return assessment
        configuration = candidate.configuration
        for name in self._server_types.names:
            if not self._constraints.can_add(configuration, name):
                continue
            child = configuration.with_added_replica(name)
            key = tuple(sorted(child.replicas.items()))
            if key in self._seen:
                continue
            self._seen.add(key)
            self._counter += 1
            heapq.heappush(
                self._frontier, (self._cost(child), self._counter, child)
            )
        return None


class SimulatedAnnealingStrategy(SearchStrategy):
    """Simulated-annealing search over the configuration space.

    The objective is ``cost + violation_penalty * (#violated goals)``;
    neighbour moves add or remove one replica of a random type within the
    constraint bounds.  Deterministic for a fixed ``seed``.  Inherently
    sequential — each move depends on the previous acceptance decision
    and the random stream — so batches are always of size one and the
    walk gains nothing from parallel evaluation.
    """

    name = "simulated_annealing"

    def __init__(
        self,
        evaluator: GoalEvaluator,
        goals: PerformabilityGoals,
        constraints: ReplicationConstraints,
        iterations: int = 400,
        initial_temperature: float = 4.0,
        cooling: float = 0.98,
        violation_penalty: float = 100.0,
        seed: int = 0,
    ) -> None:
        self._server_types = evaluator.server_types
        self._constraints = constraints
        self._names = list(evaluator.server_types.names)
        self._rng = random.Random(seed)
        self._remaining = iterations
        self._temperature = initial_temperature
        self._cooling = cooling
        self._violation_penalty = violation_penalty
        self._current = initial_configuration(
            evaluator.server_types, constraints
        )
        self._current_assessment: GoalAssessment | None = None
        self._best_assessment: GoalAssessment | None = None
        self._started = False

    def _objective(self, assessment: GoalAssessment) -> float:
        return (assessment.configuration.cost(self._server_types)
                + self._violation_penalty * len(assessment.violations))

    def propose(self, limit: int) -> list[Candidate]:
        """The start point first, then one random in-bounds neighbour."""
        if not self._started:
            return [Candidate(self._current)]
        # Draw neighbour moves until one stays within the bounds; the
        # random stream consumption matches the historical loop exactly
        # (two draws per attempted move, cooling only after evaluations).
        while self._remaining > 0:
            self._remaining -= 1
            name = self._rng.choice(self._names)
            delta = self._rng.choice((-1, 1))
            count = self._current.count(name) + delta
            if not (self._constraints.lower_bound(name) <= count
                    <= self._constraints.upper_bound(name)):
                continue
            replicas = dict(self._current.replicas)
            replicas[name] = count
            neighbour = SystemConfiguration(replicas)
            if neighbour.total_servers > self._constraints.max_total_servers:
                continue
            return [Candidate(neighbour)]
        return []

    def observe(
        self, candidate: Candidate, assessment: GoalAssessment
    ) -> GoalAssessment | None:
        """Metropolis accept/reject; tracks the best feasible assessment."""
        if not self._started:
            self._started = True
            self._current_assessment = assessment
            self._best_assessment = assessment
            return None
        assert self._current_assessment is not None
        assert self._best_assessment is not None
        # Track the best feasible configuration on *evaluation*, not
        # on acceptance: a satisfied, cheaper neighbour whose
        # Metropolis move is rejected must still be remembered.
        if (assessment.satisfied
                and (not self._best_assessment.satisfied
                     or self._objective(assessment)
                     < self._objective(self._best_assessment))):
            self._best_assessment = assessment
        difference = (self._objective(assessment)
                      - self._objective(self._current_assessment))
        if difference <= 0.0 or self._rng.random() < math.exp(
            -difference / max(self._temperature, 1e-9)
        ):
            self._current = candidate.configuration
            self._current_assessment = assessment
        self._temperature *= self._cooling
        return None

    def exhausted(self) -> GoalAssessment:
        """Best satisfied assessment seen, else the final current one."""
        if (self._best_assessment is not None
                and self._best_assessment.satisfied):
            return self._best_assessment
        raise SearchExhausted(
            "simulated annealing found no configuration satisfying the "
            "goals; increase iterations or relax constraints"
        )
