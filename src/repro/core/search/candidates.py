"""Candidate enumeration for the configuration search (Section 7.2).

The exhaustive and branch-and-bound strategies consume admissible
configurations in non-decreasing cost order.  The enumeration here is
*lazy*: a best-first expansion over the replica-count lattice that
yields candidates straight from a heap, so the searches start
evaluating immediately and memory stays proportional to the frontier —
not to the full cartesian product of replica counts, which the eager
predecessor of this module materialized and sorted up front.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Iterator

from repro.core.model_types import ServerTypeIndex
from repro.core.performance import SystemConfiguration
from repro.core.search.types import ReplicationConstraints
from repro.exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.core.goals import GoalEvaluator, PerformabilityGoals


def initial_configuration(
    server_types: ServerTypeIndex, constraints: ReplicationConstraints
) -> SystemConfiguration:
    """The minimal admissible configuration (lower-bound corner)."""
    return SystemConfiguration(
        {
            name: constraints.lower_bound(name)
            for name in server_types.names
        }
    )


def configurations_by_cost(
    server_types: ServerTypeIndex, constraints: ReplicationConstraints
) -> Iterator[SystemConfiguration]:
    """All admissible configurations in non-decreasing cost order, lazily.

    Order: ``(cost, total_servers, str(configuration))`` — a total order
    over distinct configurations, identical to the eager sort this
    generator replaced, so consumers see the exact same sequence.

    The lattice is expanded best-first from the lower-bound corner.
    Each configuration is generated along exactly one path — replicas
    are only ever added at type indices at or after the last index
    incremented — so no visited-set is needed and memory stays bounded
    by the heap frontier.  Every proper ancestor of an admissible
    configuration has a strictly smaller total (and no larger cost), so
    pruning nodes over ``max_total_servers`` never cuts off a reachable
    admissible candidate.
    """
    names = server_types.names
    lower = tuple(constraints.lower_bound(name) for name in names)
    upper = tuple(constraints.upper_bound(name) for name in names)
    if any(low > high for low, high in zip(lower, upper)):
        return

    def entry(counts: tuple[int, ...], first_index: int):
        configuration = SystemConfiguration(dict(zip(names, counts)))
        return (
            configuration.cost(server_types),
            configuration.total_servers,
            str(configuration),
            counts,
            first_index,
            configuration,
        )

    frontier = [entry(lower, 0)]
    while frontier:
        _, total, _, counts, first_index, configuration = heapq.heappop(
            frontier
        )
        if total > constraints.max_total_servers:
            # Children only grow the total; prune the whole subtree.
            continue
        yield configuration
        for j in range(first_index, len(names)):
            if counts[j] + 1 <= upper[j]:
                child = counts[:j] + (counts[j] + 1,) + counts[j + 1:]
                heapq.heappush(frontier, entry(child, j))


def per_type_lower_bounds(
    evaluator: "GoalEvaluator",
    goals: "PerformabilityGoals",
    constraints: ReplicationConstraints,
) -> dict[str, int]:
    """Per-type replica lower bounds implied by the goals.

    Both metrics are monotone in the replication degree, so a
    configuration can only be feasible if every type alone satisfies the
    *necessary* conditions: (i) the type's own unavailability must not
    already exceed the system goal (the system is down whenever the type
    is fully down), and (ii) the failure-free waiting time — a lower
    bound on the performability waiting time — must meet the threshold,
    which in particular requires an unsaturated replica pool.  These
    bounds let branch-and-bound skip the infeasible corner of the
    search space without evaluating it.
    """
    from repro.core.availability import (
        ServerPoolAvailability,
        minimum_replicas_for_availability,
    )
    from repro.queueing import mg1_mean_waiting_time

    totals = evaluator.performance.total_request_rates()
    bounds: dict[str, int] = {}
    for i, spec in enumerate(evaluator.server_types.specs):
        bound = constraints.lower_bound(spec.name)
        upper = constraints.upper_bound(spec.name)

        availability_target = min(
            goals.max_unavailability
            if goals.max_unavailability is not None else math.inf,
            goals.type_unavailability_threshold(spec.name),
        )
        if math.isfinite(availability_target) and spec.failure_rate > 0.0:
            single = ServerPoolAvailability(spec, 1, evaluator.repair_policy)
            if single.unavailability > availability_target:
                try:
                    bound = max(
                        bound,
                        minimum_replicas_for_availability(
                            spec, availability_target,
                            policy=evaluator.repair_policy,
                            max_replicas=upper,
                        ),
                    )
                except ValidationError:
                    bound = upper + 1  # provably infeasible within bounds

        waiting_target = goals.waiting_time_threshold(spec.name)
        if math.isfinite(waiting_target) and totals[i] > 0.0:
            count = bound
            while count <= upper:
                waiting = mg1_mean_waiting_time(
                    totals[i] / count,
                    spec.mean_service_time,
                    spec.second_moment_service_time,
                )
                if waiting <= waiting_target:
                    break
                count += 1
            bound = count
        bounds[spec.name] = bound
    return bounds
