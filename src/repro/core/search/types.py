"""Shared value types of the configuration search (Section 7).

These dataclasses are the vocabulary every search component speaks:
:class:`ReplicationConstraints` bounds the space, :class:`SearchStep`
records one consumed candidate for traceability, and
:class:`ConfigurationRecommendation` is the final answer.  They
historically lived in :mod:`repro.core.configuration`, which still
re-exports them for API compatibility; the search engine, the proposal
strategies, and the executors all import them from here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.goals import GoalAssessment
from repro.core.performance import SystemConfiguration
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class ReplicationConstraints:
    """Bounds on the replication degree per server type (Section 7.1).

    Recommendations "can take into account specific constraints such as
    limiting or fixing the degree of replication of particular server
    types (e.g., for cost reasons)".  ``fixed`` pins a type to an exact
    count; ``minimum``/``maximum`` bound the search per type;
    ``max_total_servers`` bounds the whole system.
    """

    minimum: Mapping[str, int] = field(default_factory=dict)
    maximum: Mapping[str, int] = field(default_factory=dict)
    fixed: Mapping[str, int] = field(default_factory=dict)
    max_total_servers: int = 64

    def __post_init__(self) -> None:
        for mapping_name in ("minimum", "maximum", "fixed"):
            mapping = dict(getattr(self, mapping_name))
            for name, value in mapping.items():
                # A zero maximum would make upper_bound < lower_bound and
                # surface only as a confusing downstream search failure.
                if int(value) != value or value < 1:
                    raise ValidationError(
                        f"{mapping_name}[{name}] must be a positive integer"
                    )
                mapping[name] = int(value)
            object.__setattr__(self, mapping_name, mapping)
        if self.max_total_servers < 1:
            raise ValidationError("max_total_servers must be >= 1")
        for name, value in self.fixed.items():
            low = self.minimum.get(name)
            high = self.maximum.get(name)
            if low is not None and value < low:
                raise ValidationError(
                    f"fixed[{name}]={value} conflicts with minimum {low}"
                )
            if high is not None and value > high:
                raise ValidationError(
                    f"fixed[{name}]={value} conflicts with maximum {high}"
                )

    def lower_bound(self, server_type: str) -> int:
        """Smallest admissible replica count for one type."""
        if server_type in self.fixed:
            return self.fixed[server_type]
        return self.minimum.get(server_type, 1)

    def upper_bound(self, server_type: str) -> int:
        """Largest admissible replica count for one type."""
        if server_type in self.fixed:
            return self.fixed[server_type]
        return self.maximum.get(server_type, self.max_total_servers)

    def admits(self, configuration: SystemConfiguration) -> bool:
        """Whether a configuration satisfies all bounds."""
        if configuration.total_servers > self.max_total_servers:
            return False
        return all(
            self.lower_bound(name) <= count <= self.upper_bound(name)
            for name, count in configuration.replicas.items()
        )

    def can_add(self, configuration: SystemConfiguration, server_type: str) -> bool:
        """Whether one more replica of ``server_type`` stays admissible."""
        if configuration.total_servers + 1 > self.max_total_servers:
            return False
        return (configuration.count(server_type) + 1
                <= self.upper_bound(server_type))


@dataclass(frozen=True)
class SearchStep:
    """One iteration of a configuration search, for traceability."""

    configuration: SystemConfiguration
    cost: float
    satisfied: bool
    added_server_type: str | None
    criterion: str | None


@dataclass(frozen=True)
class ConfigurationRecommendation:
    """Result of a configuration search."""

    configuration: SystemConfiguration
    cost: float
    assessment: GoalAssessment
    evaluations: int
    trace: tuple[SearchStep, ...] = ()
    algorithm: str = "greedy"

    def format_text(self) -> str:
        """Human-readable multi-line rendering of the recommendation."""
        lines = [
            f"Recommended configuration ({self.algorithm}): "
            f"{self.configuration}",
            f"  cost: {self.cost:g} ({self.configuration.total_servers} servers)",
            f"  model evaluations: {self.evaluations}",
            f"  goals satisfied: {self.assessment.satisfied}",
        ]
        if self.assessment.unavailability is not None:
            lines.append(
                f"  system unavailability: "
                f"{self.assessment.unavailability:.3e}"
            )
        if self.assessment.performability is not None:
            worst = self.assessment.performability.max_expected_waiting_time
            lines.append(f"  worst expected waiting time: {worst:.6f}")
        return "\n".join(lines)

    def to_document(self) -> dict[str, Any]:
        """Machine-readable form, matching the metrics/trace export
        conventions (plain JSON types, ``inf`` rendered as ``null``)."""

        def _finite(value: float | None) -> float | None:
            if value is None or not math.isfinite(value):
                return None
            return float(value)

        assessment = self.assessment
        performability = assessment.performability
        return {
            "algorithm": self.algorithm,
            "configuration": dict(
                sorted(self.configuration.replicas.items())
            ),
            "cost": self.cost,
            "total_servers": self.configuration.total_servers,
            "evaluations": self.evaluations,
            "satisfied": assessment.satisfied,
            "violations": [
                {
                    "kind": violation.kind,
                    "server_type": violation.server_type,
                    "actual": _finite(violation.actual),
                    "threshold": _finite(violation.threshold),
                }
                for violation in assessment.violations
            ],
            "unavailability": assessment.unavailability,
            "per_type_unavailability": dict(
                sorted(assessment.per_type_unavailability.items())
            ),
            "utilizations": dict(sorted(assessment.utilizations.items())),
            "expected_waiting_times": (
                {
                    name: _finite(value)
                    for name, value in sorted(
                        performability.expected_waiting_times.items()
                    )
                }
                if performability is not None else None
            ),
            "trace": [
                {
                    "configuration": dict(
                        sorted(step.configuration.replicas.items())
                    ),
                    "cost": step.cost,
                    "satisfied": step.satisfied,
                    "added_server_type": step.added_server_type,
                    "criterion": step.criterion,
                }
                for step in self.trace
            ],
        }
