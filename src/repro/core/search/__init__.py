"""The configuration-search engine (Section 7.2).

One engine, four candidate-proposal strategies, two evaluation
backends:

* :class:`SearchEngine` — the unified propose → evaluate → consume →
  record loop that the four per-algorithm loops in
  :mod:`repro.core.configuration` collapsed into;
* :class:`GreedyStrategy`, :class:`ExhaustiveStrategy`,
  :class:`BranchAndBoundStrategy`, :class:`SimulatedAnnealingStrategy`
  — the paper's algorithms as pure proposal logic;
* :class:`SerialEvaluator` (default) and :class:`ProcessPoolEvaluator`
  (spawn workers, cache merge-back, bit-identical to serial) — where
  candidate evaluation runs;
* :class:`ParetoFrontier` / :class:`FrontierStrategy` /
  :func:`frontier_search` — the multi-objective generalization: a
  maintained non-dominated set over cost, waiting time, unavailability,
  and performability (see :mod:`repro.core.search.frontier`).

The public convenience wrappers (``greedy_configuration`` etc.) live in
:mod:`repro.core.configuration` for API compatibility.
"""

from repro.core.search.background import (
    BackgroundSearchExecutor,
    SearchOutcome,
)
from repro.core.search.candidates import (
    configurations_by_cost,
    initial_configuration,
    per_type_lower_bounds,
)
from repro.core.search.engine import SearchEngine
from repro.core.search.frontier import (
    OBJECTIVES,
    FrontierPoint,
    FrontierResult,
    FrontierStrategy,
    ParetoFrontier,
    frontier_search,
)
from repro.core.search.executors import (
    CandidateEvaluator,
    ProcessPoolEvaluator,
    SerialEvaluator,
)
from repro.core.search.strategies import (
    BranchAndBoundStrategy,
    Candidate,
    ExhaustiveStrategy,
    GreedyStrategy,
    SearchStrategy,
    SimulatedAnnealingStrategy,
)
from repro.core.search.types import (
    ConfigurationRecommendation,
    ReplicationConstraints,
    SearchStep,
)

__all__ = [
    "BackgroundSearchExecutor",
    "BranchAndBoundStrategy",
    "Candidate",
    "CandidateEvaluator",
    "ConfigurationRecommendation",
    "ExhaustiveStrategy",
    "FrontierPoint",
    "FrontierResult",
    "FrontierStrategy",
    "GreedyStrategy",
    "OBJECTIVES",
    "ParetoFrontier",
    "ProcessPoolEvaluator",
    "ReplicationConstraints",
    "SearchEngine",
    "SearchOutcome",
    "SearchStep",
    "SearchStrategy",
    "SerialEvaluator",
    "SimulatedAnnealingStrategy",
    "configurations_by_cost",
    "frontier_search",
    "initial_configuration",
    "per_type_lower_bounds",
]
