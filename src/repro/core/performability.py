"""Performability model (Section 6).

The performability model is a hierarchical Markov reward model: the
*availability* CTMC of Section 5 provides the steady-state probability of
every system state ``X`` (how many replicas of each type are currently
up), and the *performance* model of Section 4, evaluated for the degraded
configuration ``X``, provides the state's reward — the vector of mean
waiting times per server type.  The expectation

    W^Y = sum_i w^i * pi_i

is the paper's ultimate metric: the mean waiting time of service requests
under configuration ``Y``, including the temporary degradation caused by
failures and downtimes.

In system states where a server type has zero running replicas, or where
a replica is saturated (utilization >= 1), the M/G/1 waiting time is
undefined/infinite.  The paper does not fix the reward there;
:class:`DegradedStatePolicy` makes the choice explicit.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.core.availability import AvailabilityModel
from repro.core.performance import PerformanceModel, SystemConfiguration
from repro.exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.core.evaluation_cache import EvaluationCache


class DegradedStatePolicy(enum.Enum):
    """Reward assigned to system states with an unbounded waiting time.

    * ``CONDITIONAL`` — condition on the system being *operational and
      stable* (every type has a running replica and no replica is
      saturated) and renormalize; matches the paper's framing of
      performability as "performance degradation in degraded mode" while
      the system is up.  The operational probability is reported alongside.
    * ``PENALTY`` — replace infinite entries by a fixed penalty value and
      average over *all* states; useful to make goal checks strictly
      monotone in the replication degree.
    * ``INFINITE`` — propagate infinity: if any reachable state is
      infeasible, the affected server types report ``inf``; the strictest
      reading, appropriate when even transient saturation is unacceptable.
    """

    CONDITIONAL = "conditional"
    PENALTY = "penalty"
    INFINITE = "infinite"


@dataclass(frozen=True)
class PerformabilityReport:
    """Result of the Section 6 analysis for one configuration."""

    configuration: SystemConfiguration
    #: Expected waiting time per server type with failures accounted for.
    expected_waiting_times: dict[str, float]
    #: Waiting times of the full (failure-free) configuration, for
    #: comparison: the degradation factor is expected / failure_free.
    failure_free_waiting_times: dict[str, float]
    #: Steady-state probability that the system is operational and stable.
    feasible_probability: float
    #: Steady-state system unavailability (Section 5 metric).
    unavailability: float
    policy: DegradedStatePolicy

    @property
    def max_expected_waiting_time(self) -> float:
        """Worst per-type performability waiting time."""
        return max(self.expected_waiting_times.values())

    def degradation_factor(self, server_type: str) -> float:
        """How much failures inflate the waiting time of one type."""
        baseline = self.failure_free_waiting_times[server_type]
        value = self.expected_waiting_times[server_type]
        if baseline <= 0.0:
            return math.inf if value > 0.0 else 1.0
        return value / baseline

    def format_text(self) -> str:
        """Human-readable multi-line rendering of the report."""
        lines = [
            f"Performability assessment for configuration "
            f"{self.configuration} (policy: {self.policy.value})",
            f"  operational+stable probability: {self.feasible_probability:.9f}",
            f"  system unavailability:          {self.unavailability:.3e}",
            "  Server type          failure-free w   performability W   degradation",
        ]
        for name, value in self.expected_waiting_times.items():
            baseline = self.failure_free_waiting_times[name]
            factor = self.degradation_factor(name)
            value_text = f"{value:14.6f}" if math.isfinite(value) else "           inf"
            factor_text = f"x{factor:.4f}" if math.isfinite(factor) else "inf"
            lines.append(
                f"    {name:18s} {baseline:14.6f} {value_text}   {factor_text}"
            )
        return "\n".join(lines)


class PerformabilityModel:
    """Combines the performance and availability models (Section 6)."""

    def __init__(
        self,
        performance: PerformanceModel,
        availability: AvailabilityModel,
        policy: DegradedStatePolicy = DegradedStatePolicy.CONDITIONAL,
        penalty_waiting_time: float | None = None,
        cache: "EvaluationCache | None" = None,
    ) -> None:
        if performance.server_types != availability.server_types:
            raise ValidationError(
                "performance and availability models must share the same "
                "server type index"
            )
        if policy is DegradedStatePolicy.PENALTY:
            if penalty_waiting_time is None or penalty_waiting_time <= 0.0:
                raise ValidationError(
                    "PENALTY policy requires a positive penalty_waiting_time"
                )
        self.performance = performance
        self.availability = availability
        self.policy = policy
        self.penalty_waiting_time = penalty_waiting_time
        self._cache = cache
        self._state_cache: dict[tuple[int, ...], np.ndarray] = {}

    # ------------------------------------------------------------------
    # State-specific rewards
    # ------------------------------------------------------------------
    def state_waiting_times(self, state: tuple[int, ...]) -> np.ndarray:
        """Waiting-time vector ``w^i`` for one system state ``X``.

        Evaluates the Section 4 model with the *available* replica counts;
        entries are ``inf`` for types that are down (with load) or
        saturated in this state.
        """
        cached = self._state_cache.get(state)
        if cached is not None:
            return cached
        names = self.performance.server_types.names
        if len(state) != len(names):
            raise ValidationError(
                f"state must have {len(names)} entries, got {len(state)}"
            )
        configuration = SystemConfiguration(dict(zip(names, state)))
        waits = self.performance.waiting_times(configuration)
        self._state_cache[state] = waits
        return waits

    def is_state_feasible(self, state: tuple[int, ...]) -> bool:
        """Operational and stable: all waiting times are finite."""
        return bool(np.all(np.isfinite(self.state_waiting_times(state))))

    # ------------------------------------------------------------------
    # The Section 6 expectation
    # ------------------------------------------------------------------
    def expected_waiting_times(
        self, method: str = "marginal"
    ) -> PerformabilityReport:
        """Compute ``W^Y`` under the configured degraded-state policy.

        ``joint`` evaluates the paper's formulation literally: iterate
        over the full system-state CTMC's steady-state distribution.
        ``marginal`` (default) exploits that the per-type availability
        processes are mutually independent and that the waiting time of
        type ``x`` depends on the system state only through ``X_x``; the
        expectation then separates into per-type birth-death marginals,
        turning an O(prod(Y_x + 1)) evaluation into O(sum(Y_x)).  Both
        methods return identical values (cross-checked in the tests);
        the fast path is what makes configuration search over many
        server types practical.
        """
        obs.count("performability.evaluations")
        with obs.span(
            "performability.expected_waiting_times", method=method
        ):
            if method == "marginal":
                return self._expected_waiting_times_marginal()
            if method == "joint":
                return self._expected_waiting_times_joint()
        raise ValidationError(f"unknown performability method {method!r}")

    def _waiting_curve(self, type_index: int, up_to: int) -> np.ndarray:
        """The curve ``w_x(n)`` for ``n = 0..up_to`` of one server type.

        The waiting time of type ``x`` depends on the system state only
        through its own pool size, so the curve is a property of the
        workload alone and is shared across *all* candidates of a
        configuration search via the evaluation cache (when one is
        attached).
        """
        name = self.performance.server_types.names[type_index]

        def compute(available: int) -> float:
            return self.performance.waiting_time_for_count(
                type_index, available
            )

        if self._cache is not None:
            return self._cache.waiting_curve(name, up_to, compute)
        return np.array(
            [compute(n) for n in range(up_to + 1)], dtype=float
        )

    def _expected_waiting_times_marginal(self) -> PerformabilityReport:
        names = self.performance.server_types.names
        full_configuration = self.availability.configuration
        counts = full_configuration.as_vector(
            self.performance.server_types
        )
        pools = self.availability.pools()

        expected = np.zeros(len(names))
        feasible_probability = 1.0
        for i, name in enumerate(names):
            marginal = np.asarray(
                pools[name].state_probabilities, dtype=float
            )
            waits = self._waiting_curve(i, int(counts[i]))
            finite = np.isfinite(waits)
            finite_mass = float(marginal[finite].sum())
            infinite_mass = 1.0 - finite_mass
            weighted = float(marginal[finite] @ waits[finite])
            feasible_probability *= finite_mass
            if self.policy is DegradedStatePolicy.CONDITIONAL:
                if finite_mass <= 0.0:
                    expected[i] = math.inf
                else:
                    expected[i] = weighted / finite_mass
            elif self.policy is DegradedStatePolicy.PENALTY:
                assert self.penalty_waiting_time is not None
                expected[i] = (
                    weighted + infinite_mass * self.penalty_waiting_time
                )
            else:  # INFINITE
                if bool(np.any(marginal[~finite] > 0.0)):
                    expected[i] = math.inf
                else:
                    expected[i] = weighted

        failure_free = self.performance.waiting_times(full_configuration)
        return PerformabilityReport(
            configuration=full_configuration,
            expected_waiting_times={
                name: float(expected[i]) for i, name in enumerate(names)
            },
            failure_free_waiting_times={
                name: float(failure_free[i]) for i, name in enumerate(names)
            },
            feasible_probability=feasible_probability,
            unavailability=self.availability.unavailability(),
            policy=self.policy,
        )

    def _expected_waiting_times_joint(self) -> PerformabilityReport:
        probabilities = self.availability.state_probabilities()
        num_types = len(self.performance.server_types)
        names = self.performance.server_types.names

        feasible_mass = 0.0
        weighted = np.zeros(num_types)
        infinite_mass_per_type = np.zeros(num_types)
        for state, probability in probabilities.items():
            if probability <= 0.0:
                continue
            waits = self.state_waiting_times(state)
            if self.is_state_feasible(state):
                feasible_mass += probability
                weighted += probability * waits
            else:
                finite = np.where(np.isfinite(waits), waits, 0.0)
                weighted += probability * finite
                infinite_mass_per_type += probability * (~np.isfinite(waits))

        expected = self._apply_policy(
            weighted, feasible_mass, infinite_mass_per_type
        )
        full_configuration = self.availability.configuration
        failure_free = self.performance.waiting_times(full_configuration)
        return PerformabilityReport(
            configuration=full_configuration,
            expected_waiting_times={
                name: float(expected[i]) for i, name in enumerate(names)
            },
            failure_free_waiting_times={
                name: float(failure_free[i]) for i, name in enumerate(names)
            },
            feasible_probability=feasible_mass,
            unavailability=self.availability.unavailability(),
            policy=self.policy,
        )

    def _apply_policy(
        self,
        weighted: np.ndarray,
        feasible_mass: float,
        infinite_mass_per_type: np.ndarray,
    ) -> np.ndarray:
        if self.policy is DegradedStatePolicy.CONDITIONAL:
            if feasible_mass <= 0.0:
                return np.full_like(weighted, math.inf)
            # Keep only the operational-and-stable mass.  `weighted`
            # already contains the finite contributions of infeasible
            # states; recompute cleanly from the cache for correctness.
            conditional = np.zeros_like(weighted)
            probabilities = self.availability.state_probabilities()
            for state, probability in probabilities.items():
                if probability <= 0.0 or not self.is_state_feasible(state):
                    continue
                conditional += probability * self.state_waiting_times(state)
            return conditional / feasible_mass
        if self.policy is DegradedStatePolicy.PENALTY:
            assert self.penalty_waiting_time is not None
            return weighted + infinite_mass_per_type * self.penalty_waiting_time
        # INFINITE: any mass on an infinite entry makes the entry infinite.
        result = weighted.copy()
        result[infinite_mass_per_type > 0.0] = math.inf
        return result
