"""Discrete-time Markov chains.

Two flavours are needed by the paper's method:

* **Absorbing chains** — the embedded jump chain of a workflow CTMC.  Its
  fundamental matrix gives the exact expected number of visits to each
  execution state before absorption, which is the oracle against which the
  paper's truncated-series algorithm (Section 4.2.1) is verified.
* **Ergodic chains** — used by the uniformization machinery and the
  availability analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core import linalg
from repro.exceptions import ModelError, ValidationError


def _default_state_names(n: int) -> tuple[str, ...]:
    return tuple(f"s{i}" for i in range(n))


@dataclass(frozen=True)
class AbsorbingDTMC:
    """A discrete-time Markov chain with at least one absorbing state.

    Parameters
    ----------
    transition_matrix:
        Row-stochastic matrix ``P`` where ``P[i, j]`` is the probability of
        jumping from state ``i`` to state ``j``.
    state_names:
        Optional labels; defaults to ``s0 .. s{n-1}``.

    Absorbing states are detected as the states ``i`` with ``P[i, i] = 1``.
    """

    transition_matrix: np.ndarray
    state_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        p = linalg.validate_stochastic_matrix(
            np.asarray(self.transition_matrix, dtype=float),
            "transition matrix",
        )
        object.__setattr__(self, "transition_matrix", p)
        names = self.state_names or _default_state_names(p.shape[0])
        if len(names) != p.shape[0]:
            raise ValidationError(
                f"expected {p.shape[0]} state names, got {len(names)}"
            )
        if len(set(names)) != len(names):
            raise ValidationError("state names must be unique")
        object.__setattr__(self, "state_names", tuple(names))
        if not self.absorbing_states:
            raise ModelError("chain has no absorbing state")
        self._validate_absorption_is_certain()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Total number of states, absorbing ones included."""
        return self.transition_matrix.shape[0]

    @property
    def absorbing_states(self) -> tuple[int, ...]:
        """Indices ``i`` with ``P[i, i] == 1`` (within tolerance)."""
        p = self.transition_matrix
        return tuple(
            i for i in range(p.shape[0]) if p[i, i] >= 1.0 - 1e-12
        )

    @property
    def transient_states(self) -> tuple[int, ...]:
        """Indices of the non-absorbing states."""
        absorbing = set(self.absorbing_states)
        return tuple(i for i in range(self.num_states) if i not in absorbing)

    def _validate_absorption_is_certain(self) -> None:
        """Check every transient state reaches some absorbing state.

        The paper assumes first-passage probabilities into the absorbing
        state equal one; a workflow whose chain violates this (e.g. a loop
        with no exit) is a specification error that must be reported.
        """
        p = self.transition_matrix
        reachable = set(self.absorbing_states)
        # Backward breadth-first search over P's support.
        changed = True
        while changed:
            changed = False
            for i in self.transient_states:
                if i in reachable:
                    continue
                if any(p[i, j] > 0.0 for j in reachable):
                    reachable.add(i)
                    changed = True
        trapped = [self.state_names[i] for i in self.transient_states
                   if i not in reachable]
        if trapped:
            raise ModelError(
                "absorption is not certain: states cannot reach an "
                f"absorbing state: {trapped}"
            )

    # ------------------------------------------------------------------
    # Absorption analysis
    # ------------------------------------------------------------------
    def fundamental_matrix(self) -> np.ndarray:
        """Return ``N = (I - T)^-1`` over the transient states.

        ``N[i, j]`` is the expected number of visits to transient state ``j``
        given the chain starts in transient state ``i`` (indices taken in
        :attr:`transient_states` order).
        """
        transient = list(self.transient_states)
        t = self.transition_matrix[np.ix_(transient, transient)]
        identity = np.eye(len(transient))
        try:
            return np.linalg.solve(identity - t, identity)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - guarded
            raise ModelError(
                f"fundamental matrix is singular: {exc}"
            ) from exc

    def expected_visits(self, start: int = 0) -> np.ndarray:
        """Expected visits to every state before absorption, from ``start``.

        Returns a full-length vector (absorbing states get 0).  The start
        state itself counts as one visit, matching the paper's convention
        in which entering the initial state incurs its load once.
        """
        self._require_transient(start)
        transient = list(self.transient_states)
        n = self.fundamental_matrix()
        visits = np.zeros(self.num_states)
        row = transient.index(start)
        for column, state in enumerate(transient):
            visits[state] = n[row, column]
        return visits

    def expected_steps_to_absorption(self, start: int = 0) -> float:
        """Expected number of jumps until absorption from ``start``."""
        return float(self.expected_visits(start).sum())

    def absorption_probabilities(self, start: int = 0) -> dict[int, float]:
        """Probability of ending in each absorbing state, from ``start``."""
        self._require_transient(start)
        transient = list(self.transient_states)
        n = self.fundamental_matrix()
        r = self.transition_matrix[np.ix_(transient,
                                          list(self.absorbing_states))]
        b = n @ r
        row = transient.index(start)
        return {
            state: float(b[row, column])
            for column, state in enumerate(self.absorbing_states)
        }

    def _require_transient(self, state: int) -> None:
        if state not in self.transient_states:
            raise ValidationError(
                f"start state {state} must be transient "
                f"(absorbing states: {self.absorbing_states})"
            )


@dataclass(frozen=True)
class ErgodicDTMC:
    """An irreducible, aperiodic discrete-time Markov chain."""

    transition_matrix: np.ndarray
    state_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        p = linalg.validate_stochastic_matrix(
            np.asarray(self.transition_matrix, dtype=float),
            "transition matrix",
        )
        object.__setattr__(self, "transition_matrix", p)
        names = self.state_names or _default_state_names(p.shape[0])
        if len(names) != p.shape[0]:
            raise ValidationError(
                f"expected {p.shape[0]} state names, got {len(names)}"
            )
        object.__setattr__(self, "state_names", tuple(names))

    @property
    def num_states(self) -> int:
        """Number of states in the chain."""
        return self.transition_matrix.shape[0]

    def steady_state(self) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi P = pi``."""
        p = self.transition_matrix
        n = p.shape[0]
        a = (p.T - np.eye(n)).copy()
        a[-1, :] = 1.0
        rhs = np.zeros(n)
        rhs[-1] = 1.0
        try:
            pi = np.linalg.solve(a, rhs)
        except np.linalg.LinAlgError as exc:
            raise ModelError(
                f"stationary distribution is not unique: {exc}"
            ) from exc
        return linalg._validated_distribution(pi)


def uniform_random_walk(weights: Sequence[float]) -> np.ndarray:
    """Normalize non-negative weights into a probability row vector."""
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0.0):
        raise ValidationError("weights must be non-negative")
    total = w.sum()
    if total <= 0.0:
        raise ValidationError("weights must not all be zero")
    return w / total
