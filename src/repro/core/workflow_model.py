"""Workflow definitions and their translation into CTMC models (Section 3).

A :class:`WorkflowDefinition` is the model-level view of one workflow type:
a set of execution states connected by transition probabilities.  Each
state either runs an activity, hosts one or more *parallel subworkflows*
(the orthogonal components of the state chart), or is a pure routing state
without load.  :func:`build_workflow_ctmc` translates a definition into an
:class:`~repro.core.ctmc.AbsorbingCTMC` plus the load matrix ``L^t``,
resolving subworkflows hierarchically exactly as Section 4.2.2 prescribes:
the residence time of a subworkflow state is the maximum of the children's
mean turnaround times, and its load entries are the sums of the children's
expected request counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal, Mapping

import numpy as np

from repro.core.ctmc import AbsorbingCTMC, remove_self_loops
from repro.core.model_types import ActivitySpec, ServerTypeIndex
from repro.exceptions import ModelError, ValidationError

#: Name used for the artificial absorbing state appended to every chain.
ABSORBING_STATE_NAME = "__ABSORBED__"


@dataclass(frozen=True)
class WorkflowState:
    """One execution state of a workflow type.

    Exactly one of the following forms:

    * **activity state** — ``activity`` is set; the state's residence time
      defaults to the activity's mean duration and its load to the
      activity's per-execution service requests;
    * **subworkflow state** — ``subworkflows`` is non-empty; residence time
      and load are derived from the (parallel) children;
    * **routing state** — neither is set; ``mean_duration`` is required and
      the state induces no load (e.g. a final bookkeeping state).

    ``mean_duration`` may also be supplied for an activity state to
    override the activity's default duration for this workflow type.
    """

    name: str
    activity: ActivitySpec | None = None
    subworkflows: tuple["WorkflowDefinition", ...] = field(default_factory=tuple)
    mean_duration: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("workflow state name must be non-empty")
        object.__setattr__(self, "subworkflows", tuple(self.subworkflows))
        if self.activity is not None and self.subworkflows:
            raise ValidationError(
                f"state {self.name}: cannot both run an activity and host "
                "subworkflows"
            )
        if (self.activity is None and not self.subworkflows
                and self.mean_duration is None):
            raise ValidationError(
                f"state {self.name}: a routing state needs mean_duration"
            )
        if self.mean_duration is not None and self.mean_duration <= 0.0:
            raise ValidationError(
                f"state {self.name}: mean_duration must be positive"
            )
        if self.subworkflows and self.mean_duration is not None:
            raise ValidationError(
                f"state {self.name}: the residence time of a subworkflow "
                "state is derived from its children and cannot be overridden"
            )

    @property
    def is_subworkflow_state(self) -> bool:
        """Whether this state invokes a nested workflow."""
        return bool(self.subworkflows)


@dataclass(frozen=True)
class WorkflowDefinition:
    """A workflow type: states plus transition probabilities.

    Parameters
    ----------
    name:
        Workflow type identifier.
    states:
        The execution states; names must be unique.
    transitions:
        Mapping from ``(source_name, target_name)`` to the probability that
        an instance leaving ``source`` enters ``target``.  Outgoing
        probabilities of every non-final state must sum to one.
    initial_state:
        Name of the single initial state.

    The single *final* state is detected as the unique state without
    outgoing transitions (the paper assumes one final state; multiple final
    states "could be easily connected to an additional termination state",
    which callers can do explicitly).
    """

    name: str
    states: tuple[WorkflowState, ...]
    transitions: Mapping[tuple[str, str], float]
    initial_state: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("workflow name must be non-empty")
        states = tuple(self.states)
        object.__setattr__(self, "states", states)
        if not states:
            raise ValidationError(f"workflow {self.name}: needs states")
        names = [state.name for state in states]
        if len(set(names)) != len(names):
            raise ValidationError(
                f"workflow {self.name}: duplicate state names"
            )
        transitions = dict(self.transitions)
        object.__setattr__(self, "transitions", transitions)
        known = set(names)
        for (source, target), probability in transitions.items():
            if source not in known or target not in known:
                raise ValidationError(
                    f"workflow {self.name}: transition {source}->{target} "
                    "references unknown states"
                )
            if not 0.0 < probability <= 1.0:
                raise ValidationError(
                    f"workflow {self.name}: transition {source}->{target} "
                    f"probability {probability} must lie in (0, 1]"
                )
        if self.initial_state not in known:
            raise ValidationError(
                f"workflow {self.name}: unknown initial state "
                f"{self.initial_state!r}"
            )
        self._validate_outgoing_probabilities()
        # Computing the final state validates its uniqueness.
        _ = self.final_state

    def _validate_outgoing_probabilities(self) -> None:
        for state in self.states:
            outgoing = [
                probability
                for (source, _), probability in self.transitions.items()
                if source == state.name
            ]
            if not outgoing:
                continue  # final state
            total = sum(outgoing)
            if abs(total - 1.0) > 1e-9:
                raise ValidationError(
                    f"workflow {self.name}: outgoing probabilities of "
                    f"{state.name} sum to {total}, expected 1"
                )

    @property
    def state_names(self) -> tuple[str, ...]:
        """Names of the states, in definition order."""
        return tuple(state.name for state in self.states)

    @property
    def final_state(self) -> str:
        """The unique state without outgoing transitions."""
        sources = {source for source, _ in self.transitions}
        finals = [name for name in self.state_names if name not in sources]
        if len(finals) != 1:
            raise ValidationError(
                f"workflow {self.name}: expected exactly one final state "
                f"(without outgoing transitions), found {finals}"
            )
        return finals[0]

    def state(self, name: str) -> WorkflowState:
        """Look up a state by name."""
        for candidate in self.states:
            if candidate.name == name:
                return candidate
        raise ValidationError(
            f"workflow {self.name}: no state named {name!r}"
        )

    def outgoing(self, name: str) -> dict[str, float]:
        """Outgoing transition probabilities of a state."""
        return {
            target: probability
            for (source, target), probability in self.transitions.items()
            if source == name
        }


@dataclass(frozen=True)
class WorkflowCTMC:
    """The CTMC translation of a workflow type (Figure 4).

    Attributes
    ----------
    definition:
        The source workflow definition.
    chain:
        Absorbing CTMC whose first ``n`` states are the workflow execution
        states (in definition order) and whose last state is the artificial
        absorbing state ``s_A``.
    load_matrix:
        ``k x (n + 1)`` matrix ``L^t``: expected service requests per visit
        of each state, one row per server type (absorbing column is zero).
        Subworkflow states carry the aggregated load of their children.
    server_types:
        The server type index fixing the row order of the load matrix.
    """

    definition: WorkflowDefinition
    chain: AbsorbingCTMC
    load_matrix: np.ndarray
    server_types: ServerTypeIndex

    @property
    def state_names(self) -> tuple[str, ...]:
        """Names of the chain's states, in matrix order."""
        return self.chain.state_names

    def turnaround_time(self, method: Literal["direct", "gauss_seidel"] = "direct") -> float:
        """Mean turnaround time ``R_t`` (Section 4.1)."""
        return self.chain.mean_turnaround_time(method=method)

    def requests_per_instance(
        self,
        method: Literal["fundamental", "series"] = "fundamental",
        confidence: float = 0.99,
    ) -> np.ndarray:
        """Expected service requests ``r_{x,t}`` per server type (§4.2)."""
        result = self.chain.expected_reward_until_absorption(
            self.load_matrix, method=method, confidence=confidence
        )
        return np.asarray(result, dtype=float)

    def expected_visits(self) -> dict[str, float]:
        """Expected visits per execution state (absorbing state excluded)."""
        visits = self.chain.expected_visits()
        return {
            name: float(visits[i])
            for i, name in enumerate(self.state_names)
            if i != self.chain.absorbing_state
        }

    def turnaround_quantile(self, probability: float) -> float:
        """Turnaround-time quantile (e.g. 0.95 for a 95th-percentile goal).

        Extension beyond the paper's mean-value analysis: the transient
        first-passage distribution of the CTMC gives percentile-style
        responsiveness statements.
        """
        return self.chain.turnaround_quantile(probability)


@dataclass(frozen=True)
class WorkflowAnalysis:
    """Turnaround time and per-instance load of one workflow type."""

    workflow_name: str
    turnaround_time: float
    requests_per_instance: np.ndarray
    server_types: ServerTypeIndex

    def requests_on(self, server_type: str) -> float:
        """Expected requests per instance on one server type."""
        return float(
            self.requests_per_instance[self.server_types.position(server_type)]
        )


def build_workflow_ctmc(
    definition: WorkflowDefinition,
    server_types: ServerTypeIndex,
) -> WorkflowCTMC:
    """Translate a workflow definition into its CTMC and load matrix.

    Subworkflows are resolved bottom-up (Section 4.2.2): every child is
    analyzed recursively; a subworkflow state's residence time becomes the
    maximum of the children's turnaround times (a conservative lower bound
    on the true residence time, as the paper notes) and its load the sum of
    the children's expected requests.  Designer-level self-loops are folded
    into residence times via :func:`repro.core.ctmc.remove_self_loops`.
    """
    n = len(definition.states)
    state_positions = {
        state.name: i for i, state in enumerate(definition.states)
    }
    absorbing = n

    probabilities = np.zeros((n + 1, n + 1))
    for (source, target), probability in definition.transitions.items():
        probabilities[state_positions[source], state_positions[target]] = (
            probability
        )
    probabilities[state_positions[definition.final_state], absorbing] = 1.0
    probabilities[absorbing, absorbing] = 1.0

    residence_times = np.zeros(n + 1)
    load_matrix = np.zeros((len(server_types), n + 1))
    for i, state in enumerate(definition.states):
        residence_times[i], load_matrix[:, i] = _state_parameters(
            state, server_types
        )

    probabilities, residence_times = remove_self_loops(
        probabilities, residence_times, absorbing
    )
    chain = AbsorbingCTMC(
        jump_probabilities=probabilities,
        residence_times=residence_times,
        initial_state=state_positions[definition.initial_state],
        state_names=definition.state_names + (ABSORBING_STATE_NAME,),
    )
    return WorkflowCTMC(
        definition=definition,
        chain=chain,
        load_matrix=load_matrix,
        server_types=server_types,
    )


def _state_parameters(
    state: WorkflowState, server_types: ServerTypeIndex
) -> tuple[float, np.ndarray]:
    """Residence time and load column of one workflow state."""
    load = np.zeros(len(server_types))
    if state.is_subworkflow_state:
        turnarounds = []
        for child in state.subworkflows:
            child_model = build_workflow_ctmc(child, server_types)
            turnarounds.append(child_model.turnaround_time())
            load += child_model.requests_per_instance()
        return max(turnarounds), load

    if state.activity is not None:
        duration = (
            state.mean_duration
            if state.mean_duration is not None
            else state.activity.mean_duration
        )
        for name in server_types.names:
            load[server_types.position(name)] = state.activity.load_on(name)
        unknown = set(state.activity.loads) - set(server_types.names)
        if unknown:
            raise ModelError(
                f"activity {state.activity.name} loads unknown server "
                f"types {sorted(unknown)}"
            )
        return duration, load

    assert state.mean_duration is not None  # enforced in __post_init__
    return state.mean_duration, load


def analyze_workflow(
    definition: WorkflowDefinition,
    server_types: ServerTypeIndex,
    method: Literal["fundamental", "series"] = "fundamental",
    confidence: float = 0.99,
) -> WorkflowAnalysis:
    """Convenience wrapper: turnaround time and per-instance requests."""
    model = build_workflow_ctmc(definition, server_types)
    return WorkflowAnalysis(
        workflow_name=definition.name,
        turnaround_time=model.turnaround_time(),
        requests_per_instance=model.requests_per_instance(
            method=method, confidence=confidence
        ),
        server_types=server_types,
    )


def workflow_from_matrices(
    name: str,
    state_names: Iterable[str],
    transition_probabilities: np.ndarray,
    residence_times: Iterable[float],
    initial_state: str,
    activities: Mapping[str, ActivitySpec] | None = None,
) -> WorkflowDefinition:
    """Build a flat workflow definition from matrix-form inputs.

    Convenience for calibration (Section 7.1) and tests: ``P`` rows of the
    final state must be all zero (the absorbing transition is added by the
    CTMC translation).  ``activities`` optionally attaches an activity to
    the like-named states; other states become routing states with the
    given residence times.
    """
    names = tuple(state_names)
    p = np.asarray(transition_probabilities, dtype=float)
    h = tuple(float(value) for value in residence_times)
    if p.shape != (len(names), len(names)):
        raise ValidationError(
            f"transition matrix shape {p.shape} does not match "
            f"{len(names)} states"
        )
    if len(h) != len(names):
        raise ValidationError("need one residence time per state")
    activities = dict(activities or {})
    states = []
    for i, state_name in enumerate(names):
        activity = activities.get(state_name)
        states.append(
            WorkflowState(
                name=state_name, activity=activity, mean_duration=h[i]
            )
        )
    transitions = {
        (names[i], names[j]): float(p[i, j])
        for i in range(len(names))
        for j in range(len(names))
        if p[i, j] > 0.0
    }
    return WorkflowDefinition(
        name=name,
        states=tuple(states),
        transitions=transitions,
        initial_state=initial_state,
    )
