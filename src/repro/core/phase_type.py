"""Phase-type expansion of non-exponential failure/repair times (§5.1).

The paper's availability CTMC assumes exponentially distributed times to
failure and repair but notes that "non-exponential failure or repair rates
(e.g., anticipated periodic downtimes for software maintenance) can be
accommodated as well, by refining the corresponding state into a
(reasonably small) set of exponential states".  This module implements that
refinement for repair times: a repair duration given as a phase-type
distribution (Erlang-k for nearly deterministic maintenance windows,
hyperexponential for mixed quick-restart/long-recovery behaviour) is
expanded into exponential stages inside a per-type availability CTMC.

The expansion tracks one repair in progress at a time (single repair crew
per server type), which is the natural reading of a "maintenance window";
the state space is ``{all up} + {(j running, repair phase p)}`` and stays
small.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.ctmc import ErgodicCTMC
from repro.core.model_types import ServerTypeSpec
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class PhaseTypeDistribution:
    """A (continuous) phase-type distribution ``PH(alpha, S)``.

    ``initial_probabilities`` is the row vector ``alpha`` over transient
    phases; ``subgenerator`` is the matrix ``S`` of phase transition rates
    (absorption rates are the row deficits ``-S 1``).
    """

    initial_probabilities: np.ndarray
    subgenerator: np.ndarray

    def __post_init__(self) -> None:
        alpha = np.asarray(self.initial_probabilities, dtype=float)
        s = np.asarray(self.subgenerator, dtype=float)
        if alpha.ndim != 1:
            raise ValidationError("initial probabilities must be a vector")
        k = alpha.shape[0]
        if s.shape != (k, k):
            raise ValidationError(
                f"subgenerator must be {k}x{k}, got {s.shape}"
            )
        if np.any(alpha < 0.0) or abs(alpha.sum() - 1.0) > 1e-9:
            raise ValidationError(
                "initial probabilities must be a distribution"
            )
        off_diagonal = s - np.diag(np.diag(s))
        if np.any(off_diagonal < 0.0):
            raise ValidationError(
                "subgenerator off-diagonal rates must be >= 0"
            )
        exit_rates = -s.sum(axis=1)
        if np.any(np.diag(s) >= 0.0):
            raise ValidationError("subgenerator diagonal must be negative")
        if np.any(exit_rates < -1e-9):
            raise ValidationError("subgenerator row sums must be <= 0")
        object.__setattr__(self, "initial_probabilities", alpha)
        object.__setattr__(self, "subgenerator", s)

    @property
    def num_phases(self) -> int:
        """Number of transient phases."""
        return self.initial_probabilities.shape[0]

    @cached_property
    def exit_rates(self) -> np.ndarray:
        """Absorption (completion) rate out of each phase."""
        return -self.subgenerator.sum(axis=1)

    def moment(self, order: int) -> float:
        """Raw moment ``E[T^n] = n! * alpha (-S)^-n 1``."""
        if order < 1:
            raise ValidationError("moment order must be >= 1")
        inverse = np.linalg.inv(-self.subgenerator)
        power = np.linalg.matrix_power(inverse, order)
        ones = np.ones(self.num_phases)
        return float(
            math.factorial(order) * self.initial_probabilities @ power @ ones
        )

    @property
    def mean(self) -> float:
        """Mean ``E[T]`` (first raw moment)."""
        return self.moment(1)

    @property
    def variance(self) -> float:
        """Variance ``E[T^2] - E[T]^2``."""
        return self.moment(2) - self.mean**2

    @property
    def squared_coefficient_of_variation(self) -> float:
        """``Var / mean^2`` — 1 for exponential, ``1/k`` for Erlang-k."""
        return self.variance / self.mean**2


def exponential_phase(rate: float) -> PhaseTypeDistribution:
    """Exponential distribution as a one-phase PH (sanity baseline)."""
    if rate <= 0.0:
        raise ValidationError("rate must be positive")
    return PhaseTypeDistribution(
        initial_probabilities=np.array([1.0]),
        subgenerator=np.array([[-rate]]),
    )


def erlang_phase(num_stages: int, mean: float) -> PhaseTypeDistribution:
    """Erlang-k distribution with the given mean.

    With ``k`` stages of rate ``k / mean`` each; approaches a deterministic
    duration as ``k`` grows (squared coefficient of variation ``1/k``) —
    the natural model for planned maintenance windows.
    """
    if num_stages < 1:
        raise ValidationError("Erlang needs at least one stage")
    if mean <= 0.0:
        raise ValidationError("mean must be positive")
    rate = num_stages / mean
    alpha = np.zeros(num_stages)
    alpha[0] = 1.0
    s = np.zeros((num_stages, num_stages))
    for i in range(num_stages):
        s[i, i] = -rate
        if i + 1 < num_stages:
            s[i, i + 1] = rate
    return PhaseTypeDistribution(alpha, s)


def hyperexponential_phase(
    probabilities: np.ndarray, rates: np.ndarray
) -> PhaseTypeDistribution:
    """Hyperexponential mixture of exponentials (SCV > 1).

    Models repairs that are usually a quick restart but occasionally a long
    recovery.
    """
    p = np.asarray(probabilities, dtype=float)
    r = np.asarray(rates, dtype=float)
    if p.shape != r.shape or p.ndim != 1:
        raise ValidationError("probabilities and rates must match in shape")
    if np.any(r <= 0.0):
        raise ValidationError("rates must be positive")
    return PhaseTypeDistribution(p, np.diag(-r))


@dataclass(frozen=True)
class PhaseTypeRepairPool:
    """Availability chain of one server type with phase-type repairs.

    A single repair crew works on at most one failed replica at a time;
    the repair duration follows ``repair_distribution``.  States:

    * ``ALL_UP``: all ``count`` replicas running, no repair in progress;
    * ``(j, p)``: ``j`` replicas running (``0 <= j < count``), the crew is
      repairing one replica and the repair is in phase ``p``.

    Failures of running replicas occur at rate ``j * failure_rate`` and do
    not disturb the ongoing repair.
    """

    spec: ServerTypeSpec
    count: int
    repair_distribution: PhaseTypeDistribution

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValidationError("need at least one replica")
        if self.spec.failure_rate <= 0.0:
            raise ValidationError(
                "phase-type expansion needs a positive failure rate"
            )

    def _index(self, running: int, phase: int) -> int:
        """Dense index of state ``(running, phase)``; ALL_UP is last."""
        return running * self.repair_distribution.num_phases + phase

    @property
    def num_states(self) -> int:
        """Dense size of the ``(running, phase)`` space plus ALL_UP."""
        return self.count * self.repair_distribution.num_phases + 1

    def generator_matrix(self) -> np.ndarray:
        """Generator over ``(running, phase)`` states plus ALL_UP."""
        distribution = self.repair_distribution
        k = distribution.num_phases
        all_up = self.num_states - 1
        q = np.zeros((self.num_states, self.num_states))
        alpha = distribution.initial_probabilities
        s = distribution.subgenerator
        exit_rates = distribution.exit_rates
        failure_rate = self.spec.failure_rate

        # From ALL_UP: any of `count` replicas fails; a repair starts in a
        # phase drawn from alpha.
        for phase in range(k):
            q[all_up, self._index(self.count - 1, phase)] = (
                self.count * failure_rate * alpha[phase]
            )

        for running in range(self.count):
            for phase in range(k):
                here = self._index(running, phase)
                # Another running replica fails; the crew keeps its phase.
                if running >= 1:
                    q[here, self._index(running - 1, phase)] += (
                        running * failure_rate
                    )
                # Repair phase transitions.
                for next_phase in range(k):
                    if next_phase != phase and s[phase, next_phase] > 0.0:
                        q[here, self._index(running, next_phase)] += (
                            s[phase, next_phase]
                        )
                # Repair completion: one more replica runs; if others are
                # still down the crew immediately starts the next repair.
                completion = exit_rates[phase]
                if completion > 0.0:
                    if running + 1 == self.count:
                        q[here, all_up] += completion
                    else:
                        for next_phase in range(k):
                            q[
                                here, self._index(running + 1, next_phase)
                            ] += completion * alpha[next_phase]
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        return q

    def chain(self) -> ErgodicCTMC:
        """The expanded pool CTMC with named ``(up, phase)`` states."""
        names = [
            f"(up={running},phase={phase})"
            for running in range(self.count)
            for phase in range(self.repair_distribution.num_phases)
        ]
        names.append("ALL_UP")
        return ErgodicCTMC(self.generator_matrix(), state_names=tuple(names))

    @cached_property
    def _steady_state(self) -> np.ndarray:
        return self.chain().steady_state()

    @property
    def unavailability(self) -> float:
        """Probability that zero replicas of this type are running."""
        pi = self._steady_state
        k = self.repair_distribution.num_phases
        return float(sum(pi[self._index(0, phase)] for phase in range(k)))

    @property
    def availability(self) -> float:
        """Complement of :attr:`unavailability`."""
        return 1.0 - self.unavailability

    def running_distribution(self) -> np.ndarray:
        """Marginal distribution of the number of running replicas."""
        pi = self._steady_state
        k = self.repair_distribution.num_phases
        marginal = np.zeros(self.count + 1)
        for running in range(self.count):
            marginal[running] = sum(
                pi[self._index(running, phase)] for phase in range(k)
            )
        marginal[self.count] = pi[-1]
        return marginal
