"""Linear-algebra routines used by the Markov-chain analyses.

The paper solves two kinds of linear systems:

* first-passage-time equations of an absorbing CTMC (Section 4.1), and
* global-balance equations ``pi Q = 0`` with the normalization
  ``sum(pi) = 1`` of an ergodic CTMC (Section 5.2),

and remarks that both "can be easily solved using standard methods such as
the Gauss-Seidel algorithm".  This module provides the Gauss-Seidel solver
for paper fidelity plus direct (LU-based) solvers as the numerically robust
default; the test suite cross-checks the two.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro import obs
from repro.exceptions import ConvergenceError, ValidationError

SolveMethod = Literal["direct", "gauss_seidel"]

#: Default convergence tolerance for iterative solvers.
DEFAULT_TOLERANCE = 1e-12

#: Default iteration cap for iterative solvers.
DEFAULT_MAX_ITERATIONS = 100_000


try:  # scipy is a hard dependency, but keep a pure-numpy fallback
    from scipy.linalg import solve_triangular as _solve_triangular
except ImportError:  # pragma: no cover - scipy ships with the package
    _solve_triangular = None


def _as_square_matrix(a: np.ndarray, name: str = "matrix") -> np.ndarray:
    a = np.asarray(a, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValidationError(f"{name} must be square, got shape {a.shape}")
    return a


def _validate_max_iterations(max_iterations: int) -> None:
    if max_iterations < 1:
        raise ValidationError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )


def _forward_substitution(lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``lower @ x = rhs`` for a lower-triangular ``lower``.

    One Gauss-Seidel sweep is exactly this triangular solve with
    ``lower = D + L`` and ``rhs = b - U x_old``; routing it through
    LAPACK turns the pure-Python inner loop into one vectorized kernel.
    """
    if _solve_triangular is not None:
        return _solve_triangular(lower, rhs, lower=True,
                                 check_finite=False)
    x = np.zeros_like(rhs)  # pragma: no cover - scipy-less fallback
    for i in range(rhs.shape[0]):  # pragma: no cover
        x[i] = (rhs[i] - lower[i, :i] @ x[:i]) / lower[i, i]
    return x  # pragma: no cover


def gauss_seidel(
    a: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> np.ndarray:
    """Solve ``a @ x = b`` by Gauss-Seidel iteration.

    Convergence is guaranteed for (irreducibly) diagonally dominant
    matrices, which covers the first-passage-time systems arising from the
    workflow CTMCs.  Raises :class:`ConvergenceError` if the residual does
    not fall below ``tolerance`` within ``max_iterations`` sweeps.

    Each sweep is evaluated in matrix form, ``(D + L) x_new = b - U
    x_old``, so the per-element update loop becomes one matrix-vector
    product plus one LAPACK triangular solve.
    """
    a = _as_square_matrix(a, "coefficient matrix")
    _validate_max_iterations(max_iterations)
    b = np.asarray(b, dtype=float)
    n = a.shape[0]
    if b.shape != (n,):
        raise ValidationError(
            f"right-hand side must have shape ({n},), got {b.shape}"
        )
    diagonal = np.diag(a)
    if np.any(diagonal == 0.0):
        raise ValidationError("Gauss-Seidel requires a zero-free diagonal")

    x = np.zeros(n) if x0 is None else np.array(x0, dtype=float)
    if x.shape != (n,):
        raise ValidationError(f"x0 must have shape ({n},), got {x.shape}")

    lower = np.tril(a)
    upper = np.triu(a, k=1)
    b_scale = max(float(np.linalg.norm(b, ord=np.inf)), 1.0)
    with obs.span("linalg.gauss_seidel", size=n) as span:
        for iteration in range(1, max_iterations + 1):
            x = _forward_substitution(lower, b - upper @ x)
            residual = float(np.linalg.norm(a @ x - b, ord=np.inf))
            if residual <= tolerance * b_scale:
                span.set("iterations", iteration)
                span.set("residual", residual)
                obs.count("linalg.gauss_seidel.solves")
                obs.count("linalg.gauss_seidel.sweeps", iteration)
                obs.observe("linalg.gauss_seidel.iterations", iteration)
                return x
        obs.count("linalg.gauss_seidel.failures")
        obs.count("linalg.gauss_seidel.sweeps", max_iterations)
    raise ConvergenceError(
        f"Gauss-Seidel did not converge within {max_iterations} iterations "
        f"(residual {residual:.3e})",
        iterations=max_iterations,
        residual=residual,
    )


def solve_linear(
    a: np.ndarray,
    b: np.ndarray,
    method: SolveMethod = "direct",
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> np.ndarray:
    """Solve ``a @ x = b`` with the selected method.

    ``direct`` uses LAPACK via :func:`numpy.linalg.solve`;
    ``gauss_seidel`` is the iterative scheme named in the paper.
    """
    if method == "direct":
        a = _as_square_matrix(a, "coefficient matrix")
        try:
            with obs.span("linalg.direct_solve", size=a.shape[0]):
                solution = np.linalg.solve(a, np.asarray(b, dtype=float))
            obs.count("linalg.direct.solves")
            return solution
        except np.linalg.LinAlgError as exc:
            raise ValidationError(f"singular linear system: {exc}") from exc
    if method == "gauss_seidel":
        return gauss_seidel(a, b, tolerance=tolerance,
                            max_iterations=max_iterations)
    raise ValidationError(f"unknown solve method: {method!r}")


def validate_generator_matrix(q: np.ndarray) -> np.ndarray:
    """Validate that ``q`` is an infinitesimal generator matrix.

    Requires non-negative off-diagonal rates and rows summing to zero
    (within floating-point tolerance).  Returns the validated array.
    """
    q = _as_square_matrix(q, "generator matrix")
    off_diagonal = q - np.diag(np.diag(q))
    if np.any(off_diagonal < -1e-12):
        raise ValidationError("generator matrix has negative off-diagonal rates")
    row_sums = q.sum(axis=1)
    scale = max(float(np.abs(q).max()), 1.0)
    if np.any(np.abs(row_sums) > 1e-9 * scale):
        worst = int(np.argmax(np.abs(row_sums)))
        raise ValidationError(
            f"generator matrix rows must sum to zero; row {worst} sums to "
            f"{row_sums[worst]:.3e}"
        )
    return q


def steady_state_distribution(
    q: np.ndarray,
    method: SolveMethod = "direct",
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> np.ndarray:
    """Solve ``pi Q = 0`` with ``sum(pi) = 1`` for an ergodic CTMC.

    ``direct`` replaces one balance equation by the normalization condition
    and solves the resulting non-singular system.  ``gauss_seidel`` performs
    the classic CTMC sweep ``pi_j <- sum_{i != j} pi_i q_ij / (-q_jj)``
    followed by renormalization, which is the scheme the paper refers to.
    """
    q = validate_generator_matrix(q)
    n = q.shape[0]
    if n == 1:
        return np.ones(1)

    if method == "direct":
        # Transpose the balance equations (Q^T pi^T = 0) and replace the
        # last equation with the normalization sum(pi) = 1.
        a = q.T.copy()
        a[-1, :] = 1.0
        rhs = np.zeros(n)
        rhs[-1] = 1.0
        try:
            with obs.span("linalg.steady_state", method="direct", size=n):
                pi = np.linalg.solve(a, rhs)
            obs.count("linalg.direct.solves")
        except np.linalg.LinAlgError as exc:
            raise ValidationError(
                f"steady state is not unique (chain not ergodic?): {exc}"
            ) from exc
        return _validated_distribution(pi)

    if method == "gauss_seidel":
        _validate_max_iterations(max_iterations)
        departure_rates = -np.diag(q)
        if np.any(departure_rates <= 0.0):
            raise ValidationError(
                "Gauss-Seidel steady state requires every state to have a "
                "positive departure rate"
            )
        # One sweep of pi_j <- inflow_j / (-q_jj) with immediate reuse of
        # updated entries is Gauss-Seidel on the balance system
        # Q^T pi = 0: (D + L) pi_new = -U pi_old with D + L = tril(Q^T).
        balance = q.T
        lower = np.tril(balance)
        upper = np.triu(balance, k=1)
        pi = np.full(n, 1.0 / n)
        with obs.span(
            "linalg.steady_state", method="gauss_seidel", size=n
        ) as span:
            for sweep in range(1, max_iterations + 1):
                previous = pi
                pi = _forward_substitution(lower, -(upper @ pi))
                total = pi.sum()
                if total <= 0.0:
                    raise ConvergenceError(
                        "Gauss-Seidel steady-state iteration collapsed to "
                        "zero"
                    )
                pi /= total
                if float(np.abs(pi - previous).max()) <= tolerance:
                    span.set("iterations", sweep)
                    obs.count("linalg.gauss_seidel.solves")
                    obs.count("linalg.gauss_seidel.sweeps", sweep)
                    obs.observe("linalg.gauss_seidel.iterations", sweep)
                    return _validated_distribution(pi)
            obs.count("linalg.gauss_seidel.failures")
            obs.count("linalg.gauss_seidel.sweeps", max_iterations)
        raise ConvergenceError(
            f"steady-state Gauss-Seidel did not converge within "
            f"{max_iterations} iterations",
            iterations=max_iterations,
        )

    raise ValidationError(f"unknown solve method: {method!r}")


def steady_state_distribution_sparse(rows, columns, rates, num_states):
    """Steady state of a CTMC given as sparse transition triplets.

    ``rows[i] -> columns[i]`` with rate ``rates[i]`` (off-diagonal
    entries only; diagonals are derived).  Solves the balance equations
    with scipy's sparse LU — the joint availability CTMC of a heavily
    replicated system has ``prod(Y_x + 1)`` states but only
    ``O(k)`` transitions per state, so the sparse path scales where the
    dense solver would exhaust memory.
    """
    from scipy import sparse
    from scipy.sparse.linalg import spsolve

    rows = np.asarray(rows, dtype=np.int64)
    columns = np.asarray(columns, dtype=np.int64)
    rates = np.asarray(rates, dtype=float)
    if not (rows.shape == columns.shape == rates.shape):
        raise ValidationError("triplet arrays must have equal length")
    if np.any(rates < 0.0):
        raise ValidationError("transition rates must be >= 0")
    if rows.size and (rows.max() >= num_states or columns.max() >= num_states):
        raise ValidationError("state index out of range")
    if np.any(rows == columns):
        raise ValidationError("triplets must be off-diagonal")

    departure = np.zeros(num_states)
    np.add.at(departure, rows, rates)

    # Build A = Q^T with the last balance equation replaced by the
    # normalization sum(pi) = 1.
    keep = columns != num_states - 1
    a = sparse.coo_matrix(
        (
            np.concatenate(
                [rates[keep], -departure[:-1],
                 np.ones(num_states)]
            ),
            (
                np.concatenate(
                    [columns[keep], np.arange(num_states - 1),
                     np.full(num_states, num_states - 1)]
                ),
                np.concatenate(
                    [rows[keep], np.arange(num_states - 1),
                     np.arange(num_states)]
                ),
            ),
        ),
        shape=(num_states, num_states),
    ).tocsc()
    rhs = np.zeros(num_states)
    rhs[-1] = 1.0
    with obs.span(
        "linalg.steady_state", method="sparse", size=num_states
    ):
        pi = spsolve(a, rhs)
    obs.count("linalg.sparse.solves")
    return _validated_distribution(np.asarray(pi, dtype=float))


def _validated_distribution(pi: np.ndarray) -> np.ndarray:
    """Clip tiny negative round-off and renormalize a probability vector."""
    if np.any(pi < -1e-9):
        raise ValidationError(
            "steady-state solution has significantly negative entries; "
            "the chain is probably not ergodic"
        )
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if not np.isfinite(total) or total <= 0.0:
        raise ValidationError("steady-state solution does not normalize")
    return pi / total


def validate_stochastic_matrix(p: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that ``p`` is a row-stochastic matrix and return it."""
    p = _as_square_matrix(p, name)
    if np.any(p < -1e-12) or np.any(p > 1.0 + 1e-12):
        raise ValidationError(f"{name} entries must lie in [0, 1]")
    row_sums = p.sum(axis=1)
    if np.any(np.abs(row_sums - 1.0) > 1e-9):
        worst = int(np.argmax(np.abs(row_sums - 1.0)))
        raise ValidationError(
            f"{name} rows must sum to one; row {worst} sums to "
            f"{row_sums[worst]:.12f}"
        )
    return np.clip(p, 0.0, 1.0)
