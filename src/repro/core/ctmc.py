"""Continuous-time Markov chains (CTMC).

This module implements the stochastic core of the paper:

* :class:`AbsorbingCTMC` models the control flow of one workflow instance
  (Section 3.2): states are workflow execution states, the jump
  probabilities come from the designer or from audit trails, and the mean
  residence times are the activity turnaround times.  The analysis methods
  cover the paper's Section 4.1 (first-passage/turnaround times, via the
  linear system solved with Gauss-Seidel or directly) and Section 4.2.1
  (expected service requests until absorption, via uniformization and the
  taboo-probability recursion truncated at ``z_max``, cross-checkable
  against the exact embedded-chain fundamental matrix).
* :class:`ErgodicCTMC` models the availability behaviour of the replicated
  server landscape (Section 5): it wraps an infinitesimal generator matrix
  and exposes the steady-state analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro import obs
from repro.core import linalg
from repro.core.dtmc import AbsorbingDTMC
from repro.exceptions import ModelError, ValidationError

VisitMethod = Literal["fundamental", "series"]

#: Default confidence level of the paper's ``z_max`` truncation rule
#: ("with very high probability, say 99 percent", Section 4.2.1).
DEFAULT_ZMAX_CONFIDENCE = 0.99

#: Hard cap on the truncation depth so that a badly conditioned chain
#: cannot send the recursion into an unbounded loop.
MAX_UNIFORMIZATION_STEPS = 1_000_000


@dataclass(frozen=True)
class Uniformization:
    """Result of uniformizing an absorbing CTMC (Section 4.2.1).

    Attributes
    ----------
    rate:
        The uniformization rate ``v = max_a v_a`` (maximum departure rate).
    transition_matrix:
        One-step transition matrix ``p_bar`` of the uniformized chain,
        including the artificial self-loops ``1 - v_a / v``.
    """

    rate: float
    transition_matrix: np.ndarray


@dataclass(frozen=True)
class AbsorbingCTMC:
    """An absorbing continuous-time Markov chain ``(P, H)``.

    Parameters
    ----------
    jump_probabilities:
        Row-stochastic matrix ``P`` of transition probabilities between
        states; the absorbing state must be the unique state whose row is a
        self-loop (``P[A, A] = 1``).
    residence_times:
        Mean residence time ``H_i`` of every state.  Entries must be
        positive for transient states; the absorbing state's entry is
        ignored (conceptually infinite).
    initial_state:
        Index of the single initial state ``s_0`` (default 0).
    state_names:
        Optional labels; defaults to ``s0 .. s{n-1}``.
    """

    jump_probabilities: np.ndarray
    residence_times: np.ndarray
    initial_state: int = 0
    state_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        p = linalg.validate_stochastic_matrix(
            np.asarray(self.jump_probabilities, dtype=float),
            "jump probability matrix",
        )
        h = np.asarray(self.residence_times, dtype=float)
        n = p.shape[0]
        if h.shape != (n,):
            raise ValidationError(
                f"residence times must have shape ({n},), got {h.shape}"
            )
        object.__setattr__(self, "jump_probabilities", p)
        object.__setattr__(self, "residence_times", h)
        names = self.state_names or tuple(f"s{i}" for i in range(n))
        if len(names) != n:
            raise ValidationError(f"expected {n} state names, got {len(names)}")
        object.__setattr__(self, "state_names", tuple(names))

        embedded = AbsorbingDTMC(p, state_names=self.state_names)
        if len(embedded.absorbing_states) != 1:
            raise ModelError(
                "workflow CTMC must have exactly one absorbing state, found "
                f"{len(embedded.absorbing_states)}"
            )
        object.__setattr__(self, "_embedded", embedded)
        if self.initial_state not in embedded.transient_states:
            raise ValidationError(
                f"initial state {self.initial_state} must be transient"
            )
        transient = list(embedded.transient_states)
        if np.any(h[transient] <= 0.0) or not np.all(np.isfinite(h[transient])):
            raise ValidationError(
                "residence times of transient states must be positive and "
                "finite"
            )
        # A self-transition of a CTMC state is unobservable: the residence
        # time already models "staying".  Rejecting such loops keeps the
        # series algorithm (which skips b == a, Section 4.2.1) consistent
        # with the exact embedded-chain analysis.  Use
        # :func:`remove_self_loops` to fold designer-level retry loops in.
        loopy = [self.state_names[i] for i in transient if p[i, i] > 0.0]
        if loopy:
            raise ValidationError(
                "transient states must not have self-transitions "
                f"(found on {loopy}); apply remove_self_loops() first"
            )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of states including the absorbing state."""
        return self.jump_probabilities.shape[0]

    @property
    def absorbing_state(self) -> int:
        """Index of the unique absorbing state ``s_A``."""
        return self._embedded.absorbing_states[0]

    @property
    def transient_states(self) -> tuple[int, ...]:
        """Indices of the workflow execution states (non-absorbing)."""
        return self._embedded.transient_states

    @property
    def embedded_chain(self) -> AbsorbingDTMC:
        """The embedded jump chain (self-loop-free transition structure)."""
        return self._embedded

    def departure_rates(self) -> np.ndarray:
        """Rates ``v_i = 1 / H_i`` (0 for the absorbing state)."""
        rates = np.zeros(self.num_states)
        for i in self.transient_states:
            rates[i] = 1.0 / self.residence_times[i]
        return rates

    def transition_rates(self) -> np.ndarray:
        """Rate matrix ``q_ij = v_i * p_ij`` for ``i != j`` (diagonal zero)."""
        v = self.departure_rates()
        q = v[:, None] * self.jump_probabilities
        np.fill_diagonal(q, 0.0)
        return q

    def generator_matrix(self) -> np.ndarray:
        """Infinitesimal generator including the absorbing state row."""
        q = self.transition_rates()
        np.fill_diagonal(q, -q.sum(axis=1))
        return q

    # ------------------------------------------------------------------
    # Section 4.1: first-passage times / turnaround time
    # ------------------------------------------------------------------
    def first_passage_times(
        self, method: linalg.SolveMethod = "direct"
    ) -> np.ndarray:
        """Mean first-passage times ``m_iA`` into the absorbing state.

        Solves the paper's linear system (Section 4.1)::

            -v_i m_iA + sum_{j != A, j != i} q_ij m_jA = -1   for i != A

        Returns a full-length vector with 0 at the absorbing state.
        """
        transient = list(self.transient_states)
        v = self.departure_rates()
        q = self.transition_rates()
        k = len(transient)
        a = np.zeros((k, k))
        for row, i in enumerate(transient):
            a[row, row] = -v[i]
            for column, j in enumerate(transient):
                if j != i:
                    a[row, column] += q[i, j]
        b = np.full(k, -1.0)
        with obs.span("ctmc.first_passage", size=k, method=method):
            m = linalg.solve_linear(a, b, method=method)
        result = np.zeros(self.num_states)
        for row, i in enumerate(transient):
            result[i] = m[row]
        return result

    def mean_turnaround_time(
        self, method: linalg.SolveMethod = "direct"
    ) -> float:
        """Mean turnaround time ``R_t = m_{0A}`` of a workflow instance."""
        return float(self.first_passage_times(method=method)[self.initial_state])

    # ------------------------------------------------------------------
    # Section 4.2.1: uniformization and expected visits
    # ------------------------------------------------------------------
    def uniformize(self) -> Uniformization:
        """Transform into a uniformized chain with common rate ``v``.

        Off-diagonal entries become ``(v_a / v) p_ab``; the diagonal gains
        the compensating self-loop ``1 - v_a / v``.  The absorbing state
        keeps its self-loop of probability one.
        """
        v_states = self.departure_rates()
        rate = float(v_states.max())
        if rate <= 0.0:
            raise ModelError("cannot uniformize: no positive departure rate")
        n = self.num_states
        p_bar = np.zeros((n, n))
        for a in range(n):
            if a == self.absorbing_state:
                p_bar[a, a] = 1.0
                continue
            scale = v_states[a] / rate
            p_bar[a] = scale * self.jump_probabilities[a]
            p_bar[a, a] = 1.0 - scale + scale * self.jump_probabilities[a, a]
        return Uniformization(rate=rate, transition_matrix=p_bar)

    def taboo_probabilities(self, num_steps: int) -> np.ndarray:
        """Taboo probabilities ``p_bar_{0a}(z)`` for ``z = 0 .. num_steps``.

        ``result[z, a]`` is the probability that the uniformized chain is in
        state ``a`` after ``z`` steps *without having visited the absorbing
        state*, starting from the initial state (Chapman-Kolmogorov
        recursion of Section 4.2.1).  The absorbing column stays zero.
        """
        if num_steps < 0:
            raise ValidationError("num_steps must be non-negative")
        p_bar = self.uniformize().transition_matrix.copy()
        # Forbid the taboo state: zero its column (and row, for safety).
        taboo = self.absorbing_state
        p_bar[:, taboo] = 0.0
        p_bar[taboo, :] = 0.0
        result = np.zeros((num_steps + 1, self.num_states))
        result[0, self.initial_state] = 1.0
        for z in range(1, num_steps + 1):
            result[z] = result[z - 1] @ p_bar
        obs.count("ctmc.uniformization.steps", num_steps)
        return result

    def z_max(
        self,
        confidence: float = DEFAULT_ZMAX_CONFIDENCE,
        hard_limit: int = MAX_UNIFORMIZATION_STEPS,
    ) -> int:
        """Truncation depth of the paper's series (Section 4.2.1).

        The smallest number of uniformized steps after which the chain has
        been absorbed with probability at least ``confidence`` — "the number
        of state transitions that will not be exceeded by the workflow
        within its expected runtime with very high probability".
        """
        if not 0.0 < confidence < 1.0:
            raise ValidationError("confidence must lie strictly in (0, 1)")
        p_bar = self.uniformize().transition_matrix.copy()
        taboo = self.absorbing_state
        p_bar[:, taboo] = 0.0
        p_bar[taboo, :] = 0.0
        row = np.zeros(self.num_states)
        row[self.initial_state] = 1.0
        surviving = 1.0
        z = 0
        with obs.span("ctmc.z_max", confidence=confidence) as span:
            while surviving > 1.0 - confidence:
                row = row @ p_bar
                surviving = float(row.sum())
                z += 1
                if z >= hard_limit:
                    obs.count("ctmc.uniformization.steps", z)
                    raise ModelError(
                        f"z_max exceeded the hard limit of {hard_limit} "
                        "steps; the chain absorbs too slowly"
                    )
            span.set("depth", z)
        obs.count("ctmc.uniformization.steps", z)
        obs.observe("ctmc.z_max.depth", z)
        return z

    def expected_visits(
        self,
        method: VisitMethod = "fundamental",
        confidence: float = DEFAULT_ZMAX_CONFIDENCE,
        num_steps: int | None = None,
    ) -> np.ndarray:
        """Expected number of visits to each state before absorption.

        ``fundamental`` computes the exact value from the embedded jump
        chain's fundamental matrix.  ``series`` follows the paper's
        algorithm: uniformize, accumulate expected *entries* into each state
        over taboo-probability steps, and truncate at ``z_max`` (either
        given via ``num_steps`` or derived from ``confidence``).  Both count
        the initial entry into ``s_0``, so for a reward matrix ``L`` the
        expected reward until absorption is ``L @ visits``.
        """
        if method == "fundamental":
            return self._embedded.expected_visits(self.initial_state)
        if method == "series":
            return self._expected_visits_series(confidence, num_steps)
        raise ValidationError(f"unknown visit method: {method!r}")

    def _expected_visits_series(
        self, confidence: float, num_steps: int | None
    ) -> np.ndarray:
        """Paper's truncated-series visit counts (Section 4.2.1).

        The expected number of entries into state ``b`` is::

            E_b = (1 / v) sum_z sum_{a != A, a != b} p_bar_{0a}(z) q_ab

        because ``q_ab / v`` equals the uniformized one-step probability of
        a *genuine* (non-self-loop) jump ``a -> b``.  Adding the initial
        entry into ``s_0`` yields the visit counts.
        """
        with obs.span(
            "ctmc.expected_visits_series", size=self.num_states
        ) as span:
            if num_steps is None:
                num_steps = self.z_max(confidence)
            span.set("num_steps", num_steps)
            uniformization = self.uniformize()
            rate = uniformization.rate
            q = self.transition_rates()

            taboo = self.taboo_probabilities(num_steps)
        occupancy = taboo.sum(axis=0)  # sum over z of p_bar_{0a}(z)

        visits = np.zeros(self.num_states)
        visits[self.initial_state] = 1.0
        for b in self.transient_states:
            inflow = 0.0
            for a in self.transient_states:
                if a != b:
                    inflow += occupancy[a] * q[a, b]
            visits[b] += inflow / rate
        return visits

    # ------------------------------------------------------------------
    # Markov reward convenience wrappers (Section 4.2)
    # ------------------------------------------------------------------
    def expected_reward_until_absorption(
        self,
        per_visit_rewards: np.ndarray,
        method: VisitMethod = "fundamental",
        confidence: float = DEFAULT_ZMAX_CONFIDENCE,
    ) -> np.ndarray | float:
        """Expected accumulated reward until absorption.

        ``per_visit_rewards`` is either a vector (one reward per state) or a
        matrix with one row per reward dimension and one column per state —
        e.g. the load matrix ``L^t`` with one row per server type, in which
        case the result is the vector ``r_{x,t}`` of expected service
        requests per server type (Section 4.2).
        """
        rewards = np.asarray(per_visit_rewards, dtype=float)
        visits = self.expected_visits(method=method, confidence=confidence)
        if rewards.ndim == 1:
            if rewards.shape != (self.num_states,):
                raise ValidationError(
                    f"reward vector must have length {self.num_states}"
                )
            return float(rewards @ visits)
        if rewards.ndim == 2:
            if rewards.shape[1] != self.num_states:
                raise ValidationError(
                    f"reward matrix must have {self.num_states} columns"
                )
            return rewards @ visits
        raise ValidationError("rewards must be a vector or a matrix")

    def expected_time_in_states(self) -> np.ndarray:
        """Expected total time spent in each state before absorption.

        Equals visits times mean residence time; summing over states gives
        the mean turnaround time, which the tests cross-check against the
        first-passage solution of Section 4.1.
        """
        visits = self.expected_visits()
        times = np.zeros(self.num_states)
        for i in self.transient_states:
            times[i] = visits[i] * self.residence_times[i]
        return times

    # ------------------------------------------------------------------
    # Transient analysis (extension): turnaround-time distribution
    # ------------------------------------------------------------------
    def turnaround_cdf(self, times: Sequence[float] | np.ndarray) -> np.ndarray:
        """``P(turnaround <= t)`` for each given time.

        The turnaround time is the first-passage time into the absorbing
        state, so its CDF is the absorbing state's transient probability
        mass — computed by uniformization (see :mod:`repro.core.transient`).
        """
        from repro.core.transient import first_passage_cdf

        return first_passage_cdf(
            self.generator_matrix(),
            self.initial_state,
            self.absorbing_state,
            np.asarray(times, dtype=float),
        )

    def turnaround_quantile(self, probability: float) -> float:
        """Smallest ``t`` with ``P(turnaround <= t) >= probability``.

        Enables percentile-style responsiveness goals ("95% of instances
        finish within ...") on top of the paper's mean-value analysis.
        """
        from repro.core.transient import first_passage_quantile

        return first_passage_quantile(
            self.generator_matrix(),
            self.initial_state,
            self.absorbing_state,
            probability,
            upper_bound_hint=self.mean_turnaround_time(),
        )


def remove_self_loops(
    jump_probabilities: np.ndarray,
    residence_times: np.ndarray,
    absorbing_state: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold transient self-transitions into the residence times.

    A designer-level retry loop ``p_aa > 0`` is equivalent to a CTMC state
    without the loop whose outgoing probabilities are rescaled to
    ``p_ab / (1 - p_aa)`` and whose mean residence time is stretched to
    ``H_a / (1 - p_aa)`` (a geometric number of sojourns).  Returns the
    transformed ``(P, H)`` pair, leaving the absorbing row untouched.
    """
    p = np.asarray(jump_probabilities, dtype=float).copy()
    h = np.asarray(residence_times, dtype=float).copy()
    n = p.shape[0]
    if not 0 <= absorbing_state < n:
        raise ValidationError(
            f"absorbing_state {absorbing_state} out of range for {n} states"
        )
    for a in range(n):
        if a == absorbing_state:
            continue
        loop = p[a, a]
        if loop <= 0.0:
            continue
        if loop >= 1.0:
            raise ValidationError(
                f"state {a} is a self-loop trap (p_aa = {loop}); the "
                "workflow can never leave it"
            )
        p[a] /= 1.0 - loop
        p[a, a] = 0.0
        h[a] /= 1.0 - loop
    return p, h


@dataclass(frozen=True)
class ErgodicCTMC:
    """An ergodic CTMC given by its infinitesimal generator matrix ``Q``."""

    generator: np.ndarray
    state_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        q = linalg.validate_generator_matrix(
            np.asarray(self.generator, dtype=float)
        )
        object.__setattr__(self, "generator", q)
        names = self.state_names or tuple(f"s{i}" for i in range(q.shape[0]))
        if len(names) != q.shape[0]:
            raise ValidationError(
                f"expected {q.shape[0]} state names, got {len(names)}"
            )
        object.__setattr__(self, "state_names", tuple(names))

    @property
    def num_states(self) -> int:
        """Number of states in the chain."""
        return self.generator.shape[0]

    def steady_state(
        self, method: linalg.SolveMethod = "direct"
    ) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi Q = 0, sum(pi) = 1``."""
        return linalg.steady_state_distribution(self.generator, method=method)

    def transient_state_probabilities(
        self,
        initial_distribution: Sequence[float] | np.ndarray,
        time: float,
    ) -> np.ndarray:
        """State distribution ``pi(t)`` from a given start (uniformization)."""
        from repro.core.transient import transient_distribution

        return transient_distribution(
            self.generator, np.asarray(initial_distribution, dtype=float),
            time,
        )

    def expected_steady_state_reward(
        self, rewards: Sequence[float] | np.ndarray,
        method: linalg.SolveMethod = "direct",
    ) -> float | np.ndarray:
        """Steady-state expected reward ``sum_i pi_i r_i``.

        ``rewards`` may be a vector (one scalar reward per state) or a
        matrix with one column per state (vector-valued rewards, as used by
        the performability model of Section 6).
        """
        r = np.asarray(rewards, dtype=float)
        pi = self.steady_state(method=method)
        if r.ndim == 1:
            if r.shape != (self.num_states,):
                raise ValidationError(
                    f"reward vector must have length {self.num_states}"
                )
            return float(r @ pi)
        if r.ndim == 2:
            if r.shape[1] != self.num_states:
                raise ValidationError(
                    f"reward matrix must have {self.num_states} columns"
                )
            return r @ pi
        raise ValidationError("rewards must be a vector or a matrix")
