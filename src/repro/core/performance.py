"""Performance model of the distributed WFMS (Section 4).

Given the workflow mix (workflow types with Poisson arrival rates), the
server types, and a candidate configuration (replication degrees), this
module computes the paper's four performance stages:

1. mean workflow turnaround times (first-passage analysis, Section 4.1);
2. expected service requests per workflow instance and server type
   (Markov reward analysis, Section 4.2);
3. total load per server and the maximum sustainable throughput
   (Little's law, Section 4.3);
4. mean waiting times of service requests at each server, modelling every
   replica as an M/G/1 station (Section 4.4), including the generalized
   case of several server types co-located on one computer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.core.ctmc import VisitMethod
from repro.core.model_types import ServerTypeIndex
from repro.core.workflow_model import (
    WorkflowCTMC,
    WorkflowDefinition,
    build_workflow_ctmc,
)
from repro.exceptions import SaturationError, ValidationError
from repro.queueing import mg1_mean_waiting_time, pooled_service_moments


@dataclass(frozen=True)
class WorkloadItem:
    """One workflow type together with its arrival rate ``xi_t``."""

    definition: WorkflowDefinition
    arrival_rate: float

    def __post_init__(self) -> None:
        if self.arrival_rate < 0.0:
            raise ValidationError(
                f"workflow {self.definition.name}: arrival rate must be >= 0"
            )


class Workload:
    """The application workload: a set of workflow types with rates.

    Iterable over :class:`WorkloadItem`; workflow names must be unique.
    """

    def __init__(self, items: Iterable[WorkloadItem]) -> None:
        self._items = tuple(items)
        if not self._items:
            raise ValidationError("workload must contain at least one item")
        names = [item.definition.name for item in self._items]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate workflow types in {names}")

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def workflow_names(self) -> tuple[str, ...]:
        """Names of the workflow types, in declaration order."""
        return tuple(item.definition.name for item in self._items)

    @property
    def total_arrival_rate(self) -> float:
        """Total workflow instances arriving per time unit."""
        return sum(item.arrival_rate for item in self._items)

    def item(self, workflow_name: str) -> WorkloadItem:
        """The workload item for ``workflow_name`` (raises if unknown)."""
        for candidate in self._items:
            if candidate.definition.name == workflow_name:
                return candidate
        raise ValidationError(f"unknown workflow type {workflow_name!r}")

    def scaled(self, factor: float) -> "Workload":
        """A copy with all arrival rates multiplied by ``factor``."""
        if factor < 0.0:
            raise ValidationError("scale factor must be >= 0")
        return Workload(
            WorkloadItem(item.definition, item.arrival_rate * factor)
            for item in self._items
        )


@dataclass(frozen=True)
class SystemConfiguration:
    """Replication degrees ``Y = (Y_1, ..., Y_k)`` keyed by type name.

    This is also used to describe a (degraded) *system state*
    ``X = (X_1, ..., X_k)``, in which entries may be zero.
    """

    replicas: Mapping[str, int]

    def __post_init__(self) -> None:
        replicas = dict(self.replicas)
        for name, count in replicas.items():
            if int(count) != count or count < 0:
                raise ValidationError(
                    f"replica count of {name} must be a non-negative "
                    f"integer, got {count!r}"
                )
            replicas[name] = int(count)
        object.__setattr__(self, "replicas", replicas)

    def count(self, server_type: str) -> int:
        """Number of replicas of ``server_type`` (0 when unknown)."""
        return self.replicas.get(server_type, 0)

    def as_vector(self, index: ServerTypeIndex) -> np.ndarray:
        """Replica counts in server-type index order."""
        return np.array(
            [self.count(name) for name in index.names], dtype=int
        )

    @property
    def total_servers(self) -> int:
        """Total number of servers in the system."""
        return sum(self.replicas.values())

    def cost(self, index: ServerTypeIndex) -> float:
        """Weighted configuration cost (Section 7.1)."""
        return float(
            sum(
                self.count(spec.name) * spec.cost
                for spec in index.specs
            )
        )

    def with_added_replica(self, server_type: str) -> "SystemConfiguration":
        """A copy with one more replica of ``server_type``."""
        replicas = dict(self.replicas)
        replicas[server_type] = replicas.get(server_type, 0) + 1
        return SystemConfiguration(replicas)

    @staticmethod
    def uniform(index: ServerTypeIndex, count: int = 1) -> "SystemConfiguration":
        """The configuration with ``count`` replicas of every type."""
        return SystemConfiguration({name: count for name in index.names})

    def __str__(self) -> str:
        inner = ", ".join(
            f"{name}={count}" for name, count in sorted(self.replicas.items())
        )
        return f"({inner})"


@dataclass(frozen=True)
class ThroughputReport:
    """Maximum sustainable throughput analysis (Section 4.3)."""

    #: Maximum workflow instances per time unit sustainable with the given
    #: workload mix.
    max_workflow_throughput: float
    #: Server type that saturates first.
    bottleneck: str | None
    #: Factor by which the current workload could be scaled up before the
    #: bottleneck saturates (< 1 means the current load is unsustainable).
    headroom: float
    #: Sustainable request rate per server type (``Y_x / b_x``).
    request_capacity: dict[str, float]


@dataclass(frozen=True)
class PerformanceReport:
    """Full Section 4 assessment of one configuration."""

    configuration: SystemConfiguration
    server_types: ServerTypeIndex
    turnaround_times: dict[str, float]
    requests_per_instance: dict[str, dict[str, float]]
    total_request_rates: dict[str, float]
    per_server_request_rates: dict[str, float]
    utilizations: dict[str, float]
    waiting_times: dict[str, float]
    throughput: ThroughputReport

    @property
    def is_stable(self) -> bool:
        """True when no server type is saturated."""
        return all(value < 1.0 for value in self.utilizations.values())

    @property
    def max_waiting_time(self) -> float:
        """Worst per-type mean waiting time (the responsiveness indicator)."""
        return max(self.waiting_times.values())

    def format_text(self) -> str:
        """Render a human-readable summary table."""
        lines = [f"Performance assessment for configuration {self.configuration}"]
        lines.append("  Workflow turnaround times:")
        for name, value in self.turnaround_times.items():
            lines.append(f"    {name:30s} R = {value:12.4f}")
        lines.append(
            "  Server type          replicas    load/server  utilization"
            "   waiting time"
        )
        for name in self.server_types.names:
            waiting = self.waiting_times[name]
            waiting_text = f"{waiting:12.6f}" if math.isfinite(waiting) else "         inf"
            lines.append(
                f"    {name:18s} {self.configuration.count(name):8d} "
                f"{self.per_server_request_rates[name]:12.6f} "
                f"{self.utilizations[name]:12.6f} {waiting_text}"
            )
        bottleneck = self.throughput.bottleneck or "-"
        lines.append(
            f"  Max sustainable throughput: "
            f"{self.throughput.max_workflow_throughput:.6f} workflows/unit "
            f"(bottleneck: {bottleneck}, headroom x{self.throughput.headroom:.3f})"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class Computer:
    """A physical computer hosting one replica of each listed server type.

    Used by the generalized waiting-time analysis for co-located server
    types (Section 4.4).  ``speed_factor`` supports the heterogeneous
    extension the paper sketches ("could be extended to the heterogeneous
    case by adjusting the service times on a per computer basis"): a
    computer twice as fast as the reference building block has factor 2,
    halving every hosted service time.
    """

    name: str
    hosted_types: tuple[str, ...]
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        hosted = tuple(self.hosted_types)
        if not hosted:
            raise ValidationError(f"computer {self.name}: hosts no server")
        if len(set(hosted)) != len(hosted):
            raise ValidationError(
                f"computer {self.name}: hosts duplicate server types"
            )
        if self.speed_factor <= 0.0:
            raise ValidationError(
                f"computer {self.name}: speed factor must be positive"
            )
        object.__setattr__(self, "hosted_types", hosted)


class PerformanceModel:
    """Evaluates the Section 4 performance metrics for configurations.

    The per-workflow CTMC analyses (turnaround times and request counts)
    depend only on the workload, not on the configuration, and are computed
    once and cached; evaluating a candidate configuration is then cheap,
    which is what makes the configuration search of Section 7 practical.
    """

    def __init__(
        self,
        server_types: ServerTypeIndex,
        workload: Workload,
        visit_method: VisitMethod = "fundamental",
        confidence: float = 0.99,
    ) -> None:
        self.server_types = server_types
        self.workload = workload
        self._visit_method = visit_method
        self._confidence = confidence
        self._models: dict[str, WorkflowCTMC] = {}
        self._turnarounds: dict[str, float] = {}
        self._requests: dict[str, np.ndarray] = {}
        for item in workload:
            name = item.definition.name
            with obs.span(
                "performance.workflow_analysis", workflow=name
            ) as span:
                model = build_workflow_ctmc(item.definition, server_types)
                span.set("states", model.chain.num_states)
                self._models[name] = model
                self._turnarounds[name] = model.turnaround_time()
                self._requests[name] = model.requests_per_instance(
                    method=visit_method, confidence=confidence
                )

    @classmethod
    def from_request_totals(
        cls,
        server_types: ServerTypeIndex,
        total_request_rates: Sequence[float],
    ) -> "PerformanceModel":
        """A partial model rebuilt from its configuration-search inputs.

        Every configuration-evaluation path (utilizations, waiting
        times, goal assessment) depends on the workload only through the
        per-type total request rates ``l_x`` — exactly the second half
        of :func:`~repro.core.evaluation_cache.model_fingerprint`.  A
        search worker process therefore rebuilds its model from the
        fingerprint alone instead of pickling the per-workflow CTMCs,
        and computes bitwise-identical results because the floats are
        carried over verbatim.

        The partial model has no workload: the per-workflow analyses
        (turnaround times, request counts, throughput, load breakdown)
        raise on use.
        """
        totals = np.asarray(total_request_rates, dtype=float).copy()
        if totals.shape != (len(server_types),):
            raise ValidationError(
                f"need one total request rate per server type "
                f"({len(server_types)}), got shape {totals.shape}"
            )
        model = cls.__new__(cls)
        model.server_types = server_types
        model.workload = None
        model._visit_method = "fundamental"
        model._confidence = 0.99
        model._models = {}
        model._turnarounds = {}
        model._requests = {}
        totals.flags.writeable = False
        # Seed the cached_property so the totals are authoritative.
        model.__dict__["_total_request_rates"] = totals
        return model

    # ------------------------------------------------------------------
    # Stage 1 + 2: per-workflow quantities
    # ------------------------------------------------------------------
    def workflow_model(self, workflow_name: str) -> WorkflowCTMC:
        """The cached CTMC translation of one workflow type."""
        try:
            return self._models[workflow_name]
        except KeyError:
            raise ValidationError(
                f"unknown workflow type {workflow_name!r}"
            ) from None

    def turnaround_time(self, workflow_name: str) -> float:
        """Mean turnaround time ``R_t`` (Section 4.1)."""
        self.workflow_model(workflow_name)
        return self._turnarounds[workflow_name]

    def requests_per_instance(self, workflow_name: str) -> np.ndarray:
        """Expected requests ``r_{x,t}`` per server type (Section 4.2)."""
        self.workflow_model(workflow_name)
        return self._requests[workflow_name].copy()

    def active_instances(self, workflow_name: str) -> float:
        """Mean number of concurrent instances ``N_active`` (Little)."""
        item = self.workload.item(workflow_name)
        return item.arrival_rate * self._turnarounds[workflow_name]

    # ------------------------------------------------------------------
    # Stage 3: aggregated load and sustainable throughput
    # ------------------------------------------------------------------
    @cached_property
    def _total_request_rates(self) -> np.ndarray:
        """Cached ``l_x`` vector (the workload is fixed at construction)."""
        totals = np.zeros(len(self.server_types))
        for item in self.workload:
            totals += item.arrival_rate * self._requests[item.definition.name]
        totals.flags.writeable = False
        return totals

    @cached_property
    def _service_time_means(self) -> np.ndarray:
        means = np.array(
            [spec.mean_service_time for spec in self.server_types.specs]
        )
        means.flags.writeable = False
        return means

    @cached_property
    def _service_time_second_moments(self) -> np.ndarray:
        seconds = np.array(
            [
                spec.second_moment_service_time
                for spec in self.server_types.specs
            ]
        )
        seconds.flags.writeable = False
        return seconds

    def total_request_rates(self) -> np.ndarray:
        """Request arrival rate ``l_x = sum_t xi_t r_{x,t}`` per type."""
        return self._total_request_rates.copy()

    def load_breakdown(self) -> dict[str, dict[str, float]]:
        """Each workflow type's share of every server type's load.

        ``result[server_type][workflow_type]`` is the fraction of the
        type's total request arrival rate contributed by that workflow —
        the "who is loading my bottleneck" diagnostic behind capacity
        decisions.  Shares per server type sum to 1 (types without load
        report an empty mapping).
        """
        totals = self._total_request_rates
        breakdown: dict[str, dict[str, float]] = {}
        for i, name in enumerate(self.server_types.names):
            if totals[i] <= 0.0:
                breakdown[name] = {}
                continue
            shares = {}
            for item in self.workload:
                workflow = item.definition.name
                contribution = (
                    item.arrival_rate * self._requests[workflow][i]
                )
                if contribution > 0.0:
                    shares[workflow] = float(contribution / totals[i])
            breakdown[name] = shares
        return breakdown

    def per_server_request_rates(
        self, configuration: SystemConfiguration
    ) -> np.ndarray:
        """Per-replica arrival rates ``l~_x = l_x / Y_x``.

        Types with zero available replicas get ``inf`` when they carry load
        (the load has nowhere to go) and 0 otherwise.
        """
        totals = self._total_request_rates
        counts = configuration.as_vector(self.server_types)
        rates = np.zeros_like(totals)
        positive = counts > 0
        rates[positive] = totals[positive] / counts[positive]
        rates[~positive & (totals > 0.0)] = math.inf
        return rates

    def utilizations(self, configuration: SystemConfiguration) -> np.ndarray:
        """Per-replica utilizations ``rho_x = l~_x b_x``."""
        rates = self.per_server_request_rates(configuration)
        return rates * self._service_time_means

    def max_sustainable_throughput(
        self, configuration: SystemConfiguration
    ) -> ThroughputReport:
        """Maximum workflow throughput before any server type saturates.

        Scaling the whole workload mix by a factor ``alpha`` scales every
        ``l_x`` linearly, so the critical factor is
        ``min_x (Y_x / b_x) / l_x`` and the maximum sustainable workflow
        throughput is that factor times the current total arrival rate.
        """
        totals = self._total_request_rates
        capacity: dict[str, float] = {}
        headroom = math.inf
        bottleneck: str | None = None
        for i, spec in enumerate(self.server_types.specs):
            servers = configuration.count(spec.name)
            type_capacity = servers / spec.mean_service_time
            capacity[spec.name] = type_capacity
            if totals[i] <= 0.0:
                continue
            factor = type_capacity / totals[i]
            if factor < headroom:
                headroom = factor
                bottleneck = spec.name
        total_rate = self.workload.total_arrival_rate
        if math.isinf(headroom):
            max_throughput = math.inf
        else:
            max_throughput = headroom * total_rate
        return ThroughputReport(
            max_workflow_throughput=max_throughput,
            bottleneck=bottleneck,
            headroom=headroom,
            request_capacity=capacity,
        )

    # ------------------------------------------------------------------
    # Stage 4: waiting times
    # ------------------------------------------------------------------
    def waiting_times(
        self, configuration: SystemConfiguration, strict: bool = False
    ) -> np.ndarray:
        """Mean waiting time ``w_x`` per server type (Section 4.4).

        Each of the ``Y_x`` replicas is an M/G/1 station receiving an equal
        share of the type's request stream.  The waiting-time convention
        is uniform across every waiting-time path of this model: a type
        without load reports ``0.0`` and ``inf`` is reserved for true
        saturation (utilization >= 1, including zero replicas carrying
        positive load).  With ``strict`` a saturated type raises
        :class:`~repro.exceptions.SaturationError` instead, naming the
        saturated types — callers that must distinguish "saturated" from
        "goal merely violated" (the frontier search does) use this.
        """
        per_server = self.per_server_request_rates(configuration)
        # Vectorized Pollaczek-Khinchine over all types at once; the
        # per-element operations are the exact float sequence of
        # :func:`mg1_mean_waiting_time`.
        utilization = per_server * self._service_time_means
        waits = np.full(len(self.server_types), math.inf)
        stable = np.isfinite(per_server) & (utilization < 1.0)
        if strict and not stable.all():
            saturated = [
                name
                for name, ok in zip(self.server_types.names, stable)
                if not ok
            ]
            raise SaturationError(
                "saturated server types: " + ", ".join(saturated)
            )
        waits[stable] = (
            per_server[stable] * self._service_time_second_moments[stable]
            / (2.0 * (1.0 - utilization[stable]))
        )
        return waits

    def waiting_time_for_count(
        self, type_index: int, available: int, strict: bool = False
    ) -> float:
        """Waiting time ``w_x(n)`` of one type with ``n`` running replicas.

        The Section 4.4 waiting time of a type depends on the system
        state only through its *own* pool size, so this single-point
        evaluation is the unit the shared waiting-time curve cache
        (:class:`~repro.core.evaluation_cache.EvaluationCache`) stores
        and reuses across search candidates.  Follows the uniform
        convention (0.0 for no load, ``inf`` only for saturation);
        ``strict`` is forwarded to :func:`mg1_mean_waiting_time`, so a
        saturated pool raises :class:`~repro.exceptions.SaturationError`
        instead of returning ``inf``.
        """
        spec = self.server_types.specs[type_index]
        total = float(self._total_request_rates[type_index])
        obs.count("performance.waiting_time_points")
        if available <= 0:
            if total > 0.0:
                if strict:
                    raise SaturationError(
                        f"no running replica of {spec.name} for its "
                        f"request rate {total:g}"
                    )
                return math.inf
            rate = 0.0
        else:
            rate = total / available
        return mg1_mean_waiting_time(
            rate,
            spec.mean_service_time,
            spec.second_moment_service_time,
            strict=strict,
        )

    def waiting_times_colocated(
        self, computers: Sequence[Computer], strict: bool = False
    ) -> dict[str, float]:
        """Waiting times when several server types share computers.

        The configuration is implied by the computer list: ``Y_x`` is the
        number of computers hosting type ``x``.  Per computer, the hosted
        types' request streams are summed, their common service-time
        distribution is the arrival-weighted mixture, and the M/G/1 formula
        yields a waiting time common to all requests on that computer
        (Section 4.4, generalized case).  A type hosted on several
        computers reports the mean over its (equally loaded) hosts.

        The result follows the same convention as :meth:`waiting_times`:
        a type without load reports ``0.0`` — even when its host
        computers are saturated by *other* types' streams, since a
        zero-rate stream has no requests to wait — and ``inf`` is
        reserved for true saturation of the type's own request path.
        ``strict`` raises :class:`~repro.exceptions.SaturationError` for
        saturated types instead of reporting ``inf``.
        """
        if not computers:
            raise ValidationError("at least one computer is required")
        names = [computer.name for computer in computers]
        if len(set(names)) != len(names):
            raise ValidationError("computer names must be unique")
        hosts: dict[str, list[Computer]] = {
            name: [] for name in self.server_types.names
        }
        for computer in computers:
            for hosted in computer.hosted_types:
                if hosted not in hosts:
                    raise ValidationError(
                        f"computer {computer.name} hosts unknown server "
                        f"type {hosted!r}"
                    )
                hosts[hosted].append(computer)

        totals = self.total_request_rates()
        per_type_share: dict[str, float] = {}
        for i, name in enumerate(self.server_types.names):
            replica_count = len(hosts[name])
            if replica_count == 0:
                per_type_share[name] = math.inf if totals[i] > 0.0 else 0.0
            else:
                per_type_share[name] = totals[i] / replica_count

        computer_waits: dict[str, float] = {}
        for computer in computers:
            rates, means, seconds = [], [], []
            speed = computer.speed_factor
            for hosted in computer.hosted_types:
                share = per_type_share[hosted]
                if share <= 0.0:
                    # A zero-rate stream contributes neither load nor
                    # service-time mass to the mixture; skipping it keeps
                    # pooled_service_moments over the loaded streams only.
                    continue
                spec = self.server_types.spec(hosted)
                rates.append(share)
                # Heterogeneous extension: service times shrink linearly
                # (second moments quadratically) with the computer speed.
                means.append(spec.mean_service_time / speed)
                seconds.append(
                    spec.second_moment_service_time / speed**2
                )
            if not rates:
                computer_waits[computer.name] = 0.0
                continue
            mean, second = pooled_service_moments(rates, means, seconds)
            computer_waits[computer.name] = mg1_mean_waiting_time(
                sum(rates), mean, second
            )

        result: dict[str, float] = {}
        for i, name in enumerate(self.server_types.names):
            if totals[i] <= 0.0:
                # No load: 0.0 by convention, regardless of hosting.
                result[name] = 0.0
                continue
            if not hosts[name]:
                # Positive load with nowhere to go is saturation.
                result[name] = math.inf
            else:
                waits = [
                    computer_waits[computer.name]
                    for computer in hosts[name]
                ]
                result[name] = float(np.mean(waits))
            if strict and math.isinf(result[name]):
                raise SaturationError(
                    f"server type {name} is saturated on its host "
                    "computers"
                )
        return result

    # ------------------------------------------------------------------
    # Full assessment
    # ------------------------------------------------------------------
    def assess(self, configuration: SystemConfiguration) -> PerformanceReport:
        """Evaluate all Section 4 metrics for one configuration."""
        obs.count("performance.assessments")
        with obs.span(
            "performance.assess", servers=configuration.total_servers
        ):
            totals = self._total_request_rates
            per_server = self.per_server_request_rates(configuration)
            utilizations = self.utilizations(configuration)
            waits = self.waiting_times(configuration)
        names = self.server_types.names
        return PerformanceReport(
            configuration=configuration,
            server_types=self.server_types,
            turnaround_times=dict(self._turnarounds),
            requests_per_instance={
                workflow: {
                    name: float(self._requests[workflow][i])
                    for i, name in enumerate(names)
                }
                for workflow in self._requests
            },
            total_request_rates={
                name: float(totals[i]) for i, name in enumerate(names)
            },
            per_server_request_rates={
                name: float(per_server[i]) for i, name in enumerate(names)
            },
            utilizations={
                name: float(utilizations[i]) for i, name in enumerate(names)
            },
            waiting_times={
                name: float(waits[i]) for i, name in enumerate(names)
            },
            throughput=self.max_sustainable_throughput(configuration),
        )
