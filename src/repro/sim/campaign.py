"""Replicated, parallel simulation campaigns with sound interval estimates.

One seeded :class:`~repro.wfms.runtime.SimulatedWFMS` run yields point
estimates; the paper's validation (Section 7) needs a *confidence
statement* before declaring an analytic prediction confirmed.  This
module turns the one-shot simulator into a campaign runner:

* :class:`CampaignPlan` describes ``N`` independent replications of one
  simulated scenario.  Every replication gets its own master seed derived
  from ``(base_seed, replication index)`` via
  :func:`repro.sim.seeding.derive_seed`, so replications are mutually
  uncorrelated and the whole campaign is reproducible from one integer.
* :func:`run_campaign` executes the replications serially or across a
  spawn-started process pool (the executor pattern of
  :mod:`repro.core.search.executors`).  Workers return trail-free
  measurement reports; the parent folds them — **always in replication
  order** — so the aggregate is byte-identical for any worker count.
* :class:`CampaignResult` aggregates every metric two ways: across
  replication means (independent observations, Student-t confidence
  intervals — the statistically defensible estimate) and pooled at the
  event level via :meth:`~repro.sim.statistics.RunningStats.merge` /
  :meth:`~repro.sim.statistics.TimeWeightedStats.merge`.
* :func:`validate_against_models` compares analytic predictions
  (turnaround, per-type waiting time and utilization, availability,
  performability waiting) against the replication confidence intervals
  and issues a per-metric verdict — the :class:`ValidationDocument` the
  E7 experiment and the integration tests are built on.

The module is imported as ``repro.sim.campaign`` (not re-exported from
:mod:`repro.sim`, which stays a dependency-free simulation kernel).
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from repro import obs
from repro.core.availability import AvailabilityModel
from repro.core.model_types import ServerTypeIndex
from repro.core.performability import PerformabilityModel
from repro.core.performance import PerformanceModel, SystemConfiguration
from repro.exceptions import ValidationError
from repro.monitor.audit import AuditTrail
from repro.sim.seeding import derive_seed
from repro.sim.statistics import RunningStats, TimeWeightedStats
from repro.spec.translator import DEFAULT_ROUTING_DURATION
from repro.wfms.measurement import WFMSMeasurementReport
from repro.wfms.routing import RoutingPolicy
from repro.wfms.runtime import (
    DurationSampling,
    SimulatedWFMS,
    SimulatedWorkflowType,
)

__all__ = [
    "CampaignPlan",
    "CampaignResult",
    "MetricEstimate",
    "MetricValidation",
    "ReplicationResult",
    "ServerTypeAggregate",
    "ValidationDocument",
    "WorkflowAggregate",
    "run_campaign",
    "run_replication",
    "validate_against_models",
]

#: Confidence level of every campaign interval estimate.
CONFIDENCE = 0.95


def _t_quantile(degrees_of_freedom: int) -> float:
    """Two-sided Student-t quantile at the campaign confidence level."""
    from scipy.stats import t

    return float(t.ppf(0.5 + CONFIDENCE / 2.0, degrees_of_freedom))


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignPlan:
    """``N`` independent replications of one simulated WFMS scenario.

    The plan is picklable (charts, registries, and specs are plain
    dataclasses), so worker processes rebuild each replication from the
    plan alone — nothing simulation-related crosses process boundaries
    except this description and the per-replication results.
    """

    server_types: ServerTypeIndex
    configuration: SystemConfiguration
    workflow_types: tuple[SimulatedWorkflowType, ...]
    duration: float
    replications: int = 10
    warmup: float = 0.0
    base_seed: int = 0
    routing_policy: RoutingPolicy = RoutingPolicy.HASH
    duration_sampling: DurationSampling = DurationSampling.EXPONENTIAL
    inject_failures: bool = True
    default_routing_duration: float = DEFAULT_ROUTING_DURATION
    #: ``"exact"`` keeps the bit-identical ``random.Random`` contract;
    #: ``"fast"`` switches every replication to numpy block pre-drawing
    #: (statistically equivalent, own golden documents — see
    #: :mod:`repro.sim.fastdraw`).
    rng_mode: str = "exact"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "workflow_types", tuple(self.workflow_types)
        )
        if self.rng_mode not in ("exact", "fast"):
            raise ValidationError(
                f"rng_mode must be 'exact' or 'fast', got {self.rng_mode!r}"
            )
        if not self.workflow_types:
            raise ValidationError("campaign needs at least one workflow type")
        if self.replications < 1:
            raise ValidationError("replications must be >= 1")
        if self.duration <= 0.0:
            raise ValidationError("duration must be positive")
        if self.warmup < 0.0:
            raise ValidationError("warmup must be >= 0")

    def seed_for(self, index: int) -> int:
        """The derived master seed of replication ``index``."""
        if not 0 <= index < self.replications:
            raise ValidationError(
                f"replication index {index} outside [0, {self.replications})"
            )
        return derive_seed(self.base_seed, "campaign-replication", index)

    def build_wfms(self, index: int) -> SimulatedWFMS:
        """Construct the (not yet run) WFMS of replication ``index``."""
        return SimulatedWFMS(
            server_types=self.server_types,
            configuration=self.configuration,
            workflow_types=list(self.workflow_types),
            seed=self.seed_for(index),
            routing_policy=self.routing_policy,
            duration_sampling=self.duration_sampling,
            inject_failures=self.inject_failures,
            default_routing_duration=self.default_routing_duration,
            rng_mode=self.rng_mode,
        )


def run_replication(plan: CampaignPlan, index: int) -> WFMSMeasurementReport:
    """Run one replication and return its full report (audit trail kept).

    This is the single-run escape hatch: calibration round trips need
    the audit trail, which :func:`run_campaign` deliberately strips.
    """
    return plan.build_wfms(index).run(
        duration=plan.duration, warmup=plan.warmup
    )


# ----------------------------------------------------------------------
# Replication execution (worker side)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicationResult:
    """One replication's measurements, stripped for cheap transport."""

    index: int
    seed: int
    events_executed: int
    report: WFMSMeasurementReport
    #: Worker observability delta (:func:`repro.obs.export_snapshot`);
    #: ``None`` for serial or unobserved replications.  The campaign
    #: runner merges and strips it before aggregation.
    obs_snapshot: dict | None = None

    @property
    def system_unavailability(self) -> float:
        """Shortcut to the replication's measured unavailability."""
        return self.report.system_unavailability


def _run_replication_task(
    plan: CampaignPlan, index: int, observe: bool = False
) -> ReplicationResult:
    """Worker entry point: run replication ``index`` of ``plan``.

    Module-level so it pickles under the spawn start method.  The audit
    trail is dropped before the result crosses back to the parent — a
    campaign measures aggregates, not individual instances.

    ``observe=True`` is the parallel-worker path with instrumentation
    on: the worker's registry is reset before the run (workers are
    reused across replications, so the export must be this
    replication's delta) and the snapshot rides home on the result.
    Serial runs record straight into the parent registry and leave the
    flag off.
    """
    if observe:
        obs.reset()
        obs.enable()
    wfms = plan.build_wfms(index)
    report = wfms.run(duration=plan.duration, warmup=plan.warmup)
    return ReplicationResult(
        index=index,
        seed=plan.seed_for(index),
        events_executed=wfms.logical_events,
        report=dataclasses.replace(report, trail=AuditTrail()),
        obs_snapshot=obs.export_snapshot() if observe else None,
    )


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricEstimate:
    """Mean and Student-t confidence interval over replication values."""

    mean: float
    std: float
    half_width: float
    n: int
    minimum: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "MetricEstimate":
        """Estimate from one value per (independent) replication.

        With fewer than two replications the interval is vacuous
        (infinite half width): one run supports no confidence statement.
        """
        stats = RunningStats()
        for value in values:
            stats.add(value)
        if stats.count < 2:
            half_width = math.inf
        else:
            half_width = (
                _t_quantile(stats.count - 1)
                * stats.standard_deviation
                / math.sqrt(stats.count)
            )
        return cls(
            mean=stats.mean,
            std=stats.standard_deviation,
            half_width=half_width,
            n=stats.count,
            minimum=stats.minimum,
            maximum=stats.maximum,
        )

    @property
    def ci95(self) -> tuple[float, float]:
        """The two-sided interval ``mean +/- half_width``."""
        return (self.mean - self.half_width, self.mean + self.half_width)

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside the confidence interval."""
        low, high = self.ci95
        return low <= value <= high

    def to_document(self) -> dict[str, Any]:
        """JSON-serializable form (deterministic field order)."""
        return {
            "mean": self.mean,
            "std": self.std,
            "ci95": list(self.ci95),
            "half_width": self.half_width,
            "n": self.n,
            "min": self.minimum,
            "max": self.maximum,
        }


@dataclass(frozen=True)
class WorkflowAggregate:
    """Campaign-level estimates for one workflow type."""

    name: str
    total_completed: int
    turnaround: MetricEstimate
    throughput: MetricEstimate
    #: Event-level turnarounds of *all* replications merged together.
    pooled_turnaround: RunningStats

    def to_document(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {
            "total_completed": self.total_completed,
            "turnaround": self.turnaround.to_document(),
            "throughput": self.throughput.to_document(),
            "pooled_turnaround_mean": self.pooled_turnaround.mean,
            "pooled_turnaround_ci95": list(
                self.pooled_turnaround.confidence_interval_95()
            ),
        }


@dataclass(frozen=True)
class ServerTypeAggregate:
    """Campaign-level estimates for one server type."""

    name: str
    total_requests: int
    utilization: MetricEstimate
    waiting_time: MetricEstimate
    unavailability: MetricEstimate

    def to_document(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {
            "total_requests": self.total_requests,
            "utilization": self.utilization.to_document(),
            "waiting_time": self.waiting_time.to_document(),
            "unavailability": self.unavailability.to_document(),
        }


@dataclass(frozen=True)
class CampaignResult:
    """Everything a campaign measured, aggregated across replications."""

    plan: CampaignPlan
    replications: tuple[ReplicationResult, ...]
    workflow_types: dict[str, WorkflowAggregate]
    server_types: dict[str, ServerTypeAggregate]
    system_unavailability: MetricEstimate
    #: Duration-weighted pool of the per-replication up-time windows.
    pooled_system_unavailability: float
    total_events: int

    def to_document(self) -> dict[str, Any]:
        """Deterministic JSON document of the aggregate.

        Contains no wall-clock times and no worker counts, so the same
        plan produces an *identical* document whether the campaign ran
        serially or on any number of worker processes.  The ``rng_mode``
        key appears only for non-exact modes: exact-mode documents are
        byte-identical to the ones recorded before the fast mode
        existed, so the exact goldens stay untouched.
        """
        document: dict[str, Any] = {
            "schema": "repro.sim.campaign/v1",
            "replications": self.plan.replications,
            "base_seed": self.plan.base_seed,
            "seeds": [r.seed for r in self.replications],
            "duration": self.plan.duration,
            "warmup": self.plan.warmup,
            "configuration": dict(
                sorted(self.plan.configuration.replicas.items())
            ),
            "inject_failures": self.plan.inject_failures,
            "routing_policy": self.plan.routing_policy.value,
            "duration_sampling": self.plan.duration_sampling.value,
            "total_events": self.total_events,
            "workflow_types": {
                name: aggregate.to_document()
                for name, aggregate in sorted(self.workflow_types.items())
            },
            "server_types": {
                name: aggregate.to_document()
                for name, aggregate in sorted(self.server_types.items())
            },
            "system_unavailability": self.system_unavailability.to_document(),
            "pooled_system_unavailability":
                self.pooled_system_unavailability,
        }
        if self.plan.rng_mode != "exact":
            document["rng_mode"] = self.plan.rng_mode
        return document

    def format_text(self) -> str:
        """Human-readable campaign summary."""
        plan = self.plan
        lines = [
            f"Campaign: {plan.replications} replications x "
            f"{plan.duration:g} time units "
            f"(warm-up {plan.warmup:g}, base seed {plan.base_seed})",
            f"  events executed: {self.total_events}",
            f"  system unavailability: "
            f"{_format_estimate(self.system_unavailability, '.3e')}",
            "  Workflow type          completed   "
            "turnaround (mean +/- 95% CI)   throughput",
        ]
        for name, aggregate in sorted(self.workflow_types.items()):
            lines.append(
                f"    {name:20s} {aggregate.total_completed:9d}   "
                f"{_format_estimate(aggregate.turnaround, '.3f'):28s} "
                f"{aggregate.throughput.mean:10.6f}"
            )
        lines.append(
            "  Server type          requests   "
            "waiting (mean +/- 95% CI)      utilization"
        )
        for name, aggregate in sorted(self.server_types.items()):
            lines.append(
                f"    {name:18s} {aggregate.total_requests:9d}   "
                f"{_format_estimate(aggregate.waiting_time, '.5f'):28s} "
                f"{aggregate.utilization.mean:10.4f}"
            )
        return "\n".join(lines)


def _format_estimate(estimate: MetricEstimate, spec: str) -> str:
    """``mean +/- half_width`` with a shared format spec."""
    if math.isinf(estimate.half_width):
        return f"{estimate.mean:{spec}} (no CI, n={estimate.n})"
    return f"{estimate.mean:{spec}} +/- {estimate.half_width:{spec}}"


def _aggregate(
    plan: CampaignPlan, results: Sequence[ReplicationResult]
) -> CampaignResult:
    """Fold per-replication results (in replication order) together."""
    ordered = sorted(results, key=lambda result: result.index)
    workflow_aggregates: dict[str, WorkflowAggregate] = {}
    for workflow_type in plan.workflow_types:
        name = workflow_type.chart.name
        measurements = [r.report.workflow_types[name] for r in ordered]
        pooled = RunningStats.merged(
            [
                m.turnaround_stats
                for m in measurements
                if m.turnaround_stats is not None
            ]
        )
        obs.count("campaign.merges")
        workflow_aggregates[name] = WorkflowAggregate(
            name=name,
            total_completed=sum(m.completed_instances for m in measurements),
            turnaround=MetricEstimate.from_values(
                [m.mean_turnaround_time for m in measurements]
            ),
            throughput=MetricEstimate.from_values(
                [m.throughput for m in measurements]
            ),
            pooled_turnaround=pooled,
        )
    server_aggregates: dict[str, ServerTypeAggregate] = {}
    for spec in plan.server_types.specs:
        measurements = [r.report.server_types[spec.name] for r in ordered]
        server_aggregates[spec.name] = ServerTypeAggregate(
            name=spec.name,
            total_requests=sum(m.completed_requests for m in measurements),
            utilization=MetricEstimate.from_values(
                [m.utilization for m in measurements]
            ),
            waiting_time=MetricEstimate.from_values(
                [m.mean_waiting_time for m in measurements]
            ),
            unavailability=MetricEstimate.from_values(
                [m.unavailability for m in measurements]
            ),
        )
    pooled_up = TimeWeightedStats()
    for result in ordered:
        window = result.report.availability_stats
        if window is not None:
            pooled_up.merge(window)
            obs.count("campaign.merges")
    return CampaignResult(
        plan=plan,
        replications=tuple(ordered),
        workflow_types=workflow_aggregates,
        server_types=server_aggregates,
        system_unavailability=MetricEstimate.from_values(
            [r.system_unavailability for r in ordered]
        ),
        pooled_system_unavailability=1.0 - pooled_up.time_average(),
        total_events=sum(r.events_executed for r in ordered),
    )


# ----------------------------------------------------------------------
# Campaign runner
# ----------------------------------------------------------------------
def run_campaign(plan: CampaignPlan, workers: int = 1) -> CampaignResult:
    """Run every replication of ``plan`` and aggregate the results.

    ``workers > 1`` fans the replications out over spawn-started worker
    processes; because each replication is fully determined by its
    derived seed and the parent aggregates in replication order, the
    result — including its :meth:`~CampaignResult.to_document` form —
    is identical for every worker count.

    When observability is enabled, parallel workers record their share
    (``sim.*``, ``wfms.*`` counters) under freshly reset registries and
    the parent merges the deltas in replication order — so instrumented
    campaigns report the same counter totals for every worker count
    (wall-clock gauges like ``sim.events_per_second`` excepted).
    """
    if workers < 1:
        raise ValidationError("workers must be >= 1")
    effective_workers = min(workers, plan.replications)
    with obs.span(
        "campaign.run",
        replications=plan.replications,
        workers=effective_workers,
    ) as span:
        obs.set_gauge("campaign.workers", effective_workers)
        if effective_workers == 1:
            results = []
            for index in range(plan.replications):
                with obs.span("campaign.replication", index=index):
                    results.append(_run_replication_task(plan, index))
                obs.count("campaign.replications_completed")
        else:
            observe = obs.is_enabled()
            with ProcessPoolExecutor(
                max_workers=effective_workers,
                mp_context=multiprocessing.get_context("spawn"),
            ) as pool:
                futures = [
                    pool.submit(_run_replication_task, plan, index, observe)
                    for index in range(plan.replications)
                ]
                results = []
                for future in futures:
                    result = future.result()
                    # Merge worker metrics in replication order, then
                    # strip the snapshot so the aggregate is identical
                    # to a serial run's.
                    obs.merge_snapshot(result.obs_snapshot)
                    if result.obs_snapshot is not None:
                        result = dataclasses.replace(
                            result, obs_snapshot=None
                        )
                    results.append(result)
                    obs.count("campaign.replications_completed")
        with obs.span("campaign.aggregate"):
            result = _aggregate(plan, results)
        span.set("events", result.total_events)
    return result


# ----------------------------------------------------------------------
# Validation against the analytic models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricValidation:
    """One analytic-vs-simulated comparison with its verdict."""

    metric: str
    analytic: float
    simulated: MetricEstimate
    #: ``True`` when the analytic prediction lies inside the simulated
    #: confidence interval.
    within_ci: bool
    #: Signed relative deviation ``(simulated - analytic) / analytic``.
    relative_error: float
    note: str = ""

    @property
    def verdict(self) -> str:
        """``within CI`` or ``outside CI`` (vacuous intervals excluded)."""
        if math.isinf(self.simulated.half_width):
            return "no CI (n < 2)"
        return "within CI" if self.within_ci else "outside CI"

    def to_document(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {
            "metric": self.metric,
            "analytic": self.analytic,
            "simulated": self.simulated.to_document(),
            "within_ci": self.within_ci,
            "relative_error": self.relative_error,
            "verdict": self.verdict,
            "note": self.note,
        }


@dataclass(frozen=True)
class ValidationDocument:
    """Per-metric verdicts of one analytic-vs-campaign comparison."""

    replications: int
    confidence: float
    metrics: tuple[MetricValidation, ...]

    def __getitem__(self, metric: str) -> MetricValidation:
        for validation in self.metrics:
            if validation.metric == metric:
                return validation
        raise KeyError(metric)

    @property
    def all_within(self) -> bool:
        """Whether every analytic prediction fell inside its CI."""
        return all(validation.within_ci for validation in self.metrics)

    @property
    def failures(self) -> tuple[MetricValidation, ...]:
        """The comparisons whose prediction fell outside the CI."""
        return tuple(v for v in self.metrics if not v.within_ci)

    def to_document(self) -> dict[str, Any]:
        """JSON-serializable form (deterministic ordering)."""
        return {
            "schema": "repro.sim.campaign.validation/v1",
            "replications": self.replications,
            "confidence": self.confidence,
            "all_within_ci": self.all_within,
            "metrics": [v.to_document() for v in self.metrics],
        }

    def format_text(self) -> str:
        """Human-readable verdict table."""
        lines = [
            f"Validation against analytic models "
            f"({self.replications} replications, "
            f"{self.confidence:.0%} confidence intervals)",
            "  metric                        analytic     "
            "simulated (mean +/- CI)        rel.err   verdict",
        ]
        for validation in self.metrics:
            estimate = validation.simulated
            lines.append(
                f"    {validation.metric:26s} {validation.analytic:10.4f}   "
                f"{_format_estimate(estimate, '.4f'):28s} "
                f"{validation.relative_error:+8.2%}   {validation.verdict}"
            )
        status = "PASS" if self.all_within else (
            f"{len(self.failures)} metric(s) outside their CI"
        )
        lines.append(f"  overall: {status}")
        return "\n".join(lines)


def _compare(
    metric: str,
    analytic: float,
    simulated: MetricEstimate,
    note: str = "",
) -> MetricValidation:
    """Build one comparison row."""
    if analytic != 0.0:
        relative = (simulated.mean - analytic) / analytic
    else:
        relative = math.inf if simulated.mean != 0.0 else 0.0
    return MetricValidation(
        metric=metric,
        analytic=analytic,
        simulated=simulated,
        within_ci=simulated.contains(analytic),
        relative_error=relative,
        note=note,
    )


def validate_against_models(
    result: CampaignResult,
    performance: PerformanceModel,
    availability: AvailabilityModel | None = None,
    performability: PerformabilityModel | None = None,
    waiting_times: bool = True,
) -> ValidationDocument:
    """Compare analytic predictions with the campaign's intervals.

    Emits one row per prediction the models make about the simulated
    scenario: per-workflow turnaround, per-type utilization, per-type
    waiting time (failure-free from ``performance``, or the Section 6
    performability expectation ``W^Y`` when ``performability`` is
    given — the right comparison for failure-injected campaigns), and
    system unavailability when ``availability`` is given.  Set
    ``waiting_times=False`` to skip the waiting rows (e.g. when the
    simulated arrival process deliberately violates the M/G/1 Poisson
    assumption and a within-CI verdict is not meaningful).
    """
    configuration = result.plan.configuration
    metrics: list[MetricValidation] = []
    for name, aggregate in sorted(result.workflow_types.items()):
        metrics.append(
            _compare(
                f"turnaround[{name}]",
                performance.turnaround_time(name),
                aggregate.turnaround,
            )
        )
    names = result.plan.server_types.names
    utilizations = performance.utilizations(configuration)
    for i, name in enumerate(names):
        metrics.append(
            _compare(
                f"utilization[{name}]",
                float(utilizations[i]),
                result.server_types[name].utilization,
            )
        )
    if waiting_times:
        if performability is not None:
            report = performability.expected_waiting_times()
            predictions = report.expected_waiting_times
            note = "performability W^Y (failures included)"
        else:
            values = performance.waiting_times(configuration)
            predictions = {
                name: float(values[i]) for i, name in enumerate(names)
            }
            note = "failure-free M/G/1"
        for name in names:
            metrics.append(
                _compare(
                    f"waiting[{name}]",
                    predictions[name],
                    result.server_types[name].waiting_time,
                    note=note,
                )
            )
    if availability is not None:
        metrics.append(
            _compare(
                "unavailability",
                availability.unavailability(),
                result.system_unavailability,
            )
        )
    return ValidationDocument(
        replications=result.plan.replications,
        confidence=CONFIDENCE,
        metrics=tuple(metrics),
    )
