"""Random-variate distributions with known first two moments.

The analytic models of the paper characterize service times only by their
first two moments (the M/G/1 formula of Section 4.4); the simulator must
therefore sample from distributions whose moments are known exactly, so
that simulated and analytic inputs match.  Every distribution reports its
``mean``, ``second_moment``, ``variance``, and squared coefficient of
variation.
"""

from __future__ import annotations

import abc
import math
import random
from bisect import bisect
from dataclasses import dataclass
from itertools import accumulate
from typing import Callable

from repro.exceptions import ValidationError


class Distribution(abc.ABC):
    """A non-negative continuous distribution with known moments."""

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one variate."""

    def sampler(self, rng: random.Random) -> Callable[[], float]:
        """Precompiled zero-argument sampler bound to ``rng``.

        For a :class:`random.Random` the returned closure draws the
        *identical* variate stream as repeated :meth:`sample` calls on
        the same generator — same RNG method calls in the same order
        with bit-identical parameters — but with the per-sample
        parameter recomputation and attribute lookups hoisted out.  Hot
        call sites (the simulated servers and the WFMS duration
        sampling) compile their distribution once and call the closure
        per draw.

        A generator exposing ``stream_for`` (the fast-RNG mode's
        :class:`repro.sim.fastdraw.FastRng`) is dispatched there
        instead: the sampler then serves numpy block pre-draws — same
        distribution, different (documented) stream contract.
        """
        stream_for = getattr(rng, "stream_for", None)
        if stream_for is not None:
            return stream_for(self)
        return self._compile(rng)

    def _compile(self, rng: random.Random) -> Callable[[], float]:
        """The exact-mode compiled sampler (family-specific hoisting)."""
        sample = self.sample
        return lambda: sample(rng)

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """First moment."""

    @property
    @abc.abstractmethod
    def second_moment(self) -> float:
        """Raw second moment ``E[X^2]``."""

    @property
    def variance(self) -> float:
        """Central second moment."""
        return self.second_moment - self.mean**2

    @property
    def squared_coefficient_of_variation(self) -> float:
        """``Var / mean^2``: 0 deterministic, 1 exponential, >1 bursty."""
        if self.mean == 0.0:
            return 0.0
        return self.variance / self.mean**2


@dataclass(frozen=True)
class Deterministic(Distribution):
    """A constant duration."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0.0:
            raise ValidationError("value must be >= 0")

    def sample(self, rng: random.Random) -> float:
        """The fixed value (``rng`` is unused)."""
        return self.value

    def _compile(self, rng: random.Random) -> Callable[[], float]:
        """Constant closure (``rng`` is unused, matching :meth:`sample`)."""
        value = self.value
        return lambda: value

    @property
    def mean(self) -> float:
        """The fixed value."""
        return self.value

    @property
    def second_moment(self) -> float:
        """Square of the fixed value."""
        return self.value**2


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential distribution parameterized by its *mean*."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0.0:
            raise ValidationError("mean must be positive")

    def sample(self, rng: random.Random) -> float:
        """One exponential variate with the configured mean."""
        return rng.expovariate(1.0 / self.mean_value)

    def _compile(self, rng: random.Random) -> Callable[[], float]:
        """Closure with the rate precomputed and ``expovariate`` bound."""
        rate = 1.0 / self.mean_value
        expovariate = rng.expovariate
        return lambda: expovariate(rate)

    @property
    def mean(self) -> float:
        """The configured mean."""
        return self.mean_value

    @property
    def second_moment(self) -> float:
        """``2 * mean**2`` (SCV = 1)."""
        return 2.0 * self.mean_value**2


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform distribution on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0.0 or self.high <= self.low:
            raise ValidationError("need 0 <= low < high")

    def sample(self, rng: random.Random) -> float:
        """One uniform variate on ``[low, high]``."""
        return rng.uniform(self.low, self.high)

    def _compile(self, rng: random.Random) -> Callable[[], float]:
        """Closure with the bounds hoisted and ``uniform`` bound."""
        low, high = self.low, self.high
        uniform = rng.uniform
        return lambda: uniform(low, high)

    @property
    def mean(self) -> float:
        """Midpoint ``(low + high) / 2``."""
        return 0.5 * (self.low + self.high)

    @property
    def second_moment(self) -> float:
        """``(low^2 + low*high + high^2) / 3``."""
        return (self.low**2 + self.low * self.high + self.high**2) / 3.0


@dataclass(frozen=True)
class Erlang(Distribution):
    """Erlang-k distribution parameterized by stage count and mean.

    Squared coefficient of variation ``1/k`` — sub-exponential
    variability, approaching deterministic for large ``k``.
    """

    stages: int
    mean_value: float

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise ValidationError("stages must be >= 1")
        if self.mean_value <= 0.0:
            raise ValidationError("mean must be positive")

    def sample(self, rng: random.Random) -> float:
        """Sum of ``stages`` exponential stage variates."""
        stage_mean = self.mean_value / self.stages
        return sum(
            rng.expovariate(1.0 / stage_mean) for _ in range(self.stages)
        )

    def _compile(self, rng: random.Random) -> Callable[[], float]:
        """Closure with the stage rate precomputed; the common one- and
        two-stage cases skip the generator entirely."""
        # Exactly the per-sample expression, hoisted: any other algebraic
        # form could differ in the last ulp and shift the draw stream.
        stage_rate = 1.0 / (self.mean_value / self.stages)
        stages = self.stages
        expovariate = rng.expovariate
        if stages == 1:
            return lambda: expovariate(stage_rate)
        if stages == 2:
            return lambda: expovariate(stage_rate) + expovariate(stage_rate)
        return lambda: sum(
            expovariate(stage_rate) for _ in range(stages)
        )

    @property
    def mean(self) -> float:
        """The configured mean."""
        return self.mean_value

    @property
    def second_moment(self) -> float:
        """``mean^2 * (1 + 1/stages)`` (SCV = 1/stages)."""
        variance = self.mean_value**2 / self.stages
        return variance + self.mean_value**2


@dataclass(frozen=True)
class HyperExponential(Distribution):
    """Probabilistic mixture of exponentials (SCV > 1).

    ``branch_probabilities[i]`` selects an exponential with mean
    ``branch_means[i]``.
    """

    branch_probabilities: tuple[float, ...]
    branch_means: tuple[float, ...]

    def __post_init__(self) -> None:
        probabilities = tuple(self.branch_probabilities)
        means = tuple(self.branch_means)
        object.__setattr__(self, "branch_probabilities", probabilities)
        object.__setattr__(self, "branch_means", means)
        if len(probabilities) != len(means) or not probabilities:
            raise ValidationError(
                "need equally many (>=1) probabilities and means"
            )
        if any(probability <= 0.0 for probability in probabilities):
            raise ValidationError("branch probabilities must be positive")
        if abs(sum(probabilities) - 1.0) > 1e-9:
            raise ValidationError("branch probabilities must sum to 1")
        if any(mean <= 0.0 for mean in means):
            raise ValidationError("branch means must be positive")

    def sample(self, rng: random.Random) -> float:
        """Pick a branch by probability, then draw its exponential."""
        mean = rng.choices(
            self.branch_means, weights=self.branch_probabilities, k=1
        )[0]
        return rng.expovariate(1.0 / mean)

    def _compile(self, rng: random.Random) -> Callable[[], float]:
        """Closure with the branch selection precompiled.

        The branch pick inlines exactly what ``random.Random.choices``
        computes — ``population[bisect(cum_weights, random() * total,
        0, hi)]`` with ``cum_weights = accumulate(weights)`` and
        ``total = cum_weights[-1] + 0.0`` — but hoists the cumulative
        table out of the per-draw path.  The arithmetic (and therefore
        the draw stream) is bit-identical to :meth:`sample`.
        """
        means = self.branch_means
        cum_weights = list(accumulate(self.branch_probabilities))
        total = cum_weights[-1] + 0.0
        hi = len(means) - 1
        rand = rng.random
        expovariate = rng.expovariate

        def draw() -> float:
            return expovariate(
                1.0
                / means[bisect(cum_weights, rand() * total, 0, hi)]
            )

        return draw

    @property
    def mean(self) -> float:
        """Probability-weighted mean of the branches."""
        return sum(
            probability * mean
            for probability, mean in zip(
                self.branch_probabilities, self.branch_means
            )
        )

    @property
    def second_moment(self) -> float:
        """Probability-weighted second moment of the branches."""
        return sum(
            probability * 2.0 * mean**2
            for probability, mean in zip(
                self.branch_probabilities, self.branch_means
            )
        )


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal distribution parameterized by mean and SCV.

    Heavy-tailed service times; useful to stress the M/G/1 model's
    second-moment sensitivity.
    """

    mean_value: float
    scv: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0.0:
            raise ValidationError("mean must be positive")
        if self.scv <= 0.0:
            raise ValidationError("scv must be positive")

    def _parameters(self) -> tuple[float, float]:
        sigma_squared = math.log(1.0 + self.scv)
        mu = math.log(self.mean_value) - 0.5 * sigma_squared
        return mu, math.sqrt(sigma_squared)

    def sample(self, rng: random.Random) -> float:
        """One log-normal variate matching the configured mean and SCV."""
        mu, sigma = self._parameters()
        return rng.lognormvariate(mu, sigma)

    def _compile(self, rng: random.Random) -> Callable[[], float]:
        """Closure with ``(mu, sigma)`` computed once instead of per draw."""
        mu, sigma = self._parameters()
        lognormvariate = rng.lognormvariate
        return lambda: lognormvariate(mu, sigma)

    @property
    def mean(self) -> float:
        """The configured mean."""
        return self.mean_value

    @property
    def second_moment(self) -> float:
        """``mean^2 * (1 + scv)``."""
        return self.mean_value**2 * (1.0 + self.scv)


@dataclass(frozen=True)
class Pareto(Distribution):
    """Pareto (power-law) distribution with shape ``shape``, scale ``minimum``.

    The archetypal heavy tail: density ``shape * minimum**shape /
    x**(shape+1)`` for ``x >= minimum``.  The mean is finite only for
    ``shape > 1`` and the second moment only for ``shape > 2`` —
    shapes in ``(1, 2]`` deliberately break the M/G/1 second-moment
    assumption, probing the analytic model where it must fail.
    """

    shape: float
    minimum: float

    def __post_init__(self) -> None:
        if self.shape <= 1.0:
            raise ValidationError(
                "shape must be > 1 (the mean is infinite otherwise)"
            )
        if self.minimum <= 0.0:
            raise ValidationError("minimum must be positive")

    def sample(self, rng: random.Random) -> float:
        """One Pareto variate (``paretovariate`` scaled by ``minimum``)."""
        return self.minimum * rng.paretovariate(self.shape)

    def _compile(self, rng: random.Random) -> Callable[[], float]:
        """Closure with the scale hoisted and ``paretovariate`` bound."""
        minimum = self.minimum
        shape = self.shape
        paretovariate = rng.paretovariate
        return lambda: minimum * paretovariate(shape)

    @property
    def mean(self) -> float:
        """``shape * minimum / (shape - 1)``."""
        return self.shape * self.minimum / (self.shape - 1.0)

    @property
    def second_moment(self) -> float:
        """``shape * minimum^2 / (shape - 2)`` (infinite for shape <= 2)."""
        if self.shape <= 2.0:
            return math.inf
        return self.shape * self.minimum**2 / (self.shape - 2.0)


def distribution_for_moments(
    mean: float, second_moment: float
) -> Distribution:
    """Pick a distribution matching the given first two moments.

    Chooses by squared coefficient of variation: deterministic for SCV 0,
    Erlang for SCV < 1 (nearest stage count), exponential for SCV 1, and
    a balanced two-branch hyperexponential for SCV > 1.  This is how the
    simulator realizes the service-time moments the analytic model was
    fed, closing the loop between the two.
    """
    if mean <= 0.0:
        raise ValidationError("mean must be positive")
    if second_moment < mean**2:
        raise ValidationError("second moment must be >= mean**2")
    scv = (second_moment - mean**2) / mean**2
    if scv < 1e-9:
        return Deterministic(mean)
    if abs(scv - 1.0) < 1e-9:
        return Exponential(mean)
    if scv < 1.0:
        stages = max(1, round(1.0 / scv))
        return Erlang(stages=stages, mean_value=mean)
    # Balanced-means hyperexponential fit for SCV > 1 (standard
    # two-moment fit with p1/m1 = p2/m2 symmetry).
    skew = math.sqrt((scv - 1.0) / (scv + 1.0))
    p1 = 0.5 * (1.0 + skew)
    p2 = 1.0 - p1
    m1 = mean / (2.0 * p1)
    m2 = mean / (2.0 * p2)
    return HyperExponential((p1, p2), (m1, m2))
