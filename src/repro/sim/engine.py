"""Discrete-event simulation kernel.

A minimal but complete event calendar: events are scheduled at absolute
or relative times, executed in timestamp order (FIFO among ties, via a
monotone sequence number), and can be cancelled.  The simulated WFMS of
:mod:`repro.wfms` is built on top of this engine.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import obs
from repro.exceptions import ValidationError


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle to a scheduled event; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled execution time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled before dispatch."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event (idempotent; no-op if already executed)."""
        self._event.cancelled = True


class Simulator:
    """The event calendar: schedules and dispatches simulation events."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._sequence = 0
        self._calendar: list[_ScheduledEvent] = []
        self._executed_events = 0
        self._max_pending = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events dispatched so far."""
        return self._executed_events

    @property
    def pending_events(self) -> int:
        """Number of scheduled (possibly cancelled) future events."""
        return len(self._calendar)

    @property
    def max_pending_events(self) -> int:
        """High-water mark of the event calendar."""
        return self._max_pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        if delay < 0.0:
            raise ValidationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation time."""
        if time < self._now:
            raise ValidationError(
                f"cannot schedule into the past: {time} < now {self._now}"
            )
        event = _ScheduledEvent(
            time=time, sequence=self._sequence, callback=callback, args=args
        )
        self._sequence += 1
        heapq.heappush(self._calendar, event)
        if len(self._calendar) > self._max_pending:
            self._max_pending = len(self._calendar)
        return EventHandle(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the next event; returns False when the calendar is empty."""
        while self._calendar:
            event = heapq.heappop(self._calendar)
            if event.cancelled:
                continue
            self._now = event.time
            self._executed_events += 1
            event.callback(*event.args)
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Dispatch all events with time <= ``end_time``; advance the clock.

        The clock ends exactly at ``end_time`` even if the calendar holds
        later events (they remain scheduled).
        """
        if end_time < self._now:
            raise ValidationError(
                f"end_time {end_time} lies before now {self._now}"
            )
        executed_before = self._executed_events
        while self._calendar:
            head = self._calendar[0]
            if head.cancelled:
                heapq.heappop(self._calendar)
                continue
            if head.time > end_time:
                break
            self.step()
        self._now = end_time
        obs.count(
            "sim.events_executed", self._executed_events - executed_before
        )
        obs.set_max("sim.calendar.max_pending", self._max_pending)

    def run(self, max_events: int | None = None) -> None:
        """Dispatch events until the calendar drains (or a cap is hit)."""
        dispatched = 0
        try:
            while self.step():
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    return
        finally:
            obs.count("sim.events_executed", dispatched)
            obs.set_max("sim.calendar.max_pending", self._max_pending)
