"""Discrete-event simulation kernel.

A minimal but complete event calendar: events are scheduled at absolute
or relative times, executed in timestamp order (FIFO among ties, via a
monotone sequence number), and can be cancelled.  The simulated WFMS of
:mod:`repro.wfms` is built on top of this engine.

The calendar is the simulator's hottest data structure, so events are
stored as plain four-slot lists ``[time, sequence, callback, args]``
rather than objects: heap ordering then reduces to C-level list
comparison on ``(time, sequence)`` (the unique sequence number breaks
ties FIFO and guarantees the comparison never reaches the callback
slot).  Cancellation is lazy — the callback slot is nulled in place and
the entry is dropped when it surfaces, with a compaction pass once
cancelled entries dominate the calendar — and the dispatch loops are
inlined with locally bound hot names.  None of this changes observable
behaviour: event order, RNG draw order, and all statistics are
byte-identical to the straightforward implementation.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from time import perf_counter
from typing import Any, Callable

from repro import obs
from repro.exceptions import ValidationError

#: Sentinel placed in the callback slot of a dispatched entry so that a
#: late ``EventHandle.cancel`` on an already-executed event stays a true
#: no-op (and never corrupts the live-event accounting).
_EXECUTED: Any = object()


class EventHandle:
    """Handle to a scheduled event; allows cancellation."""

    __slots__ = ("_simulator", "_entry")

    def __init__(self, simulator: "Simulator", entry: list) -> None:
        self._simulator = simulator
        self._entry = entry

    @property
    def time(self) -> float:
        """Scheduled execution time."""
        return self._entry[0]

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled before dispatch."""
        return self._entry[2] is None

    def cancel(self) -> None:
        """Cancel the event (idempotent; no-op if already executed)."""
        entry = self._entry
        callback = entry[2]
        if callback is None or callback is _EXECUTED:
            return
        entry[2] = None
        entry[3] = ()
        self._simulator._note_cancel()


class Simulator:
    """The event calendar: schedules and dispatches simulation events.

    ``now`` (the current simulation time) is a plain attribute rather
    than a property: it is read on essentially every event, and the
    server/runtime layers read it directly.  Treat it as read-only —
    only the dispatch loops advance the clock.
    """

    __slots__ = (
        "now",
        "_sequence",
        "_calendar",
        "_executed_events",
        "_max_pending",
        "_cancelled_pending",
        "_dispatch_events",
        "_dispatch_seconds",
    )

    #: Lazy-deleted entries are compacted out of the calendar once at
    #: least this many are pending *and* they make up the majority of it.
    COMPACTION_THRESHOLD = 64

    def __init__(self, start_time: float = 0.0) -> None:
        #: Current simulation time (read-only outside the engine).
        self.now = start_time
        self._sequence = 0
        self._calendar: list[list] = []
        self._executed_events = 0
        self._max_pending = 0
        self._cancelled_pending = 0
        self._dispatch_events = 0
        self._dispatch_seconds = 0.0

    @property
    def executed_events(self) -> int:
        """Number of events dispatched so far."""
        return self._executed_events

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) scheduled future events."""
        return len(self._calendar) - self._cancelled_pending

    @property
    def max_pending_events(self) -> int:
        """High-water mark of live events in the calendar."""
        return self._max_pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        if delay < 0.0:
            raise ValidationError(f"delay must be >= 0, got {delay}")
        calendar = self._calendar
        entry = [self.now + delay, self._sequence, callback, args]
        self._sequence += 1
        heappush(calendar, entry)
        live = len(calendar) - self._cancelled_pending
        if live > self._max_pending:
            self._max_pending = live
        return EventHandle(self, entry)

    def post(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` with no cancellation handle.

        Identical to :meth:`schedule` except that no :class:`EventHandle`
        is allocated.  Most events are fire-and-forget (arrivals, load
        requests, failure timers), so the hot paths use this variant and
        reserve :meth:`schedule` for events that may be cancelled.
        """
        if delay < 0.0:
            raise ValidationError(f"delay must be >= 0, got {delay}")
        calendar = self._calendar
        heappush(
            calendar, [self.now + delay, self._sequence, callback, args]
        )
        self._sequence += 1
        live = len(calendar) - self._cancelled_pending
        if live > self._max_pending:
            self._max_pending = live

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation time."""
        if time < self.now:
            raise ValidationError(
                f"cannot schedule into the past: {time} < now {self.now}"
            )
        calendar = self._calendar
        entry = [time, self._sequence, callback, args]
        self._sequence += 1
        heappush(calendar, entry)
        live = len(calendar) - self._cancelled_pending
        if live > self._max_pending:
            self._max_pending = live
        return EventHandle(self, entry)

    # ------------------------------------------------------------------
    # Cancellation bookkeeping (called by EventHandle.cancel)
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Count a lazy deletion; compact once cancellations dominate."""
        cancelled = self._cancelled_pending + 1
        self._cancelled_pending = cancelled
        calendar = self._calendar
        if (
            cancelled >= self.COMPACTION_THRESHOLD
            and 2 * cancelled >= len(calendar)
        ):
            # In-place so dispatch loops holding a reference keep seeing
            # the same list object.
            calendar[:] = [e for e in calendar if e[2] is not None]
            heapify(calendar)
            self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the next event; returns False when the calendar is empty."""
        calendar = self._calendar
        while calendar:
            entry = heappop(calendar)
            callback = entry[2]
            if callback is None:
                self._cancelled_pending -= 1
                continue
            entry[2] = _EXECUTED
            self.now = entry[0]
            self._executed_events += 1
            callback(*entry[3])
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Dispatch all events with time <= ``end_time``; advance the clock.

        The clock ends exactly at ``end_time`` even if the calendar holds
        later events (they remain scheduled).
        """
        if end_time < self.now:
            raise ValidationError(
                f"end_time {end_time} lies before now {self.now}"
            )
        observing = obs.is_enabled()
        started_wall = perf_counter() if observing else 0.0
        calendar = self._calendar
        pop = heappop
        executed = 0
        try:
            while calendar:
                entry = calendar[0]
                if entry[0] > end_time:
                    break
                pop(calendar)
                callback = entry[2]
                if callback is None:
                    self._cancelled_pending -= 1
                    continue
                entry[2] = _EXECUTED
                self.now = entry[0]
                executed += 1
                callback(*entry[3])
        finally:
            self._executed_events += executed
        self.now = end_time
        if observing:
            self._flush_obs(executed, perf_counter() - started_wall)

    def run(self, max_events: int | None = None) -> None:
        """Dispatch events until the calendar drains (or a cap is hit)."""
        observing = obs.is_enabled()
        started_wall = perf_counter() if observing else 0.0
        calendar = self._calendar
        pop = heappop
        executed = 0
        try:
            while calendar:
                entry = pop(calendar)
                callback = entry[2]
                if callback is None:
                    self._cancelled_pending -= 1
                    continue
                entry[2] = _EXECUTED
                self.now = entry[0]
                executed += 1
                callback(*entry[3])
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._executed_events += executed
            if observing:
                self._flush_obs(executed, perf_counter() - started_wall)

    # ------------------------------------------------------------------
    # Batched observability flush (one call per dispatch loop, never
    # per event)
    # ------------------------------------------------------------------
    def _flush_obs(self, executed: int, wall_seconds: float) -> None:
        """Record the dispatch batch's metrics in one shot."""
        self._dispatch_events += executed
        self._dispatch_seconds += wall_seconds
        obs.count("sim.events_executed", executed)
        obs.set_max("sim.calendar.max_pending", self._max_pending)
        if self._dispatch_seconds > 0.0 and self._dispatch_events:
            obs.set_gauge(
                "sim.events_per_second",
                self._dispatch_events / self._dispatch_seconds,
            )
