"""Deterministic derivation of independent random streams.

The simulator keeps one :class:`random.Random` per logical stream
(arrivals, branching, durations, ...) so that runs over different
configurations stay comparable.  Deriving those stream seeds as
``seed + k`` is a classic hazard: two master seeds that differ by less
than the number of streams *share* sub-streams (master seed 0's stream 1
is master seed 1's stream 0), so "independent" replications with
adjacent seeds are silently correlated.

This module derives stream seeds by hashing the ``(master seed,
stream name, ...)`` tuple with SHA-256 instead: any change in the master
seed or in any component yields an unrelated 64-bit seed, and the
derivation is stable across processes and Python versions (unlike
``hash()``, which is salted per process).
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_rng", "derive_seed"]

#: Number of digest bytes folded into the derived seed (64 bits).
_SEED_BYTES = 8


def derive_seed(master: int, *components: object) -> int:
    """Derive a 64-bit stream seed from a master seed and a stream key.

    ``components`` name the stream (strings, integers, ... — anything
    with a stable ``str()``).  The derivation is injective in practice:
    distinct ``(master, components)`` tuples map to unrelated seeds, so
    ``derive_seed(0, "branch") != derive_seed(1, "arrival")`` even
    though naive ``seed + offset`` schemes would collide there.
    """
    material = "\x1f".join(
        [str(int(master))] + [str(component) for component in components]
    )
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")


def derive_rng(master: int, *components: object) -> random.Random:
    """A :class:`random.Random` seeded with :func:`derive_seed`."""
    return random.Random(derive_seed(master, *components))
