"""Vectorized block pre-drawing of random variates (the fast-RNG mode).

The exact simulation mode draws one variate at a time from
:class:`random.Random` so that results are *bit-identical* to the
reference implementation (see :mod:`repro.sim.distributions`).  That
contract costs a Python-level RNG call per event — the dominant residue
of the hot path once the calendar and samplers are compiled.  This
module provides the statistically-equivalent-but-not-bit-identical
alternative used by ``rng_mode="fast"``:

* :class:`VariateStream` — one pre-drawn block of variates per
  ``(family, params)`` pair, backed by ``numpy.random.Generator`` over
  PCG64 and refilled in configurable blocks (default
  :data:`DEFAULT_BLOCK_SIZE`); ``next()`` is an amortized O(1) list
  index.
* :class:`FastRng` — a drop-in stand-in for the subset of the
  :class:`random.Random` API the simulation layers use
  (``random``/``uniform``/``expovariate``/``lognormvariate``/
  ``paretovariate``/``choice``/``choices``), each method served from
  its own named block stream, plus :meth:`FastRng.stream_for`, the
  hook :meth:`repro.sim.distributions.Distribution.sampler` dispatches
  to.

Determinism contract: every stream is seeded with
:func:`repro.sim.seeding.derive_seed` over ``(master seed, scope,
stream key)``, so a fast-mode run is a pure function of its master
seed — independent of dict iteration order, flush boundaries, or
campaign worker counts.  Fast mode is *not* bit-identical to exact
mode (different generators, different draw order); it carries its own
golden documents.
"""

from __future__ import annotations

import math
from bisect import bisect
from itertools import accumulate
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.sim.seeding import derive_seed

__all__ = ["DEFAULT_BLOCK_SIZE", "FastRng", "VariateStream"]

#: Variates drawn per refill of a :class:`VariateStream`.
DEFAULT_BLOCK_SIZE = 4096


class VariateStream:
    """One pre-drawn variate stream with amortized O(1) ``next()``.

    ``draw(generator, n)`` must return an ndarray of ``n`` variates;
    the stream converts each block to a plain Python list once (so the
    values handed out are ``float``, not numpy scalars — downstream
    statistics and the event calendar stay numpy-free) and serves it
    by index until the next refill.
    """

    __slots__ = (
        "_generator", "_draw", "_block_size", "_buffer", "_index",
        "blocks_drawn", "_served_base",
    )

    def __init__(
        self,
        generator: np.random.Generator,
        draw: Callable[[np.random.Generator, int], np.ndarray],
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if block_size < 1:
            raise ValidationError("block_size must be >= 1")
        self._generator = generator
        self._draw = draw
        self._block_size = block_size
        self._buffer: list[float] = []
        self._index = 0
        #: Number of block refills performed so far.
        self.blocks_drawn = 0
        self._served_base = 0

    def next(self) -> float:
        """The next variate (refills one block when the buffer is dry)."""
        index = self._index
        buffer = self._buffer
        if index == len(buffer):
            buffer = self._draw(
                self._generator, self._block_size
            ).tolist()
            self._buffer = buffer
            self._served_base += index
            self.blocks_drawn += 1
            index = 0
        self._index = index + 1
        return buffer[index]

    def take(self, count: int) -> list[float]:
        """``count`` variates at once (bulk variant of :meth:`next`)."""
        if count < 0:
            raise ValidationError("count must be >= 0")
        index = self._index
        end = index + count
        if end <= len(self._buffer):
            # Common case: the request fits the current buffer.
            self._index = end
            return self._buffer[index:end]
        out: list[float] = []
        while len(out) < count:
            index = self._index
            buffer = self._buffer
            if index == len(buffer):
                buffer = self._draw(
                    self._generator, self._block_size
                ).tolist()
                self._buffer = buffer
                self._served_base += index
                self.blocks_drawn += 1
                index = 0
            end = min(len(buffer), index + count - len(out))
            out.extend(buffer[index:end])
            self._index = end
        return out

    @property
    def variates_served(self) -> int:
        """Total variates handed out so far."""
        return self._served_base + self._index


# ----------------------------------------------------------------------
# Per-family block draws
# ----------------------------------------------------------------------
def _hyperexp_draw(
    probabilities: Sequence[float], means: Sequence[float]
) -> Callable[[np.random.Generator, int], np.ndarray]:
    """Vectorized hyperexponential: branch pick + scaled exponential.

    The branch index comes from one uniform per variate searched into
    the cumulative branch probabilities (``side="right"`` mirrors how
    ``random.choices`` bisects), then a standard exponential is scaled
    by the selected branch mean — exactly the mixture
    :meth:`repro.sim.distributions.HyperExponential.sample` draws one
    at a time.
    """
    cumulative = np.cumsum(np.asarray(probabilities, dtype=float))
    cumulative[-1] = 1.0  # guard the top edge against rounding
    branch_means = np.asarray(means, dtype=float)
    top = len(means) - 1

    def draw(generator: np.random.Generator, n: int) -> np.ndarray:
        picks = np.searchsorted(
            cumulative, generator.random(n), side="right"
        )
        if top:
            np.clip(picks, 0, top, out=picks)
        return generator.standard_exponential(n) * branch_means[picks]

    return draw


def _family_stream_spec(distribution) -> tuple[tuple, Callable] | None:
    """``(stream key, block draw)`` for a known distribution family.

    Returns ``None`` for unknown families; :meth:`FastRng.stream_for`
    then falls back to scalar ``sample`` calls against the
    :class:`FastRng` facade (still deterministic, just not block-drawn).
    """
    # Local import: distributions must not import numpy, so the
    # dependency points this way only.
    from repro.sim import distributions as dist

    if isinstance(distribution, dist.Exponential):
        mean = distribution.mean_value
        return (
            ("exponential", mean),
            lambda generator, n: generator.exponential(mean, n),
        )
    if isinstance(distribution, dist.Uniform):
        low, high = distribution.low, distribution.high
        return (
            ("uniform", low, high),
            lambda generator, n: generator.uniform(low, high, n),
        )
    if isinstance(distribution, dist.Erlang):
        stages = distribution.stages
        scale = distribution.mean_value / stages
        return (
            ("erlang", stages, distribution.mean_value),
            lambda generator, n: generator.gamma(stages, scale, n),
        )
    if isinstance(distribution, dist.HyperExponential):
        return (
            (
                "hyperexponential",
                distribution.branch_probabilities,
                distribution.branch_means,
            ),
            _hyperexp_draw(
                distribution.branch_probabilities,
                distribution.branch_means,
            ),
        )
    if isinstance(distribution, dist.LogNormal):
        mu, sigma = distribution._parameters()
        return (
            ("lognormal", mu, sigma),
            lambda generator, n: generator.lognormal(mu, sigma, n),
        )
    if isinstance(distribution, dist.Pareto):
        shape, minimum = distribution.shape, distribution.minimum
        return (
            ("pareto", shape, minimum),
            lambda generator, n: (generator.pareto(shape, n) + 1.0)
            * minimum,
        )
    return None


# ----------------------------------------------------------------------
# FastRng
# ----------------------------------------------------------------------
class FastRng:
    """Block-drawing stand-in for one logical ``random.Random`` stream.

    Construct one per logical stream — ``FastRng(seed, "arrival")``,
    ``FastRng(seed, "service", "wf-engine#0")`` — exactly where the
    exact mode would call :func:`repro.sim.seeding.derive_rng`.  Each
    *kind* of draw (standard uniform, standard exponential, one
    ``(family, params)`` distribution…) gets its own
    :class:`VariateStream` seeded from ``derive_seed(seed, "fastdraw",
    *scope, *key)``, so the variates served are independent of the
    order in which streams are first touched.
    """

    def __init__(
        self, seed: int, *scope, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> None:
        if block_size < 1:
            raise ValidationError("block_size must be >= 1")
        self._seed = seed
        self._scope = tuple(scope)
        self._block_size = block_size
        self._streams: dict[tuple, VariateStream] = {}
        self._uniform_next: Callable[[], float] | None = None
        self._standard_exp_next: Callable[[], float] | None = None

    # ------------------------------------------------------------------
    # Stream plumbing
    # ------------------------------------------------------------------
    def _stream(
        self,
        key: tuple,
        draw: Callable[[np.random.Generator, int], np.ndarray],
    ) -> VariateStream:
        """The (lazily created) stream registered under ``key``."""
        stream = self._streams.get(key)
        if stream is None:
            bits = derive_seed(self._seed, "fastdraw", *self._scope, *key)
            stream = VariateStream(
                np.random.Generator(np.random.PCG64(bits)),
                draw,
                self._block_size,
            )
            self._streams[key] = stream
        return stream

    def _uniform_stream_next(self) -> Callable[[], float]:
        """Bound ``next`` of the shared standard-uniform stream."""
        if self._uniform_next is None:
            self._uniform_next = self._stream(
                ("u01",), lambda generator, n: generator.random(n)
            ).next
        return self._uniform_next

    def _standard_exp_stream_next(self) -> Callable[[], float]:
        """Bound ``next`` of the shared standard-exponential stream."""
        if self._standard_exp_next is None:
            self._standard_exp_next = self._stream(
                ("stdexp",),
                lambda generator, n: generator.standard_exponential(n),
            ).next
        return self._standard_exp_next

    def variate_stream(self, distribution) -> VariateStream | None:
        """The block stream serving ``distribution``, or ``None``.

        ``None`` means the family has no vectorized stream
        (:class:`~repro.sim.distributions.Deterministic` or an unknown
        user-defined family); callers needing bulk draws
        (:meth:`VariateStream.take`) fall back to repeated scalar
        sampling in that case.
        """
        spec = _family_stream_spec(distribution)
        if spec is None:
            return None
        key, draw = spec
        return self._stream(key, draw)

    def stream_for(self, distribution) -> Callable[[], float]:
        """A zero-argument block-drawing sampler for ``distribution``.

        This is the hook
        :meth:`repro.sim.distributions.Distribution.sampler` duck-types
        on: every known family gets a dedicated vectorized stream;
        :class:`~repro.sim.distributions.Deterministic` needs no stream
        at all; unknown (user-defined) families fall back to their own
        scalar ``sample`` against this facade.
        """
        from repro.sim.distributions import Deterministic

        if isinstance(distribution, Deterministic):
            value = distribution.value
            return lambda: value
        spec = _family_stream_spec(distribution)
        if spec is None:
            sample = distribution.sample
            return lambda: sample(self)
        key, draw = spec
        return self._stream(key, draw).next

    # ------------------------------------------------------------------
    # random.Random-compatible subset
    # ------------------------------------------------------------------
    def random(self) -> float:
        """Standard uniform on ``[0, 1)`` from the shared u01 stream."""
        nxt = self._uniform_next
        if nxt is None:
            nxt = self._uniform_stream_next()
        return nxt()

    def random_block(self, count: int) -> list[float]:
        """``count`` standard uniforms at once (bulk :meth:`random`).

        Served from the same u01 stream as :meth:`random` /
        :meth:`uniform`, so mixing scalar and block consumption yields
        the same variate sequence as all-scalar consumption.
        """
        return self.u01_stream().take(count)

    def u01_stream(self) -> VariateStream:
        """The shared standard-uniform stream (for hot-path binding).

        Callers on a per-request hot path bind ``next``/``take`` of the
        returned stream directly, skipping the facade dispatch of
        :meth:`random` / :meth:`random_block`; mixing both access forms
        still consumes one common variate sequence.
        """
        if self._uniform_next is None:
            self._uniform_stream_next()
        return self._streams[("u01",)]

    def uniform(self, a: float, b: float) -> float:
        """Uniform on ``[a, b]`` (scaled standard uniform)."""
        nxt = self._uniform_next
        if nxt is None:
            nxt = self._uniform_stream_next()
        return a + (b - a) * nxt()

    def expovariate(self, lambd: float) -> float:
        """Exponential with rate ``lambd`` (scaled standard exponential)."""
        nxt = self._standard_exp_next
        if nxt is None:
            nxt = self._standard_exp_stream_next()
        return nxt() / lambd

    def lognormvariate(self, mu: float, sigma: float) -> float:
        """Log-normal variate from the ``(mu, sigma)`` stream."""
        return self._stream(
            ("lognormal", mu, sigma),
            lambda generator, n: generator.lognormal(mu, sigma, n),
        ).next()

    def normalvariate(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Normal variate from the ``(mu, sigma)`` stream."""
        return self._stream(
            ("normal", mu, sigma),
            lambda generator, n: generator.normal(mu, sigma, n),
        ).next()

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Alias of :meth:`normalvariate` (block streams have no state)."""
        return self.normalvariate(mu, sigma)

    def paretovariate(self, alpha: float) -> float:
        """Pareto variate with minimum 1 (matching ``random.Random``)."""
        return self._stream(
            ("paretovariate", alpha),
            lambda generator, n: generator.pareto(alpha, n) + 1.0,
        ).next()

    def gammavariate(self, alpha: float, beta: float) -> float:
        """Gamma variate with shape ``alpha`` and scale ``beta``."""
        return self._stream(
            ("gamma", alpha, beta),
            lambda generator, n: generator.gamma(alpha, beta, n),
        ).next()

    def choice(self, sequence):
        """Uniformly random element of a non-empty sequence."""
        if not sequence:
            raise IndexError("cannot choose from an empty sequence")
        index = int(self.random() * len(sequence))
        if index == len(sequence):  # pragma: no cover - u < 1 guard
            index -= 1
        return sequence[index]

    def choices(self, population, weights=None, *, cum_weights=None, k=1):
        """Weighted sampling with replacement (``random.choices`` subset)."""
        if cum_weights is None:
            if weights is None:
                return [self.choice(population) for _ in range(k)]
            cum_weights = list(accumulate(weights))
        elif weights is not None:
            raise TypeError(
                "cannot specify both weights and cumulative weights"
            )
        if len(cum_weights) != len(population):
            raise ValueError(
                "the number of weights does not match the population"
            )
        total = cum_weights[-1] + 0.0
        if total <= 0.0:
            raise ValueError("total of weights must be greater than zero")
        if not math.isfinite(total):
            raise ValueError("total of weights must be finite")
        hi = len(population) - 1
        rand = self.random
        return [
            population[bisect(cum_weights, rand() * total, 0, hi)]
            for _ in range(k)
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def blocks_drawn(self) -> int:
        """Total block refills across every stream of this FastRng."""
        return sum(s.blocks_drawn for s in self._streams.values())

    @property
    def variates_served(self) -> int:
        """Total variates handed out across every stream."""
        return sum(s.variates_served for s in self._streams.values())
