"""Discrete-event simulation kernel: engine, distributions, statistics."""

from repro.sim.distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    HyperExponential,
    LogNormal,
    Uniform,
    distribution_for_moments,
)
from repro.sim.engine import EventHandle, Simulator
from repro.sim.statistics import (
    RateCounter,
    RunningStats,
    TimeWeightedStats,
)

__all__ = [
    "Deterministic",
    "Distribution",
    "Erlang",
    "EventHandle",
    "Exponential",
    "HyperExponential",
    "LogNormal",
    "RateCounter",
    "RunningStats",
    "Simulator",
    "TimeWeightedStats",
    "Uniform",
    "distribution_for_moments",
]
