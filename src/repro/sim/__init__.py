"""Discrete-event simulation kernel: engine, distributions, statistics."""

from repro.sim.distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    HyperExponential,
    LogNormal,
    Uniform,
    distribution_for_moments,
)
from repro.sim.engine import EventHandle, Simulator
from repro.sim.seeding import derive_rng, derive_seed
from repro.sim.statistics import (
    RateCounter,
    RunningStats,
    TimeWeightedStats,
)

__all__ = [
    "Deterministic",
    "Distribution",
    "Erlang",
    "EventHandle",
    "Exponential",
    "HyperExponential",
    "LogNormal",
    "RateCounter",
    "RunningStats",
    "Simulator",
    "TimeWeightedStats",
    "Uniform",
    "derive_rng",
    "derive_seed",
    "distribution_for_moments",
]
