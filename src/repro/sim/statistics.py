"""Online statistics collectors for simulation measurements.

Collects exactly the quantities the paper's calibration component needs
(Section 7.1): first and second moments of observed durations (service
times, waiting times), time-weighted averages (utilization, availability),
and event counts/rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ValidationError

try:  # numpy accelerates the block paths but is not required here
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    np = None

#: Two-sided 95% normal quantile used for confidence intervals.
NORMAL_QUANTILE_95 = 1.959963984540054


class RunningStats:
    """Streaming mean / variance / second moment (Welford's algorithm)."""

    __slots__ = (
        "_count", "_mean", "_m2", "_sum_squares", "_minimum", "_maximum"
    )

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0  # sum of squared deviations from the running mean
        self._sum_squares = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf

    def add(self, value: float) -> None:
        """Record one observation."""
        count = self._count + 1
        self._count = count
        delta = value - self._mean
        mean = self._mean + delta / count
        self._mean = mean
        self._m2 += delta * (value - mean)
        self._sum_squares += value * value
        if value < self._minimum:
            self._minimum = value
        if value > self._maximum:
            self._maximum = value

    def add_block(self, values) -> None:
        """Record a whole block of observations in one vectorized step.

        Computes the block's count/mean/M2/extrema with numpy reductions
        and folds them in via the same Chan–Golub–LeVeque combination as
        :meth:`merge` — the buffered flush path of the fast-RNG
        simulation mode, where per-observation :meth:`add` calls are the
        measured hot spot.  The result is statistically identical to
        adding the values one by one but not bitwise so (different
        summation order); exact-mode collectors therefore never use it.
        Falls back to scalar :meth:`add` when numpy is unavailable.
        """
        if np is None:
            for value in values:
                self.add(value)
            return
        block = np.asarray(values, dtype=float)
        count = block.size
        if count == 0:
            return
        mean = float(block.mean())
        centered = block - mean
        m2 = float(centered.dot(centered))
        minimum = float(block.min())
        maximum = float(block.max())
        sum_squares = float(block.dot(block))
        if self._count == 0:
            self._count = count
            self._mean = mean
            self._m2 = m2
        else:
            total = self._count + count
            delta = mean - self._mean
            self._m2 += m2 + delta * delta * self._count * count / total
            self._mean = (
                self._count * self._mean + count * mean
            ) / total
            self._count = total
        self._sum_squares += sum_squares
        if minimum < self._minimum:
            self._minimum = minimum
        if maximum > self._maximum:
            self._maximum = maximum

    @property
    def count(self) -> int:
        """Number of accumulated values."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def second_moment(self) -> float:
        """Raw second moment ``E[X^2]`` estimate."""
        if not self._count:
            return 0.0
        return self._sum_squares / self._count

    @property
    def variance(self) -> float:
        """Unbiased sample variance."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def standard_deviation(self) -> float:
        """Square root of the unbiased sample variance."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest accumulated value (NaN when empty)."""
        return self._minimum if self._count else math.nan

    @property
    def maximum(self) -> float:
        """Largest accumulated value (NaN when empty)."""
        return self._maximum if self._count else math.nan

    def confidence_interval_95(self) -> tuple[float, float]:
        """Normal-approximation 95% CI of the mean."""
        if self._count < 2:
            return (self.mean, self.mean)
        half_width = NORMAL_QUANTILE_95 * self.standard_deviation / math.sqrt(
            self._count
        )
        return (self.mean - half_width, self.mean + half_width)

    def merge(self, other: "RunningStats") -> None:
        """Fold another collector into this one.

        After merging, this collector reports the same count, mean,
        variance, second moment, and extrema as one that observed both
        sample sequences (the parallel-variance combination of Chan,
        Golub & LeVeque).  ``other`` is left untouched.  Merging is the
        campaign runner's aggregation primitive: replications collect
        independently (possibly in different processes) and are folded
        together afterwards.
        """
        if other._count == 0:
            return
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            self._sum_squares = other._sum_squares
            self._minimum = other._minimum
            self._maximum = other._maximum
            return
        total = self._count + other._count
        delta = other._mean - self._mean
        self._m2 = (
            self._m2
            + other._m2
            + delta * delta * self._count * other._count / total
        )
        self._mean = (
            self._count * self._mean + other._count * other._mean
        ) / total
        self._count = total
        self._sum_squares += other._sum_squares
        self._minimum = min(self._minimum, other._minimum)
        self._maximum = max(self._maximum, other._maximum)

    @classmethod
    def merged(cls, collectors: "list[RunningStats]") -> "RunningStats":
        """A fresh collector equal to merging ``collectors`` in order."""
        result = cls()
        for collector in collectors:
            result.merge(collector)
        return result

    def export_state(self) -> list[float]:
        """The collector's exact accumulator state, as a JSON list.

        The six accumulators are plain floats/ints that survive a JSON
        round-trip bit-for-bit (Python serializes floats with the
        shortest round-tripping ``repr``; empty-collector extrema are
        ``Infinity``/``-Infinity``, which :mod:`json` accepts), so
        :meth:`restore_state` rebuilds a collector whose every future
        observation produces bitwise-identical statistics.  This is the
        snapshot primitive of the always-on recommendation service's
        warm restart.
        """
        return [
            self._count,
            self._mean,
            self._m2,
            self._sum_squares,
            self._minimum,
            self._maximum,
        ]

    @classmethod
    def restore_state(cls, state: list[float]) -> "RunningStats":
        """Rebuild a collector from :meth:`export_state` output."""
        if len(state) != 6:
            raise ValidationError(
                f"RunningStats state needs 6 accumulators, got {len(state)}"
            )
        stats = cls()
        stats._count = int(state[0])
        stats._mean = float(state[1])
        stats._m2 = float(state[2])
        stats._sum_squares = float(state[3])
        stats._minimum = float(state[4])
        stats._maximum = float(state[5])
        return stats


class TimeWeightedStats:
    """Time-average of a piecewise-constant signal (utilization etc.).

    Call :meth:`update` whenever the signal changes; the value between
    updates is held constant.  :meth:`finalize` closes the observation
    window at the given time.
    """

    __slots__ = (
        "_value", "_last_time", "_start_time", "_weighted_sum",
        "_finalized_at", "_merged_weight", "_merged_duration",
    )

    def __init__(self, initial_value: float = 0.0, start_time: float = 0.0):
        self._value = initial_value
        self._last_time = start_time
        self._start_time = start_time
        self._weighted_sum = 0.0
        self._finalized_at: float | None = None
        # Closed windows folded in via merge (weight = value x duration).
        self._merged_weight = 0.0
        self._merged_duration = 0.0

    def update(self, value: float, time: float) -> None:
        """The signal takes ``value`` from ``time`` onwards."""
        last = self._last_time
        if time < last:
            raise ValidationError(
                f"time {time} precedes last update {last}"
            )
        self._weighted_sum += self._value * (time - last)
        self._value = value
        self._last_time = time

    def update_block(self, values, times) -> None:
        """Apply a whole batch of updates in one vectorized step.

        ``values[i]`` takes effect at ``times[i]``; times must be
        non-decreasing and start no earlier than the last update.  The
        result equals calling :meth:`update` pairwise (modulo float
        summation order), but the piecewise integral of the batch is
        computed with one dot product — the buffered busy-time flush of
        the fast-RNG simulation mode.  Falls back to scalar updates
        when numpy is unavailable.
        """
        if len(values) != len(times):
            raise ValidationError(
                "values and times must have the same length"
            )
        if not len(values):
            return
        if np is None or len(values) < 2:
            for value, time in zip(values, times):
                self.update(value, time)
            return
        time_array = np.asarray(times, dtype=float)
        if time_array[0] < self._last_time:
            raise ValidationError(
                f"time {time_array[0]} precedes last update "
                f"{self._last_time}"
            )
        if np.any(np.diff(time_array) < 0.0):
            raise ValidationError("times must be non-decreasing")
        value_array = np.asarray(values, dtype=float)
        # float(...) around the full increment: numpy scalars would
        # otherwise infect _weighted_sum (and every downstream document
        # value) with np.float64.
        self._weighted_sum += float(
            self._value * (time_array[0] - self._last_time)
            + value_array[:-1].dot(np.diff(time_array))
        )
        self._value = float(value_array[-1])
        self._last_time = float(time_array[-1])

    @property
    def current_value(self) -> float:
        """Level set by the most recent update."""
        return self._value

    def finalize(self, time: float) -> None:
        """Close the window; the signal held its value until ``time``."""
        self.update(self._value, time)
        self._finalized_at = time

    def time_average(self, until: float | None = None) -> float:
        """Time-weighted average over the observation window."""
        end = until if until is not None else (
            self._finalized_at
            if self._finalized_at is not None
            else self._last_time
        )
        if end < self._last_time:
            raise ValidationError("averaging window ends before last update")
        total = (end - self._start_time) + self._merged_duration
        if total <= 0.0:
            return self._value
        weighted = (
            self._weighted_sum
            + self._value * (end - self._last_time)
            + self._merged_weight
        )
        return weighted / total

    def merge(self, other: "TimeWeightedStats") -> None:
        """Fold another (disjoint) observation window into this one.

        The merged :meth:`time_average` is the duration-weighted average
        over both windows — exactly what pooling the same signal across
        independent replications requires.  ``other``'s window must be
        closed (:meth:`finalize` called); it is left untouched.
        """
        if other._finalized_at is None:
            raise ValidationError(
                "merge requires the other window to be finalized"
            )
        end = other._finalized_at
        self._merged_weight += (
            other._weighted_sum
            + other._value * (end - other._last_time)
            + other._merged_weight
        )
        self._merged_duration += (
            (end - other._start_time) + other._merged_duration
        )


@dataclass
class RateCounter:
    """Counts events and reports their rate over the observed window."""

    count: int = 0
    start_time: float = 0.0

    def record(self) -> None:
        """Count one event."""
        self.count += 1

    def rate(self, now: float) -> float:
        """Events per time unit since ``start_time``."""
        window = now - self.start_time
        if window <= 0.0:
            return 0.0
        return self.count / window
