"""The simulated distributed WFMS.

This is the measurement substrate standing in for the real products and
prototypes the authors benchmarked: a discrete-event simulation of the
architectural model of Section 2.  Workflow instances arrive as Poisson
processes, execute their state charts through the interpreter of
:mod:`repro.spec.interpreter` (probabilistic branch resolution realizes
exactly the annotated branching distribution), and every activity issues
its Figure-1-style service requests to the replicated server pools, where
they queue, get served, and are recorded into the audit trail.  Replicas
fail and are repaired with the Section 5 rates.

The run produces a :class:`~repro.wfms.measurement.WFMSMeasurementReport`
directly comparable with the analytic predictions, plus an
:class:`~repro.monitor.audit.AuditTrail` the calibration component can
re-estimate model parameters from.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Mapping

from repro import obs
from repro.core.model_types import ServerTypeIndex
from repro.core.performance import SystemConfiguration
from repro.exceptions import ValidationError
from repro.monitor.audit import (
    TERMINATION,
    AuditTrail,
    InstanceRecord,
    StateVisitRecord,
)
from repro.sim.distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    distribution_for_moments,
)
from repro.sim.engine import Simulator
from repro.sim.fastdraw import FastRng
from repro.sim.seeding import derive_rng
from repro.sim.statistics import RunningStats, TimeWeightedStats
from repro.spec.interpreter import (
    ActiveState,
    InterpreterListener,
    ProbabilisticResolver,
    StateChartInterpreter,
    StatePath,
)
from repro.spec.statechart import StateChart
from repro.spec.translator import (
    DEFAULT_ROUTING_DURATION,
    ActivityRegistry,
)
from repro.wfms.measurement import (
    ServerTypeMeasurement,
    WFMSMeasurementReport,
    WorkflowTypeMeasurement,
    pooled_ci95,
    pooled_mean,
)
from repro.wfms.fastsink import FastServer, FastServerPool
from repro.wfms.routing import RoutingPolicy, ServerPool
from repro.wfms.servers import FailureInjector, Server, ServiceRequest

#: Valid values of the ``rng_mode`` simulation parameter.
RNG_MODES = ("exact", "fast")


class DurationSampling(enum.Enum):
    """Distribution family for activity/state durations.

    ``EXPONENTIAL`` matches the CTMC's residence-time assumption exactly;
    the other families probe the analytic model's robustness against the
    Markov assumption being violated.
    """

    EXPONENTIAL = "exponential"
    DETERMINISTIC = "deterministic"
    ERLANG_2 = "erlang2"


@dataclass(frozen=True)
class SimulatedWorkflowType:
    """One workflow type offered to the simulated WFMS."""

    chart: StateChart
    activities: ActivityRegistry
    arrival_rate: float

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0.0:
            raise ValidationError(
                f"workflow {self.chart.name}: arrival rate must be positive"
            )


class SimulatedWFMS:
    """A running, replicated, failure-prone WFMS in simulation."""

    def __init__(
        self,
        server_types: ServerTypeIndex,
        configuration: SystemConfiguration,
        workflow_types: list[SimulatedWorkflowType],
        seed: int = 0,
        routing_policy: RoutingPolicy = RoutingPolicy.HASH,
        duration_sampling: DurationSampling = DurationSampling.EXPONENTIAL,
        inject_failures: bool = True,
        repair_distributions: Mapping[str, Distribution] | None = None,
        default_routing_duration: float = DEFAULT_ROUTING_DURATION,
        organization=None,
        activity_roles: Mapping[str, str] | None = None,
        worklist_policy=None,
        rng_mode: str = "exact",
        fast_block_size: int | None = None,
    ) -> None:
        if not workflow_types:
            raise ValidationError("at least one workflow type is required")
        names = [wft.chart.name for wft in workflow_types]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate workflow types in {names}")
        if rng_mode not in RNG_MODES:
            raise ValidationError(
                f"rng_mode must be one of {RNG_MODES}, got {rng_mode!r}"
            )
        if rng_mode == "fast" and organization is not None:
            raise ValidationError(
                "rng_mode='fast' does not support worklist management; "
                "use the exact mode for organizational experiments"
            )
        self.server_types = server_types
        self.configuration = configuration
        self.workflow_types = list(workflow_types)
        self.duration_sampling = duration_sampling
        self.default_routing_duration = default_routing_duration
        self.rng_mode = rng_mode
        fast = self._fast_mode = rng_mode == "fast"

        self.simulator = Simulator()
        self.trail = AuditTrail()
        # Independent random streams keep the comparison across runs with
        # different configurations as tight as possible.  Each stream is
        # seeded from a hash of (seed, stream name) — never seed+offset,
        # which would make replications with adjacent master seeds share
        # identical sub-streams (see repro.sim.seeding).  Fast mode swaps
        # in block-drawing FastRng streams under the same names (service
        # and failure streams become per-replica so the variates a
        # replica consumes are independent of replay flush boundaries).
        self._fast_rngs: list[FastRng] = []
        if fast:

            def fast_rng(*scope) -> FastRng:
                if fast_block_size is not None:
                    rng = FastRng(
                        seed, *scope, block_size=fast_block_size
                    )
                else:
                    rng = FastRng(seed, *scope)
                self._fast_rngs.append(rng)
                return rng

            self._arrival_rng = fast_rng("arrival")
            self._branch_rng = fast_rng("branch")
            self._duration_rng = fast_rng("duration")
            self._load_rng = fast_rng("load")
            # Bound u01-stream methods for the request-issue hot path.
            load_u01 = self._load_rng.u01_stream()
            self._load_u01_next = load_u01.next
            self._load_u01_take = load_u01.take
        else:
            self._arrival_rng = derive_rng(seed, "arrival")
            self._branch_rng = derive_rng(seed, "branch")
            self._duration_rng = derive_rng(seed, "duration")
            self._service_rng = derive_rng(seed, "service")
            self._failure_rng = derive_rng(seed, "failure")
            self._load_rng = derive_rng(seed, "load")

        self.pools: dict[str, ServerPool | FastServerPool] = {}
        self._injectors: list[FailureInjector] = []
        repair_distributions = dict(repair_distributions or {})
        for spec in server_types.specs:
            count = configuration.count(spec.name)
            if count < 1:
                raise ValidationError(
                    f"configuration must include at least one replica of "
                    f"{spec.name}"
                )
            service_distribution = distribution_for_moments(
                spec.mean_service_time, spec.second_moment_service_time
            )
            if fast:
                servers = [
                    FastServer(
                        simulator=self.simulator,
                        name=f"{spec.name}#{replica}",
                        spec=spec,
                        service_distribution=service_distribution,
                        rng=fast_rng("service", f"{spec.name}#{replica}"),
                        trail=self.trail,
                    )
                    for replica in range(count)
                ]
                pool = FastServerPool(
                    simulator=self.simulator,
                    spec=spec,
                    servers=servers,
                    policy=routing_policy,
                    rng=fast_rng("routing", spec.name),
                )
            else:
                servers = [
                    Server(
                        simulator=self.simulator,
                        name=f"{spec.name}#{replica}",
                        spec=spec,
                        service_distribution=service_distribution,
                        rng=self._service_rng,
                        trail=self.trail,
                    )
                    for replica in range(count)
                ]
                pool = ServerPool(
                    simulator=self.simulator,
                    spec=spec,
                    servers=servers,
                    policy=routing_policy,
                    rng=self._load_rng,
                )
            self.pools[spec.name] = pool
            if inject_failures and spec.failure_rate > 0.0:
                for server in servers:
                    self._injectors.append(
                        FailureInjector(
                            simulator=self.simulator,
                            server=server,
                            rng=(
                                fast_rng("failure", server.name)
                                if fast
                                else self._failure_rng
                            ),
                            repair_distribution=repair_distributions.get(
                                spec.name
                            ),
                            on_failure=self._on_server_failure,
                            on_repair=self._on_server_repair,
                        )
                    )

        # Optional worklist management for interactive activities: when
        # an organization is supplied, interactive activities compete for
        # actors instead of completing after their nominal duration —
        # surfacing the human-contention effect the paper's analytic
        # models deliberately exclude.
        self.worklist = None
        if organization is not None:
            from repro.org.worklist import (
                AssignmentPolicy,
                SimulatedWorklist,
            )

            self.worklist = SimulatedWorklist(
                simulator=self.simulator,
                organization=organization,
                activity_roles=activity_roles,
                policy=(worklist_policy if worklist_policy is not None
                        else AssignmentPolicy.LEAST_LOADED),
                rng=derive_rng(seed, "worklist"),
            )

        # Hot-path precomputation: the duration-sampler table (one
        # compiled closure per distinct mean, prepopulated from every
        # activity and chart state so steady-state runs never miss), the
        # per-type submit table (one dict lookup instead of pool
        # resolution per request), and the bound arrival sampler.
        self._duration_samplers: dict[float, Callable[[], float]] = {}
        for workflow_type in self.workflow_types:
            for activity in workflow_type.activities.activities.values():
                self._duration_sampler(activity.mean_duration)
            for chart in workflow_type.chart.walk_charts():
                for state in chart.states:
                    if state.mean_duration is not None:
                        self._duration_sampler(state.mean_duration)
        self._duration_sampler(self.default_routing_duration)
        if fast:
            self._pool_add = {
                name: pool.add_arrival
                for name, pool in self.pools.items()
            }
            # Direct append handles into each pool's arrival buffers:
            # replay_until() empties the lists with clear(), never
            # rebinds them, so the bound methods stay valid.
            self._pool_buffers = {
                name: (
                    pool._pending_times.append,
                    pool._pending_ids.append,
                )
                for name, pool in self.pools.items()
            }
        else:
            self._pool_submit = {
                name: pool.submit for name, pool in self.pools.items()
            }
        self._arrival_expovariate = self._arrival_rng.expovariate

        # Per-event observability is batched: plain-int tallies here,
        # flushed into the obs counters once per run (tracing events
        # stay per-instance but are guarded by one enabled check).
        self._obs_on = obs.is_enabled()
        self._obs_instances_started = 0
        self._obs_instances_completed = 0
        self._obs_requests_submitted = 0
        self._obs_blocks_flushed = 0
        self._obs_variates_flushed = 0

        self._next_instance_id = 0
        self._active_instances = 0
        self._turnarounds: dict[str, RunningStats] = {
            name: RunningStats() for name in names
        }
        self._completed: dict[str, int] = {name: 0 for name in names}
        self._system_up = TimeWeightedStats(1.0, 0.0)
        self._collect_from = 0.0
        self._collect_until = math.inf
        self._tracked_open = 0
        self._draining = False
        self._started = False

    # ------------------------------------------------------------------
    # Failure bookkeeping
    # ------------------------------------------------------------------
    def _on_server_state_change(self, server: Server) -> None:
        pool = self.pools[server.spec.name]
        pool.notify_state_change()
        if not self._draining:
            # The availability window is closed at the end of the
            # measurement period; drain-phase changes only affect routing.
            self._system_up.update(
                1.0 if all(p.any_up for p in self.pools.values()) else 0.0,
                self.simulator.now,
            )

    def _on_server_failure(self, server: Server) -> None:
        if self._obs_on:
            obs.count("wfms.server_failures")
            obs.event(
                "server_failure", t=self.simulator.now, server=server.name
            )
        self._on_server_state_change(server)

    def _on_server_repair(self, server: Server) -> None:
        if self._obs_on:
            obs.count("wfms.server_repairs")
            obs.event(
                "server_repair", t=self.simulator.now, server=server.name
            )
        self._on_server_state_change(server)

    # ------------------------------------------------------------------
    # Workflow arrivals and execution
    # ------------------------------------------------------------------
    def _schedule_arrival(self, workflow_type: SimulatedWorkflowType) -> None:
        delay = self._arrival_expovariate(workflow_type.arrival_rate)
        self.simulator.post(delay, self._arrive, workflow_type)

    def _arrive(self, workflow_type: SimulatedWorkflowType) -> None:
        self._start_instance(workflow_type)
        self._schedule_arrival(workflow_type)

    def _in_window(self, started_at: float) -> bool:
        """Whether an instance started inside the measurement window."""
        return self._collect_from <= started_at < self._collect_until

    def _start_instance(self, workflow_type: SimulatedWorkflowType) -> None:
        instance_id = self._next_instance_id
        self._next_instance_id = instance_id + 1
        self._active_instances += 1
        now = self.simulator.now
        if self._collect_from <= now < self._collect_until:
            self._tracked_open += 1
        self._obs_instances_started += 1
        if self._obs_on:
            obs.event(
                "instance_started",
                t=now,
                instance=instance_id,
                workflow=workflow_type.chart.name,
            )
        runtime = _InstanceRuntime(self, workflow_type, instance_id)
        runtime.start()

    def _duration_sampler(self, mean: float) -> Callable[[], float]:
        """The compiled duration sampler for ``mean`` (built on demand).

        Samplers are keyed by the mean and bound to the duration RNG, so
        the draw stream is identical to constructing a fresh distribution
        per sample — minus the per-sample dataclass allocation.
        """
        sampler = self._duration_samplers.get(mean)
        if sampler is None:
            family = self.duration_sampling
            if family is DurationSampling.EXPONENTIAL:
                distribution: Distribution = Exponential(mean)
            elif family is DurationSampling.DETERMINISTIC:
                distribution = Deterministic(mean)
            else:
                distribution = Erlang(2, mean)
            sampler = distribution.sampler(self._duration_rng)
            self._duration_samplers[mean] = sampler
        return sampler

    def sample_duration(self, mean: float) -> float:
        """Sample a state/activity duration of the configured family."""
        sampler = self._duration_samplers.get(mean)
        if sampler is None:
            sampler = self._duration_sampler(mean)
        return sampler()

    def submit_request(self, server_type: str, instance_id: int) -> None:
        """Issue one service request to a server type's pool."""
        if self._fast_mode:
            try:
                add = self._pool_add[server_type]
            except KeyError:
                raise ValidationError(
                    f"unknown server type {server_type!r}"
                ) from None
            self._obs_requests_submitted += 1
            add(self.simulator.now, instance_id)
            return
        try:
            submit = self._pool_submit[server_type]
        except KeyError:
            raise ValidationError(
                f"unknown server type {server_type!r}"
            ) from None
        self._obs_requests_submitted += 1
        submit(
            ServiceRequest(
                server_type=server_type,
                instance_id=instance_id,
                submitted_at=self.simulator.now,
            )
        )

    def integer_load(self, expected_requests: float) -> int:
        """Randomized rounding: the mean equals the fractional load."""
        whole = int(math.floor(expected_requests))
        fraction = expected_requests - whole
        if fraction > 0.0 and self._load_rng.random() < fraction:
            whole += 1
        return whole

    # ------------------------------------------------------------------
    # Running and reporting
    # ------------------------------------------------------------------
    #: Safety bound of the drain phase, as a multiple of the measured
    #: duration: a workflow whose turnaround tail exceeds this is broken.
    DRAIN_LIMIT_FACTOR = 50.0

    def run(
        self, duration: float, warmup: float = 0.0
    ) -> WFMSMeasurementReport:
        """Run for ``warmup + duration`` and report the post-warm-up window.

        Instances are counted by *start* time: every instance started
        inside the measurement window is followed to completion (the
        simulation drains past the window end until the cohort is
        complete), so turnaround statistics carry no end-of-run
        censoring bias — long-running instances are never silently
        dropped.  Server utilization, waiting, and availability are
        measured over the window itself.
        """
        if duration <= 0.0:
            raise ValidationError("duration must be positive")
        if warmup < 0.0:
            raise ValidationError("warmup must be >= 0")
        if self._started:
            raise ValidationError("this WFMS instance was already run")
        self._started = True
        self._obs_on = obs.is_enabled()
        with obs.span(
            "wfms.run", duration=duration, warmup=warmup
        ) as span:
            try:
                self._collect_from = warmup
                self._collect_until = warmup + duration
                for workflow_type in self.workflow_types:
                    self._schedule_arrival(workflow_type)
                for injector in self._injectors:
                    injector.start()
                if warmup > 0.0:
                    self.simulator.run_until(warmup)
                    self._reset_statistics()
                end = warmup + duration
                self.simulator.run_until(end)
                if self._fast_mode:
                    # Fast mode buffers service requests instead of
                    # simulating them per event: replay the queueing
                    # dynamics up to the window end so the measurement
                    # snapshot below sees the same state the exact mode
                    # would have accumulated event by event.
                    for pool in self.pools.values():
                        pool.replay_until(end)
                # Window-scoped measurements are taken now; the drain
                # below only completes the in-flight instance cohort.
                server_measurements = self._measure_servers(end)
                self._system_up.finalize(end)
                system_unavailability = 1.0 - self._system_up.time_average()
                self._drain(duration, end)
                if self._fast_mode:
                    # Complete the drained cohort's requests so the audit
                    # trail covers them (measurements are already taken).
                    for pool in self.pools.values():
                        pool.replay_until(self.simulator.now)
                span.set("events", self.logical_events)
                return self._build_report(
                    duration, warmup, server_measurements,
                    system_unavailability,
                )
            finally:
                self._flush_obs_counters()

    def _flush_obs_counters(self) -> None:
        """Fold the batched per-event tallies into the obs counters."""
        if self._obs_instances_started:
            obs.count(
                "wfms.instances_started", self._obs_instances_started
            )
            self._obs_instances_started = 0
        if self._obs_instances_completed:
            obs.count(
                "wfms.instances_completed", self._obs_instances_completed
            )
            self._obs_instances_completed = 0
        if self._obs_requests_submitted:
            obs.count(
                "wfms.requests_submitted", self._obs_requests_submitted
            )
            self._obs_requests_submitted = 0
        if self._fast_rngs:
            blocks = sum(rng.blocks_drawn for rng in self._fast_rngs)
            variates = sum(
                rng.variates_served for rng in self._fast_rngs
            )
            if blocks > self._obs_blocks_flushed:
                obs.count(
                    "sim.fastdraw.blocks_drawn",
                    blocks - self._obs_blocks_flushed,
                )
                self._obs_blocks_flushed = blocks
            if variates > self._obs_variates_flushed:
                obs.count(
                    "sim.fastdraw.variates_served",
                    variates - self._obs_variates_flushed,
                )
                self._obs_variates_flushed = variates

    @property
    def logical_events(self) -> int:
        """Simulated events including the ones fast mode vectorized away.

        In the exact mode every service request costs two calendar
        events (timed submission, completion), so this equals
        ``simulator.executed_events``.  The fast mode buffers arrivals
        and replays completions outside the calendar; counting each
        routed arrival and each completed request restores the same
        per-request weight, making throughput comparisons across modes
        measure the same workload.
        """
        events = self.simulator.executed_events
        if self._fast_mode:
            for pool in self.pools.values():
                events += pool.arrivals_processed + pool.completed_total
        return events

    def _drain(self, duration: float, end: float) -> None:
        """Simulate past the window until the tracked cohort completes."""
        if self._tracked_open == 0:
            return
        self._draining = True
        deadline = end + self.DRAIN_LIMIT_FACTOR * duration
        chunk = max(duration / 10.0, 1.0)
        with obs.span("wfms.drain", open_instances=self._tracked_open):
            while self._tracked_open > 0:
                if self.simulator.now >= deadline:
                    raise ValidationError(
                        f"{self._tracked_open} instance(s) still running "
                        f"{self.DRAIN_LIMIT_FACTOR:g}x the measured "
                        f"duration past the window end; the workflow "
                        f"does not terminate"
                    )
                self.simulator.run_until(self.simulator.now + chunk)
        self._draining = False

    def _reset_statistics(self) -> None:
        now = self.simulator.now
        for pool in self.pools.values():
            pool.reset_statistics()
        for name in self._turnarounds:
            self._turnarounds[name] = RunningStats()
            self._completed[name] = 0
        self._system_up = TimeWeightedStats(
            1.0 if all(p.any_up for p in self.pools.values()) else 0.0, now
        )
        self.trail.state_visits.clear()
        self.trail.service_requests.clear()
        self.trail.instances.clear()

    def _measure_servers(
        self, now: float
    ) -> dict[str, ServerTypeMeasurement]:
        """Snapshot per-type measurements at the window end ``now``."""
        server_measurements: dict[str, ServerTypeMeasurement] = {}
        for name, pool in self.pools.items():
            counts = [s.statistics.waiting_times.count for s in pool.servers]
            means = [s.statistics.waiting_times.mean for s in pool.servers]
            seconds = [
                s.statistics.waiting_times.second_moment
                for s in pool.servers
            ]
            service_counts = [
                s.statistics.service_times.count for s in pool.servers
            ]
            service_means = [
                s.statistics.service_times.mean for s in pool.servers
            ]
            service_seconds = [
                s.statistics.service_times.second_moment
                for s in pool.servers
            ]
            utilization = pooled_mean(
                [1] * len(pool.servers),
                [s.statistics.busy.time_average(now) for s in pool.servers],
            )
            server_measurements[name] = ServerTypeMeasurement(
                name=name,
                replica_count=len(pool.servers),
                completed_requests=sum(counts),
                mean_waiting_time=pooled_mean(counts, means),
                waiting_time_ci95=pooled_ci95(counts, means, seconds),
                mean_service_time=pooled_mean(service_counts, service_means),
                second_moment_service_time=pooled_mean(
                    service_counts, service_seconds
                ),
                utilization=utilization,
                unavailability=1.0 - pool.availability.time_average(now),
            )
        return server_measurements

    def _build_report(
        self,
        duration: float,
        warmup: float,
        server_measurements: dict[str, ServerTypeMeasurement],
        system_unavailability: float,
    ) -> WFMSMeasurementReport:
        workflow_measurements: dict[str, WorkflowTypeMeasurement] = {}
        for workflow_type in self.workflow_types:
            name = workflow_type.chart.name
            stats = self._turnarounds[name]
            workflow_measurements[name] = WorkflowTypeMeasurement(
                name=name,
                completed_instances=self._completed[name],
                mean_turnaround_time=stats.mean,
                turnaround_ci95=stats.confidence_interval_95(),
                throughput=self._completed[name] / duration,
                turnaround_stats=stats,
            )
        return WFMSMeasurementReport(
            observed_duration=duration,
            warmup_duration=warmup,
            server_types=server_measurements,
            workflow_types=workflow_measurements,
            system_unavailability=system_unavailability,
            trail=self.trail,
            worklist=(
                self.worklist.report() if self.worklist is not None
                else None
            ),
            availability_stats=self._system_up,
        )

    # ------------------------------------------------------------------
    # Instance completion hook
    # ------------------------------------------------------------------
    def _instance_completed(
        self, workflow_name: str, started_at: float, instance_id: int
    ) -> None:
        self._active_instances -= 1
        now = self.simulator.now
        self._obs_instances_completed += 1
        if self._obs_on:
            obs.event(
                "instance_completed",
                t=now,
                instance=instance_id,
                workflow=workflow_name,
                turnaround=now - started_at,
            )
        if self._collect_from <= started_at < self._collect_until:
            self._tracked_open -= 1
            self._turnarounds[workflow_name].add(now - started_at)
            self._completed[workflow_name] += 1
            self.trail.record_instance(
                InstanceRecord(
                    instance_id=instance_id,
                    workflow_type=workflow_name,
                    started_at=started_at,
                    completed_at=now,
                )
            )


class _InstanceRuntime(InterpreterListener):
    """Drives one workflow instance through the simulation clock."""

    def __init__(
        self,
        wfms: SimulatedWFMS,
        workflow_type: SimulatedWorkflowType,
        instance_id: int,
    ) -> None:
        self.wfms = wfms
        self.workflow_type = workflow_type
        self.instance_id = instance_id
        self.started_at = wfms.simulator.now
        self.interpreter = StateChartInterpreter(
            workflow_type.chart,
            resolver=ProbabilisticResolver(wfms._branch_rng),
            listener=self,
        )
        # Top-level audit tracking: (state name, entered at).
        self._top_level: tuple[str, float] | None = None

    def start(self) -> None:
        self.interpreter.start()

    # ------------------------------------------------------------------
    # InterpreterListener callbacks
    # ------------------------------------------------------------------
    def on_state_entered(self, active: ActiveState) -> None:
        if len(active.path) == 2:
            self._record_top_level_transition(active.state.name)
        if active.state.is_composite:
            return  # leaves of the regions drive the composite
        self._process_leaf(active)

    def on_workflow_completed(self) -> None:
        self._record_top_level_transition(TERMINATION)
        self.wfms._instance_completed(
            self.workflow_type.chart.name, self.started_at, self.instance_id
        )

    # ------------------------------------------------------------------
    def _record_top_level_transition(self, next_state: str) -> None:
        now = self.wfms.simulator.now
        # Only instances of the measured cohort feed the audit trail, so
        # visit records and instance records describe the same sample.
        if (self._top_level is not None
                and self.wfms._in_window(self.started_at)
                and self._top_level[1] >= self.wfms._collect_from):
            state, entered_at = self._top_level
            self.wfms.trail.record_state_visit(
                StateVisitRecord(
                    instance_id=self.instance_id,
                    workflow_type=self.workflow_type.chart.name,
                    state=state,
                    entered_at=entered_at,
                    left_at=now,
                    next_state=next_state,
                )
            )
        self._top_level = (
            None if next_state == TERMINATION else (next_state, now)
        )

    def _process_leaf(self, active: ActiveState) -> None:
        state = active.state
        if state.activity is not None:
            activity = self.workflow_type.activities.get(state.activity)
            mean_duration = (
                state.mean_duration
                if state.mean_duration is not None
                else activity.mean_duration
            )
            duration = self.wfms.sample_duration(mean_duration)
            self._issue_requests(activity.loads, duration)
            if activity.interactive and self.wfms.worklist is not None:
                # Actor-contended completion: the state is left when the
                # assigned actor finishes the work item.
                path = active.path
                self.wfms.worklist.submit(
                    activity.name,
                    self.instance_id,
                    duration,
                    on_complete=lambda item, p=path: self._advance(p),
                )
                return
        else:
            mean_duration = (
                state.mean_duration
                if state.mean_duration is not None
                else self.wfms.default_routing_duration
            )
            duration = self.wfms.sample_duration(mean_duration)
        self.wfms.simulator.post(duration, self._advance, active.path)

    def _issue_requests(
        self, loads: Mapping[str, float], duration: float
    ) -> None:
        """Spread the activity's requests uniformly over its duration."""
        wfms = self.wfms
        uniform = wfms._load_rng.uniform
        instance_id = self.instance_id
        if wfms._fast_mode:
            # Fast mode: requests go straight into the pool's arrival
            # buffers with their absolute submission times — no
            # calendar event per request; the pool replays them at the
            # measurement boundaries.  The spread offsets come from the
            # same u01 stream scalar uniform() would consume.
            now = wfms.simulator.now
            buffers = wfms._pool_buffers
            u01 = wfms._load_u01_next
            take = wfms._load_u01_take
            submitted = 0
            for server_type, expected in loads.items():
                # Inlined integer_load (randomized rounding) against
                # the bound u01 stream.
                count = int(expected)
                fraction = expected - count
                if fraction > 0.0 and u01() < fraction:
                    count += 1
                if not count:
                    continue
                try:
                    append_time, append_id = buffers[server_type]
                except KeyError:
                    raise ValidationError(
                        f"unknown server type {server_type!r}"
                    ) from None
                for offset in take(count):
                    append_time(now + offset * duration)
                    append_id(instance_id)
                submitted += count
            wfms._obs_requests_submitted += submitted
            return
        post = wfms.simulator.post
        submit_request = wfms.submit_request
        for server_type, expected in loads.items():
            for _ in range(wfms.integer_load(expected)):
                post(
                    uniform(0.0, duration),
                    submit_request,
                    server_type,
                    instance_id,
                )

    def _advance(self, path: StatePath) -> None:
        self.interpreter.advance(path)
