"""Request routing across the replicas of a server type (Section 4.4).

The paper assumes service requests are spread uniformly across the
replicas of a type, "by assigning work to servers in a round-robin or
random (typically hashing-based) manner", with assignments typically made
per workflow instance for locality.  All three policies are implemented;
the pool falls back to any running replica when the preferred one is down
(the paper's online failover), and parks requests when the whole type is
down.
"""

from __future__ import annotations

import enum
import random
from collections import deque

from repro.core.model_types import ServerTypeSpec
from repro.exceptions import ValidationError
from repro.sim.engine import Simulator
from repro.sim.statistics import TimeWeightedStats
from repro.wfms.servers import Server, ServiceRequest


class RoutingPolicy(enum.Enum):
    """How new requests are assigned to replicas."""

    #: Cycle through the replicas per request.
    ROUND_ROBIN = "round_robin"
    #: Uniformly random replica per request.
    RANDOM = "random"
    #: Hash of the workflow instance id — all requests of one instance
    #: prefer the same replica (the paper's locality-preserving policy).
    HASH = "hash"


class ServerPool:
    """All replicas of one server type plus the routing logic."""

    def __init__(
        self,
        simulator: Simulator,
        spec: ServerTypeSpec,
        servers: list[Server],
        policy: RoutingPolicy = RoutingPolicy.HASH,
        rng: random.Random | None = None,
    ) -> None:
        if not servers:
            raise ValidationError(
                f"pool of {spec.name} needs at least one server"
            )
        self.simulator = simulator
        self.spec = spec
        self.servers = list(servers)
        self.policy = policy
        self._rng = rng if rng is not None else random.Random()
        self._round_robin_position = 0
        self._parked: deque[ServiceRequest] = deque()
        self.availability = TimeWeightedStats(1.0, simulator.now)

    # ------------------------------------------------------------------
    @property
    def any_up(self) -> bool:
        """Whether at least one replica is running."""
        return any(server.is_up for server in self.servers)

    @property
    def up_count(self) -> int:
        """Number of replicas currently up."""
        return sum(1 for server in self.servers if server.is_up)

    def submit(self, request: ServiceRequest) -> None:
        """Route a request to a running replica, or park it."""
        server = self._choose(request)
        if server is None:
            self._parked.append(request)
            return
        server.submit(request)

    def _choose(self, request: ServiceRequest) -> Server | None:
        servers = self.servers
        policy = self.policy
        if policy is RoutingPolicy.HASH:
            # Prefer the instance's home replica; fail over to the next
            # running one in ring order.  The common all-up case resolves
            # without building an up-server list.
            count = len(servers)
            preferred = request.instance_id % count
            for offset in range(count):
                server = servers[(preferred + offset) % count]
                if server.is_up:
                    return server
            return None
        if policy is RoutingPolicy.ROUND_ROBIN:
            up_count = 0
            for server in servers:
                if server.is_up:
                    up_count += 1
            if not up_count:
                return None
            self._round_robin_position += 1
            remaining = self._round_robin_position % up_count
            for server in servers:
                if server.is_up:
                    if not remaining:
                        return server
                    remaining -= 1
            return None  # pragma: no cover - unreachable, up_count > 0
        up_servers = [server for server in servers if server.is_up]
        if not up_servers:
            return None
        return self._rng.choice(up_servers)

    # ------------------------------------------------------------------
    # Failure bookkeeping
    # ------------------------------------------------------------------
    def notify_state_change(self) -> None:
        """Update availability tracking and flush parked requests.

        Called by the failure injectors after every repair (and usable
        after failures); parked requests are replayed through the router
        as soon as a replica is running again.
        """
        self.availability.update(
            1.0 if self.any_up else 0.0, self.simulator.now
        )
        while self._parked and self.any_up:
            self.submit(self._parked.popleft())

    def reset_statistics(self) -> None:
        """Drop warm-up measurements on the pool and all replicas."""
        self.availability = TimeWeightedStats(
            1.0 if self.any_up else 0.0, self.simulator.now
        )
        for server in self.servers:
            server.reset_statistics()
