"""Simulated servers: FCFS replicas with failures and repairs.

Each server replica is a single FCFS station (matching the M/G/1
abstraction of Section 4.4) that can *fail*: a failure preempts the
request in service (it is re-served in full after repair — retry
semantics) and halts the queue until the repair completes.  Failure and
repair processes are injected per replica with the type's
``lambda_x`` / ``mu_x`` rates, mirroring the availability model of
Section 5.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro.core.model_types import ServerTypeSpec
from repro.exceptions import ValidationError
from repro.monitor.audit import AuditTrail, ServiceRequestRecord
from repro.sim.distributions import Distribution, Exponential
from repro.sim.engine import EventHandle, Simulator
from repro.sim.statistics import RunningStats, TimeWeightedStats


@dataclass(slots=True)
class ServiceRequest:
    """One service request travelling to a server replica."""

    server_type: str
    instance_id: int
    submitted_at: float
    started_at: float | None = None

    def __post_init__(self) -> None:
        if self.submitted_at < 0.0:
            raise ValidationError("submitted_at must be >= 0")


@dataclass
class ServerStatistics:
    """Measurement collectors of one server replica."""

    waiting_times: RunningStats = field(default_factory=RunningStats)
    service_times: RunningStats = field(default_factory=RunningStats)
    busy: TimeWeightedStats = field(
        default_factory=lambda: TimeWeightedStats(0.0)
    )
    up: TimeWeightedStats = field(
        default_factory=lambda: TimeWeightedStats(1.0)
    )
    completed_requests: int = 0


class Server:
    """One replica of a server type: FCFS queue, one service unit."""

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        spec: ServerTypeSpec,
        service_distribution: Distribution,
        rng: random.Random,
        trail: AuditTrail | None = None,
    ) -> None:
        self.simulator = simulator
        self.name = name
        self.spec = spec
        self.service_distribution = service_distribution
        # Service times are drawn on every request: compile the sampler
        # once instead of re-resolving distribution parameters per draw
        # (the closure consumes the rng identically to ``sample``).
        self._sample_service = service_distribution.sampler(rng)
        self._rng = rng
        self._trail = trail
        self._queue: deque[ServiceRequest] = deque()
        self._current: ServiceRequest | None = None
        self._completion: EventHandle | None = None
        self.is_up = True
        self.statistics = ServerStatistics(
            busy=TimeWeightedStats(0.0, simulator.now),
            up=TimeWeightedStats(1.0, simulator.now),
        )

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Requests waiting (excluding the one in service)."""
        return len(self._queue)

    @property
    def is_busy(self) -> bool:
        """Whether a request is currently in service."""
        return self._current is not None

    def submit(self, request: ServiceRequest) -> None:
        """Enqueue a request; service starts immediately when idle."""
        self._queue.append(request)
        self._try_start_next()

    def _try_start_next(self) -> None:
        if not self.is_up or self._current is not None or not self._queue:
            return
        request = self._queue.popleft()
        now = self.simulator.now
        request.started_at = now
        self._current = request
        self.statistics.busy.update(1.0, now)
        service_time = self._sample_service()
        self._completion = self.simulator.schedule(
            service_time, self._complete, request, service_time
        )

    def _complete(
        self, request: ServiceRequest, service_time: float
    ) -> None:
        now = self.simulator.now
        self._current = None
        self._completion = None
        statistics = self.statistics
        statistics.busy.update(0.0, now)
        assert request.started_at is not None
        statistics.waiting_times.add(
            request.started_at - request.submitted_at
        )
        statistics.service_times.add(service_time)
        statistics.completed_requests += 1
        if self._trail is not None:
            self._trail.record_service_request(
                ServiceRequestRecord(
                    server_type=request.server_type,
                    server_name=self.name,
                    submitted_at=request.submitted_at,
                    started_at=request.started_at,
                    completed_at=now,
                    instance_id=request.instance_id,
                )
            )
        self._try_start_next()

    # ------------------------------------------------------------------
    # Failure / repair
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Take the replica down; the request in service is re-queued."""
        if not self.is_up:
            return
        self.is_up = False
        now = self.simulator.now
        self.statistics.up.update(0.0, now)
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        if self._current is not None:
            # Retry semantics: the preempted request returns to the head
            # of the queue and is served from scratch after the repair.
            self._current.started_at = None
            self._queue.appendleft(self._current)
            self._current = None
            self.statistics.busy.update(0.0, now)

    def repair(self) -> None:
        """Bring the replica back up and resume service."""
        if self.is_up:
            return
        self.is_up = True
        self.statistics.up.update(1.0, self.simulator.now)
        self._try_start_next()

    def reset_statistics(self) -> None:
        """Drop warm-up measurements; time-weighted stats restart now."""
        now = self.simulator.now
        self.statistics = ServerStatistics(
            busy=TimeWeightedStats(
                1.0 if self.is_busy else 0.0, now
            ),
            up=TimeWeightedStats(1.0 if self.is_up else 0.0, now),
        )


class FailureInjector:
    """Drives the failure/repair process of one server replica.

    Times to failure are exponential with the spec's ``lambda_x`` (only
    while the server is up, matching the availability CTMC in which only
    running replicas fail); repair durations default to exponential with
    mean ``1/mu_x`` but accept any :class:`Distribution` — enabling the
    non-exponential (phase-type) experiments of Section 5.1.
    """

    def __init__(
        self,
        simulator: Simulator,
        server: Server,
        rng: random.Random,
        repair_distribution: Distribution | None = None,
        on_failure=None,
        on_repair=None,
    ) -> None:
        spec = server.spec
        if spec.failure_rate <= 0.0:
            raise ValidationError(
                f"{server.name}: failure injection needs a positive "
                "failure rate"
            )
        self.simulator = simulator
        self.server = server
        self._rng = rng
        self._time_to_failure = Exponential(1.0 / spec.failure_rate)
        self._repair_distribution = (
            repair_distribution
            if repair_distribution is not None
            else Exponential(spec.mean_time_to_repair)
        )
        self._sample_time_to_failure = self._time_to_failure.sampler(rng)
        self._sample_repair = self._repair_distribution.sampler(rng)
        self._on_failure = on_failure
        self._on_repair = on_repair

    def start(self) -> None:
        """Arm the first failure timer."""
        self._schedule_failure()

    def _schedule_failure(self) -> None:
        delay = self._sample_time_to_failure()
        self.simulator.post(delay, self._fire_failure)

    def _fire_failure(self) -> None:
        self.server.fail()
        if self._on_failure is not None:
            self._on_failure(self.server)
        repair_time = self._sample_repair()
        self.simulator.post(repair_time, self._fire_repair)

    def _fire_repair(self) -> None:
        self.server.repair()
        if self._on_repair is not None:
            self._on_repair(self.server)
        self._schedule_failure()
