"""Simulated distributed WFMS (the measurement substrate).

Replicated server pools with FCFS replicas, failure/repair injection,
routing with failover, Poisson workflow arrivals, state-chart-driven
instance execution, and measurement reports comparable to the analytic
models' predictions.
"""

from repro.wfms.measurement import (
    ServerTypeMeasurement,
    WFMSMeasurementReport,
    WorkflowTypeMeasurement,
)
from repro.wfms.routing import RoutingPolicy, ServerPool
from repro.wfms.runtime import (
    DurationSampling,
    SimulatedWFMS,
    SimulatedWorkflowType,
)
from repro.wfms.servers import (
    FailureInjector,
    Server,
    ServerStatistics,
    ServiceRequest,
)

__all__ = [
    "DurationSampling",
    "FailureInjector",
    "RoutingPolicy",
    "Server",
    "ServerPool",
    "ServerStatistics",
    "ServerTypeMeasurement",
    "ServiceRequest",
    "SimulatedWFMS",
    "SimulatedWorkflowType",
    "WFMSMeasurementReport",
    "WorkflowTypeMeasurement",
]
